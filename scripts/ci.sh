#!/usr/bin/env bash
# Full local CI gate: formatting, lints, build, and the complete test suite.
#
# Everything runs --offline: external dependencies are satisfied by the
# in-workspace shim crates (crates/shims/), so no registry access is needed
# or attempted.
#
# `scripts/ci.sh --replay` runs only the chaos regression corpus: every
# archived reproducer under tests/chaos_corpus/ must rerun to its recorded
# verdict (the blind spots chaos found stay pinned until a checker change
# legitimately flips them — at which point the corpus file is re-recorded).
# Replays run under --sim: virtual time makes the verdict load-independent,
# so a replay asserts byte-parity on the first attempt — the old
# stall-tolerant retry loop is gone because the noise it tolerated is gone.
set -euo pipefail
cd "$(dirname "$0")/.."

replay_corpus() {
    echo "==> chaos regression corpus: every archived reproducer reruns to its recorded verdict (sim, first attempt)"
    local found=0
    for artifact in tests/chaos_corpus/*.json; do
        [ -e "$artifact" ] || continue
        found=1
        echo "    replaying $artifact"
        cargo run --offline -q --release -p harness --bin wdog-chaos -- --sim --replay "$artifact"
    done
    if [ "$found" -eq 0 ]; then
        echo "    (corpus empty — nothing to replay)"
    fi
}

if [ "${1:-}" = "--replay" ]; then
    replay_corpus
    echo "REPLAY OK"
    exit 0
fi

echo "==> no stale error sidecars tracked in git"
# Campaign bins delete their results/<name>.err sidecar on success, so a
# tracked one is a fossil of a failed run that was committed by accident.
if git ls-files -- 'results/*.err' 'results/**/*.err' | grep -q .; then
    echo "tracked .err sidecars found — rerun the campaign (bins clear them on success) or git rm:"
    git ls-files -- 'results/*.err' 'results/**/*.err'
    exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> wdog-lint --target all --deny-drift + analysis gates"
# --deny-coverage-regression diffs against the archived
# results/analysis/coverage_<target>.json and fails on newly uncovered
# vulnerable ops; the refreshed artifacts are written back in place.
# --deny-real-clock keeps production code off raw time calls — the
# virtual-time substrate's determinism rests on every sleep and deadline
# going through Clock.
cargo run --offline -q -p harness --bin wdog-lint -- --target all --deny-drift \
    --deny-unsafe-checker --deny-deadlock-cycle --deny-coverage-regression \
    --deny-real-clock

echo "==> wdog-recovery --sim smoke: kvs stuck-task + corruption must verified-recover in virtual time"
cargo run --offline -q -p harness --bin wdog-recovery -- --target kvs --sim \
    --scenarios background-task-stuck,state-corruption --require-verified 2

echo "==> telemetry smoke: kvs campaign must produce a valid snapshot with a detection"
cargo run --offline -q --release -p harness --bin wdog-telemetry -- --target kvs \
    --scenarios background-task-stuck --require-detections 1

echo "==> telemetry bench guard: armed hook fire within 15% of disarmed (or the 25 ns absolute floor)"
cargo run --offline -q --release -p harness --bin wdog-telemetry -- --bench-guard 15

# The load-plane smoke gate: a short open-loop sweep against kvs at
# sub-saturation rates, compared to the checked-in baseline
# (tests/load_baseline/load_kvs.json). Any stage that loses more than 15%
# throughput — or whose p99 grows past the 2 ms jitter floor by more than
# 15% — fails the build. Writes to a scratch dir so the archived
# results/load/ artifacts (full sweeps) are never clobbered by smoke runs.
echo "==> wdog-load smoke sweep: kvs stages within 15% of the checked-in baseline"
cargo run --offline -q --release -p harness --bin wdog-load -- --target kvs \
    --smoke --seed 42 --out "$(mktemp -d)" --guard-baseline tests/load_baseline

# The chaos gate, in virtual time. The old real-clock smoke ran 50
# schedules per target and cost 50 x (0.5s warmup + 2.5s horizon + 0.4s
# grace) = 170s of wall clock each. The sim gate runs 1000 schedules per
# target — 20x the coverage — and --max-wall-ms 170000 asserts each sweep
# still comes in under the old 50-schedule budget. Each sweep runs twice
# and the archived reports must agree byte-for-byte on the first attempt:
# determinism by construction, not by contract.
for t in kvs minizk miniblock; do
    echo "==> chaos sim sweep [$t]: 1000 schedules, twice, byte-identical, under the old 50-schedule budget"
    cargo run --offline -q --release -p harness --bin wdog-chaos -- --target "$t" \
        --seed 42 --schedules 1000 --sim --max-wall-ms 170000 \
        --require-detected 1 --require-clean-benign
    cp "results/chaos/chaos_$t.json" "results/chaos/chaos_$t.run1.json"
    cargo run --offline -q --release -p harness --bin wdog-chaos -- --target "$t" \
        --seed 42 --schedules 1000 --sim --max-wall-ms 170000 \
        --require-detected 1 --require-clean-benign
    if ! cmp -s "results/chaos/chaos_$t.run1.json" "results/chaos/chaos_$t.json"; then
        echo "chaos sim sweep [$t]: reports diverged between consecutive runs — nondeterminism bug"
        exit 1
    fi
    rm -f "results/chaos/chaos_$t.run1.json"
done

# The inference gate rides on the chaos archive the sweeps above just
# refreshed. Two passes over every target: the first writes the corpus,
# the second re-records with per-target confidence floors — at least 10
# mined invariants everywhere, and on kvs/miniblock at least one archived
# missed fault verdict that the inferred checkers flip to detected
# (minizk's misses are all txn-log bit rot, invisible at the value level,
# so it gates on invariants only). The two corpora must agree
# byte-for-byte: recording is virtual-time deterministic and everything
# downstream is a pure function of the journals.
echo "==> wdog-infer gate: mine >=10 invariants per target, flip archived misses, byte-identical corpus"
cargo run --offline -q --release -p harness --bin wdog-infer -- --target all \
    --require-invariants 10
for t in kvs minizk miniblock; do
    cp "results/inferred/inferred_$t.json" "results/inferred/inferred_$t.run1.json"
done
cargo run --offline -q --release -p harness --bin wdog-infer -- --target kvs \
    --require-invariants 10 --require-flips 1
cargo run --offline -q --release -p harness --bin wdog-infer -- --target minizk \
    --require-invariants 10
cargo run --offline -q --release -p harness --bin wdog-infer -- --target miniblock \
    --require-invariants 10 --require-flips 1
for t in kvs minizk miniblock; do
    if ! cmp -s "results/inferred/inferred_$t.run1.json" "results/inferred/inferred_$t.json"; then
        echo "wdog-infer [$t]: corpus diverged between consecutive runs — nondeterminism bug"
        exit 1
    fi
    rm -f "results/inferred/inferred_$t.run1.json"
done

replay_corpus

echo "==> tier-1: cargo build --release && cargo test"
cargo build --release --offline
cargo test --offline -q

echo "==> full workspace tests"
cargo test --offline --workspace -q

echo "CI OK"
