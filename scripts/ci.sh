#!/usr/bin/env bash
# Full local CI gate: formatting, lints, build, and the complete test suite.
#
# Everything runs --offline: external dependencies are satisfied by the
# in-workspace shim crates (crates/shims/), so no registry access is needed
# or attempted.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> wdog-lint --target all --deny-drift"
cargo run --offline -q -p harness --bin wdog-lint -- --target all --deny-drift

echo "==> wdog-recovery smoke: kvs stuck-task + corruption must verified-recover"
cargo run --offline -q -p harness --bin wdog-recovery -- --target kvs \
    --scenarios background-task-stuck,state-corruption --require-verified 2

echo "==> telemetry smoke: kvs campaign must produce a valid snapshot with a detection"
cargo run --offline -q --release -p harness --bin wdog-telemetry -- --target kvs \
    --scenarios background-task-stuck --require-detections 1

echo "==> telemetry bench guard: armed hook fire within 15% of disarmed"
cargo run --offline -q --release -p harness --bin wdog-telemetry -- --bench-guard 15

echo "==> chaos smoke: seeded kvs campaign must detect and stay benign-clean"
cargo run --offline -q --release -p harness --bin wdog-chaos -- --target kvs \
    --seed 42 --schedules 6 --require-detected 1 --require-clean-benign

echo "==> chaos replay: the archived reproducer must rerun to its recorded verdict"
replay_artifact=$(ls results/chaos/chaos-42-*.kvs.*.json | head -n 1)
cargo run --offline -q --release -p harness --bin wdog-chaos -- --replay "$replay_artifact"

echo "==> tier-1: cargo build --release && cargo test"
cargo build --release --offline
cargo test --offline -q

echo "==> full workspace tests"
cargo test --offline --workspace -q

echo "CI OK"
