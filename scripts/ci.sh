#!/usr/bin/env bash
# Full local CI gate: formatting, lints, build, and the complete test suite.
#
# Everything runs --offline: external dependencies are satisfied by the
# in-workspace shim crates (crates/shims/), so no registry access is needed
# or attempted.
#
# `scripts/ci.sh --replay` runs only the chaos regression corpus: every
# archived reproducer under tests/chaos_corpus/ must rerun to its recorded
# verdict (the blind spots chaos found stay pinned until a checker change
# legitimately flips them — at which point the corpus file is re-recorded).
set -euo pipefail
cd "$(dirname "$0")/.."

# Replays run testbeds on the real clock, so a multi-second host stall can
# flip a timing verdict in one run (e.g. a stalled probe exceeding a checker
# timeout turns a recorded miss into a spurious detection). A stall-induced
# divergence vanishes on retry; a genuine behavioral flip diverges every
# time and still fails the gate.
replay_with_retry() {
    local artifact="$1" attempt
    for attempt in 1 2 3; do
        if cargo run --offline -q --release -p harness --bin wdog-chaos -- --replay "$artifact"; then
            return 0
        fi
        echo "    (replay diverged on attempt $attempt — assuming a host stall; retrying)"
    done
    echo "replay of $artifact diverged on every attempt — a real behavioral change"
    return 1
}

replay_corpus() {
    echo "==> chaos regression corpus: every archived reproducer reruns to its recorded verdict"
    local found=0
    for artifact in tests/chaos_corpus/*.json; do
        [ -e "$artifact" ] || continue
        found=1
        echo "    replaying $artifact"
        replay_with_retry "$artifact"
    done
    if [ "$found" -eq 0 ]; then
        echo "    (corpus empty — nothing to replay)"
    fi
}

if [ "${1:-}" = "--replay" ]; then
    replay_corpus
    echo "REPLAY OK"
    exit 0
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> wdog-lint --target all --deny-drift + analysis gates"
# --deny-coverage-regression diffs against the archived
# results/analysis/coverage_<target>.json and fails on newly uncovered
# vulnerable ops; the refreshed artifacts are written back in place.
cargo run --offline -q -p harness --bin wdog-lint -- --target all --deny-drift \
    --deny-unsafe-checker --deny-deadlock-cycle --deny-coverage-regression

echo "==> wdog-recovery smoke: kvs stuck-task + corruption must verified-recover"
cargo run --offline -q -p harness --bin wdog-recovery -- --target kvs \
    --scenarios background-task-stuck,state-corruption --require-verified 2

echo "==> telemetry smoke: kvs campaign must produce a valid snapshot with a detection"
cargo run --offline -q --release -p harness --bin wdog-telemetry -- --target kvs \
    --scenarios background-task-stuck --require-detections 1

echo "==> telemetry bench guard: armed hook fire within 15% of disarmed"
cargo run --offline -q --release -p harness --bin wdog-telemetry -- --bench-guard 15

echo "==> chaos smoke: seeded kvs campaign must detect and stay benign-clean"
cargo run --offline -q --release -p harness --bin wdog-chaos -- --target kvs \
    --seed 42 --schedules 6 --require-detected 1 --require-clean-benign

echo "==> chaos replay: the archived reproducer must rerun to its recorded verdict"
replay_artifact=$(ls results/chaos/chaos-42-*.kvs.*.json | head -n 1)
replay_with_retry "$replay_artifact"

replay_corpus

echo "==> tier-1: cargo build --release && cargo test"
cargo build --release --offline
cargo test --offline -q

echo "==> full workspace tests"
cargo test --offline --workspace -q

echo "CI OK"
