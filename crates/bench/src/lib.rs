//! Shared helpers for the Criterion benchmarks.

use std::sync::Arc;
use std::time::Duration;

use kvs::{KvsConfig, KvsServer};
use simio::disk::SimDisk;
use simio::LatencyModel;
use wdog_base::clock::RealClock;

/// Starts a durable kvs on a zero-latency disk, tuned for benchmarking.
pub fn bench_server() -> KvsServer {
    let clock = RealClock::shared();
    let disk = SimDisk::new(1 << 30, LatencyModel::zero(), Arc::clone(&clock));
    KvsServer::start(
        KvsConfig {
            workers: 2,
            flush_interval: Duration::from_millis(50),
            compaction_interval: Duration::from_millis(50),
            ..KvsConfig::default()
        },
        clock,
        disk,
        None,
    )
    .expect("bench server")
}
