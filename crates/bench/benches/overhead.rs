//! Experiment E5: watchdog overhead on the main program (paper §3.1–3.2).
//!
//! The paper's claim: concurrent checking lets a watchdog run "as many
//! checkers as necessary ... without slowing down the main program during
//! fault-free execution", and hooks are cheap. Three configurations of the
//! same kvs workload measure that claim:
//!
//! - `no_hooks`       — hooks disabled (one relaxed atomic load per site);
//! - `hooks_only`     — hooks publishing contexts, watchdog not running;
//! - `full_watchdog`  — all checker families executing concurrently.
//!
//! The shape expectation: the three configurations are within a few percent
//! of each other.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};

use bench::bench_server;
use kvs::wd::{build_watchdog, WdOptions};
use wdog_core::context::baseline::BaselineContextTable;
use wdog_core::prelude::*;

fn kvs_set_roundtrips(c: &mut Criterion) {
    let mut group = c.benchmark_group("kvs_set");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_secs(1));

    // Baseline: hooks disabled entirely.
    {
        let server = bench_server();
        server.hooks().set_enabled(false);
        let client = server.client();
        let mut i = 0u64;
        group.bench_function("no_hooks", |b| {
            b.iter_batched(
                || {
                    i += 1;
                    format!("key-{}", i % 512)
                },
                |key| client.set(&key, "value").unwrap(),
                BatchSize::SmallInput,
            )
        });
    }

    // Hooks firing, watchdog idle.
    {
        let server = bench_server();
        let client = server.client();
        let mut i = 0u64;
        group.bench_function("hooks_only", |b| {
            b.iter_batched(
                || {
                    i += 1;
                    format!("key-{}", i % 512)
                },
                |key| client.set(&key, "value").unwrap(),
                BatchSize::SmallInput,
            )
        });
    }

    // Full watchdog: generated mimics + probes + signals, every 100 ms.
    {
        let server = bench_server();
        let client = server.client();
        let (mut driver, _) = build_watchdog(
            &server,
            &WdOptions {
                interval: Duration::from_millis(100),
                ..WdOptions::default()
            },
        )
        .expect("watchdog");
        driver.start().expect("start watchdog");
        let mut i = 0u64;
        group.bench_function("full_watchdog", |b| {
            b.iter_batched(
                || {
                    i += 1;
                    format!("key-{}", i % 512)
                },
                |key| client.set(&key, "value").unwrap(),
                BatchSize::SmallInput,
            )
        });
        driver.stop();
    }

    group.finish();
}

fn ctx_fields(i: u64) -> Vec<(String, CtxValue)> {
    vec![
        ("path".to_owned(), CtxValue::Str("wal/segment-7".to_owned())),
        ("len".to_owned(), CtxValue::U64(i)),
    ]
}

/// The hook→context hot path, single-threaded: one component publishing
/// with nobody else on the table. The sharded slot handle must be no
/// slower than the baseline single-lock table here — sharding may not tax
/// the uncontended case.
fn context_publish_single(c: &mut Criterion) {
    let mut group = c.benchmark_group("ctx_publish_single");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    {
        let table = BaselineContextTable::new(RealClock::shared());
        let mut i = 0u64;
        group.bench_function("baseline_lock", |b| {
            b.iter(|| {
                i += 1;
                table.publish(black_box("flush"), ctx_fields(i));
            })
        });
    }
    {
        let table = ContextTable::new(RealClock::shared());
        let slot = table.register("flush");
        let mut i = 0u64;
        group.bench_function("sharded_slot", |b| {
            b.iter(|| {
                i += 1;
                black_box(&slot).publish(ctx_fields(i));
            })
        });
    }
    group.finish();
}

/// The contended shape the sharding exists for: several main-program
/// threads publishing into *their own* contexts while one checker thread
/// reads snapshots. On the baseline table every publish serializes on the
/// table-wide write lock; on the sharded table only same-slot access
/// contends, so the measured writer should be markedly faster.
fn context_publish_contended(c: &mut Criterion) {
    const WRITERS: usize = 3; // background writers; the bench thread is one more

    let mut group = c.benchmark_group("ctx_publish_contended");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    // Baseline: background writers + checker reader on the single lock.
    {
        let table = BaselineContextTable::new(RealClock::shared());
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for w in 0..WRITERS {
            let table = Arc::clone(&table);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let key = format!("writer-{w}");
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    table.publish(&key, ctx_fields(i));
                }
            }));
        }
        {
            let table = Arc::clone(&table);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    black_box(table.read("writer-0"));
                }
            }));
        }
        let mut i = 0u64;
        group.bench_function("baseline_lock", |b| {
            b.iter(|| {
                i += 1;
                table.publish(black_box("measured"), ctx_fields(i));
            })
        });
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
    }

    // Sharded: the same traffic, each writer on its own slot.
    {
        let table = ContextTable::new(RealClock::shared());
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for w in 0..WRITERS {
            let slot = table.register(&format!("writer-{w}"));
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    slot.publish(ctx_fields(i));
                }
            }));
        }
        {
            let reader = table.reader();
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    black_box(reader.read("writer-0"));
                }
            }));
        }
        let slot = table.register("measured");
        let mut i = 0u64;
        group.bench_function("sharded_slot", |b| {
            b.iter(|| {
                i += 1;
                slot.publish(ctx_fields(i));
            })
        });
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
    }
    group.finish();
}

/// Telemetry-plane overhead on the hook hot path: firing a site with no
/// registry attached (the guard is one relaxed atomic load) vs. an armed
/// registry (count every fire, time one in 64). The two must stay within a
/// few percent of each other — CI enforces a 15% budget through
/// `wdog-telemetry --bench-guard`.
fn hook_fire_telemetry(c: &mut Criterion) {
    let mut group = c.benchmark_group("hook_fire");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    {
        let hooks = Hooks::new(ContextTable::new(RealClock::shared()));
        let site = hooks.site("bench.telemetry");
        let mut i = 0u64;
        group.bench_function("telemetry_off", |b| {
            b.iter(|| {
                i += 1;
                if let Some(mut fire) = site.fire() {
                    fire.field("path", CtxValue::Str("wal/segment-7".to_owned()))
                        .field("len", CtxValue::U64(i));
                }
            })
        });
    }
    {
        let hooks = Hooks::new(ContextTable::new(RealClock::shared()));
        hooks.attach_telemetry(TelemetryRegistry::shared());
        let site = hooks.site("bench.telemetry");
        let mut i = 0u64;
        group.bench_function("telemetry_on", |b| {
            b.iter(|| {
                i += 1;
                if let Some(mut fire) = site.fire() {
                    fire.field("path", CtxValue::Str("wal/segment-7".to_owned()))
                        .field("len", CtxValue::U64(i));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    kvs_set_roundtrips,
    context_publish_single,
    context_publish_contended,
    hook_fire_telemetry
);
criterion_main!(benches);
