//! Experiment E5: watchdog overhead on the main program (paper §3.1–3.2).
//!
//! The paper's claim: concurrent checking lets a watchdog run "as many
//! checkers as necessary ... without slowing down the main program during
//! fault-free execution", and hooks are cheap. Three configurations of the
//! same kvs workload measure that claim:
//!
//! - `no_hooks`       — hooks disabled (one relaxed atomic load per site);
//! - `hooks_only`     — hooks publishing contexts, watchdog not running;
//! - `full_watchdog`  — all checker families executing concurrently.
//!
//! The shape expectation: the three configurations are within a few percent
//! of each other.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use bench::bench_server;
use kvs::wd::{build_watchdog, WdOptions};

fn kvs_set_roundtrips(c: &mut Criterion) {
    let mut group = c.benchmark_group("kvs_set");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_secs(1));

    // Baseline: hooks disabled entirely.
    {
        let server = bench_server();
        server.hooks().set_enabled(false);
        let client = server.client();
        let mut i = 0u64;
        group.bench_function("no_hooks", |b| {
            b.iter_batched(
                || {
                    i += 1;
                    format!("key-{}", i % 512)
                },
                |key| client.set(&key, "value").unwrap(),
                BatchSize::SmallInput,
            )
        });
    }

    // Hooks firing, watchdog idle.
    {
        let server = bench_server();
        let client = server.client();
        let mut i = 0u64;
        group.bench_function("hooks_only", |b| {
            b.iter_batched(
                || {
                    i += 1;
                    format!("key-{}", i % 512)
                },
                |key| client.set(&key, "value").unwrap(),
                BatchSize::SmallInput,
            )
        });
    }

    // Full watchdog: generated mimics + probes + signals, every 100 ms.
    {
        let server = bench_server();
        let client = server.client();
        let (mut driver, _) = build_watchdog(
            &server,
            &WdOptions {
                interval: Duration::from_millis(100),
                ..WdOptions::default()
            },
        )
        .expect("watchdog");
        driver.start().expect("start watchdog");
        let mut i = 0u64;
        group.bench_function("full_watchdog", |b| {
            b.iter_batched(
                || {
                    i += 1;
                    format!("key-{}", i % 512)
                },
                |key| client.set(&key, "value").unwrap(),
                BatchSize::SmallInput,
            )
        });
        driver.stop();
    }

    group.finish();
}

criterion_group!(benches, kvs_set_roundtrips);
criterion_main!(benches);
