//! Micro-benchmarks of the recovery-loop primitives (§5.2).
//!
//! The coordinator sits on the driver's failure path, so its per-report
//! costs must stay negligible next to a check round: computing a jittered
//! backoff delay, spreading checker phases, and absorbing a report into
//! the bounded log ring are all O(1) and should bench in nanoseconds.

use criterion::{criterion_group, criterion_main, Criterion};

use std::time::Duration;

use wdog_core::prelude::*;
use wdog_recover::policy::{BackoffPolicy, RecoveryPolicy};

fn sample_report() -> FailureReport {
    FailureReport {
        checker: "kvs.flusher.mimic".into(),
        kind: FailureKind::Stuck,
        location: FaultLocation::new("kvs.flusher", "flush_memtable")
            .with_op("wal::append#disk_write"),
        detail: "operation did not complete".into(),
        payload: vec![("path".into(), "wal/0".into())],
        observed_latency_ms: Some(812),
        at_ms: 1,
    }
}

fn backoff_costs(c: &mut Criterion) {
    let policy = RecoveryPolicy::fast();
    let plain = BackoffPolicy {
        jitter_frac: 0.0,
        ..policy.backoff.clone()
    };
    let mut group = c.benchmark_group("recover_backoff");
    group.bench_function("delay_plain", |b| {
        let mut attempt = 0u32;
        b.iter(|| {
            attempt = (attempt + 1) % 8;
            plain.delay(attempt, 42)
        })
    });
    // The jittered path hashes the incident seed per attempt — the price
    // of a reproducible-yet-desynchronized schedule.
    group.bench_function("delay_jittered", |b| {
        let mut attempt = 0u32;
        b.iter(|| {
            attempt = (attempt + 1) % 8;
            policy.backoff.delay(attempt, 42)
        })
    });
    group.finish();
}

fn phase_costs(c: &mut Criterion) {
    let policy = SchedulePolicy::every(Duration::from_millis(100)).with_phase_spread(0.5);
    let mut group = c.benchmark_group("recover_phase");
    group.bench_function("phase_offset", |b| {
        b.iter(|| policy.phase_offset("kvs.probe.set_get"))
    });
    group.finish();
}

fn log_ring_costs(c: &mut Criterion) {
    let report = sample_report();
    let mut group = c.benchmark_group("recover_log_ring");
    // Steady state below capacity: lock + clone + push.
    group.bench_function("push_unsaturated", |b| {
        let log = LogAction::new();
        b.iter(|| log.on_failure(&report))
    });
    // Failure storm: every push also evicts the oldest entry.
    group.bench_function("push_saturated", |b| {
        let log = LogAction::with_capacity(64);
        for _ in 0..64 {
            log.on_failure(&report);
        }
        b.iter(|| log.on_failure(&report))
    });
    group.finish();
}

criterion_group!(benches, backoff_costs, phase_costs, log_ring_costs);
criterion_main!(benches);
