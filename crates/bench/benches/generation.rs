//! Benchmarks of the AutoWatchdog pipeline itself (Figures 2–3 machinery):
//! region finding, reduction, and full plan generation over both target
//! IRs, plus a synthetic large program to show the pipeline scales far
//! beyond the targets, plus static IR extraction from each target's
//! Rust source (lexing + region discovery + classification, disk reads
//! included — this is what `wdog-lint` pays per target).

use criterion::{criterion_group, criterion_main, Criterion};

use wdog_analyze::{extract_target, target_named};

use wdog_gen::ir::{ArgType, OpKind, ProgramBuilder, ProgramIr};
use wdog_gen::plan::generate_plan;
use wdog_gen::reduce::{reduce_program, ReductionConfig};
use wdog_gen::regions::find_regions;

/// A synthetic program with `n` long-running regions, each a chain of five
/// functions mixing vulnerable and deterministic operations.
fn synthetic(n: usize) -> ProgramIr {
    let mut b = ProgramBuilder::new("synthetic");
    for r in 0..n {
        b = b.function(format!("loop_{r}"), |f| {
            f.long_running().call_in_loop(format!("stage_{r}_0"))
        });
        for s in 0..5 {
            let next = (s + 1 < 5).then(|| format!("stage_{r}_{}", s + 1));
            b = b.function(format!("stage_{r}_{s}"), move |mut f| {
                f = f
                    .compute("decode")
                    .op("write", OpKind::DiskWrite, |o| {
                        o.resource(format!("vol{s}/"))
                            .arg("payload", ArgType::Bytes)
                    })
                    .op("send", OpKind::NetSend, |o| o.resource(format!("peer{s}")))
                    .compute("update");
                if let Some(next) = next {
                    f = f.call(next);
                }
                f
            });
        }
    }
    b.build()
}

fn generation(c: &mut Criterion) {
    let kvs_ir = kvs::wd::describe_ir();
    let config = ReductionConfig::default();
    let big = synthetic(50);

    let mut group = c.benchmark_group("generation");
    group.bench_function("find_regions_kvs", |b| b.iter(|| find_regions(&kvs_ir)));
    group.bench_function("reduce_kvs", |b| {
        b.iter(|| reduce_program(&kvs_ir, &config))
    });
    group.bench_function("plan_kvs", |b| b.iter(|| generate_plan(&kvs_ir, &config)));
    group.bench_function("plan_synthetic_50_regions", |b| {
        b.iter(|| generate_plan(&big, &config))
    });
    for name in ["kvs", "minizk", "miniblock"] {
        let cfg = target_named(name).expect("builtin target");
        group.bench_function(&format!("extract_{name}"), |b| {
            b.iter(|| extract_target(cfg).expect("workspace sources readable"))
        });
    }
    group.finish();
}

criterion_group!(benches, generation);
criterion_main!(benches);
