//! Micro-benchmarks of the watchdog primitives: hook firing, context
//! publish/read, and driver scheduling throughput.
//!
//! These quantify the §3.1 cost model at the operation level: a disabled
//! hook must cost nanoseconds (one relaxed load), an enabled hook one map
//! insert under a short lock, and the driver must dispatch rounds without
//! measurable pressure on the main program's CPU.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use wdog_core::prelude::*;

fn hook_costs(c: &mut Criterion) {
    let table = ContextTable::new(RealClock::shared());
    let hooks = Hooks::new(Arc::clone(&table));
    let site = hooks.site("bench");

    let mut group = c.benchmark_group("hook");
    group.bench_function("disabled", |b| {
        hooks.set_enabled(false);
        b.iter(|| {
            if let Some(mut fire) = site.fire() {
                fire.field("k", CtxValue::U64(1));
            }
        })
    });
    group.bench_function("enabled", |b| {
        hooks.set_enabled(true);
        b.iter(|| {
            if let Some(mut fire) = site.fire() {
                fire.field("k", CtxValue::U64(1));
            }
        })
    });
    group.finish();
}

fn context_costs(c: &mut Criterion) {
    let table = ContextTable::new(RealClock::shared());
    table.publish(
        "slot",
        vec![
            ("a".into(), CtxValue::U64(1)),
            ("b".into(), CtxValue::Str("path/to/resource".into())),
            ("c".into(), CtxValue::Bytes(vec![0u8; 256])),
        ],
    );
    let reader = table.reader();

    let mut group = c.benchmark_group("context");
    group.bench_function("publish_3_fields", |b| {
        b.iter(|| {
            table.publish(
                "slot",
                vec![
                    ("a".into(), CtxValue::U64(2)),
                    ("b".into(), CtxValue::Str("path/to/resource".into())),
                    ("c".into(), CtxValue::Bytes(vec![0u8; 256])),
                ],
            )
        })
    });
    group.bench_function("read_snapshot", |b| b.iter(|| reader.read("slot").unwrap()));
    group.finish();
}

fn driver_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("driver");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    // Checks completed per second with 16 trivial checkers at a 1 ms
    // round interval: measures pure scheduling/dispatch overhead.
    group.bench_function("rounds_16_checkers", |b| {
        b.iter_custom(|iters| {
            let mut driver = WatchdogDriver::builder()
                .config(WatchdogConfig {
                    policy: SchedulePolicy::every(Duration::from_millis(1)),
                    default_timeout: Duration::from_secs(1),
                    health_window: Duration::from_secs(10),
                    spawn_order_seed: None,
                })
                .checkers((0..16).map(|i| {
                    Box::new(FnChecker::new(format!("c{i}"), "bench", || {
                        CheckStatus::Pass
                    })) as Box<dyn Checker>
                }))
                .build()
                .unwrap();
            driver.start().unwrap();
            let start = std::time::Instant::now();
            let target = iters.max(1);
            while driver.stats().passes < target {
                std::thread::sleep(Duration::from_micros(200));
            }
            let elapsed = start.elapsed();
            driver.stop();
            elapsed
        })
    });
    group.finish();
}

criterion_group!(benches, hook_costs, context_costs, driver_throughput);
criterion_main!(benches);
