//! Offline shim for `serde_derive`.
//!
//! Derives the value-model `Serialize`/`Deserialize` traits defined by the
//! in-workspace `serde` shim. The derive follows serde's data model for the
//! shapes this workspace uses:
//!
//! - named-field structs   → JSON objects keyed by field name
//! - newtype structs       → the inner value, untagged
//! - multi-field tuple structs → arrays
//! - unit structs          → `null`
//! - enums                 → externally tagged: unit variants as `"Name"`,
//!   payload variants as `{"Name": value | [values] | {fields}}`
//!
//! Implemented with raw `proc_macro` token iteration (no `syn`/`quote`,
//! which are unavailable offline). Generic types are not supported — the
//! workspace derives only on concrete types.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Serialize)
}

/// Derives `serde::Deserialize`.
///
/// Supports the `#[serde(default)]` field attribute: such fields fall back
/// to `Default::default()` when their key is absent from the input object.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Trait {
    Serialize,
    Deserialize,
}

enum Shape {
    /// `struct S;`
    UnitStruct,
    /// `struct S { a: T, b: U }`
    NamedStruct(Vec<Field>),
    /// `struct S(T, U);` with field count.
    TupleStruct(usize),
    /// `enum E { ... }`
    Enum(Vec<Variant>),
}

/// A named field plus whether it carries `#[serde(default)]`.
struct Field {
    name: String,
    default: bool,
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

fn expand(input: TokenStream, which: Trait) -> TokenStream {
    let (name, shape) = match parse(input) {
        Ok(parsed) => parsed,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let body = match which {
        Trait::Serialize => gen_serialize(&name, &shape),
        Trait::Deserialize => gen_deserialize(&name, &shape),
    };
    body.parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive shim: generic type {name} is not supported"
        ));
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::NamedStruct(parse_named_fields(g.stream())?)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok((name, Shape::TupleStruct(count_tuple_fields(g.stream()))))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Shape::UnitStruct)),
            other => Err(format!("unsupported struct body for {name}: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::Enum(parse_variants(g.stream())?)))
            }
            other => Err(format!("unsupported enum body for {name}: {other:?}")),
        },
        other => Err(format!("expected struct/enum, got `{other}`")),
    }
}

/// Skips leading `#[...]` attributes (including doc comments) and
/// `pub`/`pub(...)` visibility. Returns whether a `#[serde(default)]`
/// attribute was among those skipped.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut has_default = false;
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Bracket {
                        if attr_is_serde_default(g.stream()) {
                            has_default = true;
                        }
                        *i += 1;
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return has_default,
        }
    }
}

/// Recognizes the token shape of a `serde(default)` attribute body.
fn attr_is_serde_default(stream: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            g.stream()
                .into_iter()
                .any(|t| matches!(t, TokenTree::Ident(ref w) if w.to_string() == "default"))
        }
        _ => false,
    }
}

/// Parses `name: Type, ...` field lists, returning the fields.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let default = skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field {name}, got {other:?}")),
        }
        // Consume the type: everything until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, default });
    }
    Ok(fields)
}

/// Counts top-level fields of a tuple struct/variant: comma-separated
/// segments at angle-bracket depth 0 (ignoring a trailing comma).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut segment_has_tokens = false;
    for tok in stream {
        match tok {
            TokenTree::Punct(ref p) if p.as_char() == '<' => {
                depth += 1;
                segment_has_tokens = true;
            }
            TokenTree::Punct(ref p) if p.as_char() == '>' => {
                depth -= 1;
                segment_has_tokens = true;
            }
            TokenTree::Punct(ref p) if p.as_char() == ',' && depth == 0 => {
                if segment_has_tokens {
                    count += 1;
                }
                segment_has_tokens = false;
            }
            _ => segment_has_tokens = true,
        }
    }
    if segment_has_tokens {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantFields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_named_fields(g.stream())?)
            }
            _ => VariantFields::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            return Err(format!(
                "serde_derive shim: explicit discriminant on variant {name} is not supported"
            ));
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation — Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::NamedStruct(fields) => ser_named_fields(fields, "self."),
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| match &v.fields {
                    VariantFields::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),",
                        v = v.name
                    ),
                    VariantFields::Tuple(1) => format!(
                        "{name}::{v}(f0) => ::serde::Value::tagged(\"{v}\", ::serde::Serialize::to_value(f0)),",
                        v = v.name
                    ),
                    VariantFields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{v}({binds}) => ::serde::Value::tagged(\"{v}\", ::serde::Value::Array(vec![{items}])),",
                            v = v.name,
                            binds = binds.join(", "),
                            items = items.join(", ")
                        )
                    }
                    VariantFields::Named(fields) => {
                        let binds = fields
                            .iter()
                            .map(|f| f.name.as_str())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let obj = ser_named_fields(fields, "");
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::tagged(\"{v}\", {obj}),",
                            v = v.name
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

/// Builds a `Value::Object` expression from field names; `prefix` is
/// `"self."` for structs and empty for destructured enum variants.
fn ser_named_fields(fields: &[Field], prefix: &str) -> String {
    let mut out = String::from("{ let mut m = ::serde::Map::new();\n");
    for f in fields {
        let f = &f.name;
        out.push_str(&format!(
            "m.insert(\"{f}\".to_string(), ::serde::Serialize::to_value(&{prefix}{f}));\n"
        ));
    }
    out.push_str("::serde::Value::Object(m) }");
    out
}

// ---------------------------------------------------------------------------
// Code generation — Deserialize
// ---------------------------------------------------------------------------

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::UnitStruct => format!(
            "if value.is_null() {{ Ok({name}) }} else {{ \
             Err(::serde::Error::custom(\"expected null for {name}\")) }}"
        ),
        Shape::NamedStruct(fields) => {
            let inner = de_named_fields(name, fields);
            format!(
                "let obj = value.as_object().ok_or_else(|| \
                 ::serde::Error::custom(format!(\"expected object for {name}, got {{}}\", value.kind())))?;\n\
                 Ok({name} {inner})"
            )
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(value).map_err(|e| e.context(\"{name}\"))?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = value.as_array().ok_or_else(|| \
                 ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                 if items.len() != {n} {{ return Err(::serde::Error::custom(\
                 format!(\"expected {n} elements for {name}, got {{}}\", items.len()))); }}\n\
                 Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Shape::Enum(variants) => de_enum(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}

fn de_named_fields(type_name: &str, fields: &[Field]) -> String {
    let mut out = String::from("{\n");
    for f in fields {
        let helper = if f.default {
            "from_field_or_default"
        } else {
            "from_field"
        };
        let f = &f.name;
        out.push_str(&format!(
            "{f}: ::serde::{helper}(obj, \"{type_name}\", \"{f}\")?,\n"
        ));
    }
    out.push('}');
    out
}

fn de_enum(name: &str, variants: &[Variant]) -> String {
    // Unit variants arrive as plain strings; payload variants as one-entry
    // objects. Unit variants inside an object (`{"V": null}`) also accepted.
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, VariantFields::Unit))
        .map(|v| format!("\"{v}\" => return Ok({name}::{v}),", v = v.name))
        .collect();
    let tagged_arms: Vec<String> = variants
        .iter()
        .map(|v| match &v.fields {
            VariantFields::Unit => {
                format!("\"{v}\" => Ok({name}::{v}),", v = v.name)
            }
            VariantFields::Tuple(1) => format!(
                "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::from_value(inner)\
                 .map_err(|e| e.context(\"{name}::{v}\"))?)),",
                v = v.name
            ),
            VariantFields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                format!(
                    "\"{v}\" => {{\n\
                     let items = inner.as_array().ok_or_else(|| \
                     ::serde::Error::custom(\"expected array for {name}::{v}\"))?;\n\
                     if items.len() != {n} {{ return Err(::serde::Error::custom(\
                     \"wrong arity for {name}::{v}\")); }}\n\
                     Ok({name}::{v}({items}))\n}}",
                    v = v.name,
                    items = items.join(", ")
                )
            }
            VariantFields::Named(fields) => {
                let inner_fields = de_named_fields(&format!("{name}::{}", v.name), fields);
                format!(
                    "\"{v}\" => {{\n\
                     let obj = inner.as_object().ok_or_else(|| \
                     ::serde::Error::custom(\"expected object for {name}::{v}\"))?;\n\
                     Ok({name}::{v} {inner_fields})\n}}",
                    v = v.name
                )
            }
        })
        .collect();
    format!(
        "match value {{\n\
         ::serde::Value::Str(s) => {{\n\
         match s.as_str() {{\n{units}\n_ => {{}}\n}}\n\
         Err(::serde::Error::custom(format!(\"unknown {name} variant {{s}}\")))\n\
         }}\n\
         ::serde::Value::Object(m) if m.len() == 1 => {{\n\
         let (tag, inner) = m.iter().next().expect(\"one entry\");\n\
         match tag.as_str() {{\n{tagged}\n\
         other => Err(::serde::Error::custom(format!(\"unknown {name} variant {{other}}\"))),\n\
         }}\n\
         }}\n\
         other => Err(::serde::Error::custom(format!(\"expected {name}, got {{}}\", other.kind()))),\n\
         }}",
        units = unit_arms.join("\n"),
        tagged = tagged_arms.join("\n"),
    )
}
