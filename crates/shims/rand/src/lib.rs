//! Offline shim for the `rand` crate (0.8-style API).
//!
//! Deterministic, dependency-free PRNG support for the simulation substrate:
//! `StdRng` is SplitMix64 (good 64-bit avalanche, tiny state) rather than
//! ChaCha — cryptographic quality is irrelevant here, reproducibility under
//! a fixed seed is what the workspace needs. Exposes `Rng` (`gen`,
//! `gen_range`, `gen_bool`), `SeedableRng::seed_from_u64`, and
//! `rand::rngs::StdRng`.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word in the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types producible uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is valid.
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// User-facing random-value methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds an RNG whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Convenience re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn f64_standard_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }
}
