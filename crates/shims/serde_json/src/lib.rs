//! Offline shim for `serde_json`.
//!
//! A complete single-file JSON codec over the `serde` shim's [`Value`]
//! model: `to_string`/`to_string_pretty`/`to_vec` print standard JSON,
//! `from_str`/`from_slice` parse it (including `\uXXXX` escapes and
//! surrogate pairs). Wire formats in the workspace (kvs requests, minizk
//! quorum messages, miniblock reports, persisted experiment results) all
//! travel through these functions, so they are real codecs, not stubs.

mod parse;

pub use serde::{Error, Map, Value};

use serde::{Deserialize, Serialize};

/// Serializes a value into its [`Value`]-model representation.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Rebuilds a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Serializes a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value as human-readable JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes a value as compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parses a typed value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse::parse(s)?;
    T::from_value(&value)
}

/// Parses a typed value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::U128(v) => out.push_str(&v.to_string()),
        Value::F64(v) => write_f64(out, *v),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * level));
    }
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's shortest-roundtrip Display; force a decimal point so the
        // token parses back as a float.
        let s = v.to_string();
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no Inf/NaN; match serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn primitives_print_as_json() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string("hi").unwrap(), "\"hi\"");
        assert_eq!(to_string(&vec![1u8, 2]).unwrap(), "[1,2]");
        assert_eq!(to_string(&None::<u8>).unwrap(), "null");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line\nquote\"back\\slash\ttab\u{1}unicode\u{1F600}".to_string();
        let json = to_string(&original).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn containers_roundtrip_through_text() {
        let v: Vec<(String, u64)> = vec![("a".into(), 1), ("b".into(), 2)];
        let json = to_string(&v).unwrap();
        let back: Vec<(String, u64)> = from_str(&json).unwrap();
        assert_eq!(back, v);

        let d = Duration::from_micros(1_234_567);
        let back: Duration = from_str(&to_string(&d).unwrap()).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn pretty_output_is_indented_and_parses() {
        let v: Vec<Vec<u64>> = vec![vec![1], vec![2, 3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  "));
        let back: Vec<Vec<u64>> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str::<u64>("not json").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn extreme_numbers_roundtrip() {
        let back: u64 = from_str(&to_string(&u64::MAX).unwrap()).unwrap();
        assert_eq!(back, u64::MAX);
        let back: u128 = from_str(&to_string(&u128::MAX).unwrap()).unwrap();
        assert_eq!(back, u128::MAX);
        let back: i64 = from_str(&to_string(&i64::MIN).unwrap()).unwrap();
        assert_eq!(back, i64::MIN);
        let back: f64 = from_str(&to_string(&1.25e-9f64).unwrap()).unwrap();
        assert_eq!(back, 1.25e-9);
    }
}
