//! Recursive-descent JSON parser producing the `serde` shim's [`Value`]
//! tree. Standard JSON: objects, arrays, strings with escapes (including
//! `\uXXXX` and surrogate pairs), numbers (widest-fitting integer type,
//! falling back to `f64`), booleans, `null`.

use serde::{Error, Map, Value};

pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, Error> {
        let b = self
            .peek()
            .ok_or_else(|| Error::custom("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.bump()?;
        if got != b {
            return Err(Error::custom(format!(
                "expected `{}`, got `{}` at byte {}",
                b as char,
                got as char,
                self.pos - 1
            )));
        }
        Ok(())
    }

    fn expect_keyword(&mut self, keyword: &str) -> Result<(), Error> {
        let end = self.pos + keyword.len();
        if self.bytes.get(self.pos..end) == Some(keyword.as_bytes()) {
            self.pos = end;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self
            .peek()
            .ok_or_else(|| Error::custom("unexpected end of input"))?
        {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string().map(Value::Str),
            b't' => self.expect_keyword("true").map(|_| Value::Bool(true)),
            b'f' => self.expect_keyword("false").map(|_| Value::Bool(false)),
            b'n' => self.expect_keyword("null").map(|_| Value::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::custom(format!(
                "unexpected `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Value::Object(map)),
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}`, got `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Value::Array(items)),
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]`, got `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::custom(format!("invalid utf-8 in string: {e}")))?;
                out.push_str(chunk);
            }
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hi = self.hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require a following \uXXXX low half.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(Error::custom("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::custom("invalid unicode escape"))?,
                        );
                    }
                    other => {
                        return Err(Error::custom(format!(
                            "invalid escape `\\{}`",
                            other as char
                        )))
                    }
                },
                other => {
                    return Err(Error::custom(format!(
                        "unescaped control byte 0x{other:02x} in string"
                    )))
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump()?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::custom("invalid hex digit in \\u escape"))?;
            v = v * 16 + digit;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::custom(format!("invalid number: {e}")))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
            if let Ok(v) = text.parse::<u128>() {
                return Ok(Value::U128(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}
