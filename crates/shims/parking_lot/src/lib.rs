//! Offline shim for the `parking_lot` crate.
//!
//! The workspace builds in environments with no registry access, so the
//! external `parking_lot` dependency is replaced by this thin adapter over
//! `std::sync`. It exposes exactly the API surface the workspace uses:
//! `Mutex` (including `try_lock_for`), `RwLock`, and `Condvar` with
//! `wait`/`wait_for`. Semantics match parking_lot where they differ from
//! std: locks are not poisoned (a panicking holder does not wedge the lock
//! for everyone else), and guards are returned directly rather than inside
//! `Result`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::TryLockError;
use std::time::{Duration, Instant};

/// How long `try_lock_for` sleeps between acquisition attempts.
const TIMED_RETRY: Duration = Duration::from_micros(200);

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// A mutual exclusion primitive (non-poisoning, parking_lot-style API).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
///
/// Holds the underlying std guard in an `Option` so [`Condvar::wait`] can
/// temporarily take it, block on the std condvar, and put it back.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire the lock, giving up after `timeout`.
    pub fn try_lock_for(&self, timeout: Duration) -> Option<MutexGuard<'_, T>> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(guard) = self.try_lock() {
                return Some(guard);
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(TIMED_RETRY.min(deadline.saturating_duration_since(Instant::now())));
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed: `&mut self` guarantees exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(_) => panic!("mutex storage invalid"),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// A reader-writer lock (non-poisoning, parking_lot-style API).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        RwLockReadGuard { inner }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        RwLockWriteGuard { inner }
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(inner) => Some(RwLockReadGuard { inner }),
            Err(TryLockError::Poisoned(e)) => Some(RwLockReadGuard {
                inner: e.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(inner) => Some(RwLockWriteGuard { inner }),
            Err(TryLockError::Poisoned(e)) => Some(RwLockWriteGuard {
                inner: e.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(_) => panic!("rwlock storage invalid"),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable compatible with this module's [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn try_lock_fails_when_held() {
        let m = Arc::new(Mutex::new(()));
        let g = m.lock();
        assert!(m.try_lock().is_none());
        assert!(m.try_lock_for(Duration::from_millis(5)).is_none());
        drop(g);
        assert!(m.try_lock_for(Duration::from_millis(5)).is_some());
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5u32);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
