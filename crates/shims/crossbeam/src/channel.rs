//! MPMC channels with the `crossbeam::channel` API surface used by the
//! workspace: `bounded`, `unbounded`, cloneable `Sender`/`Receiver`,
//! `send`, `try_send`, `recv`, `try_recv`, `recv_timeout`.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// All receivers are gone.
    Disconnected(T),
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("sending on a full channel"),
            TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Nothing arrived before the timeout.
    Timeout,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    cap: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Shared<T> {
    fn is_full(&self, state: &State<T>) -> bool {
        self.cap.is_some_and(|c| state.queue.len() >= c)
    }
}

/// The sending half of a channel. Cloneable (multi-producer).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Cloneable (multi-consumer).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a channel with unlimited capacity.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a channel holding at most `cap` messages; `send` blocks when
/// full. `cap == 0` is treated as capacity 1 (this shim has no rendezvous
/// channels, and the workspace never uses `bounded(0)`).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap.max(1)))
}

fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        cap,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Sends a message, blocking while the channel is full.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            if !self.shared.is_full(&state) {
                state.queue.push_back(msg);
                drop(state);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self
                .shared
                .not_full
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Sends without blocking; fails if the channel is full or disconnected.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if self.shared.is_full(&state) {
            return Err(TrySendError::Full(msg));
        }
        state.queue.push_back(msg);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queue
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> Receiver<T> {
    /// Receives a message, blocking until one arrives or all senders drop.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .shared
                .not_empty
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Receives without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(msg) = state.queue.pop_front() {
            drop(state);
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if state.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Receives a message, giving up after `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(RecvTimeoutError::Timeout);
            }
            let (next, result) = self
                .shared
                .not_empty
                .wait_timeout(state, remaining)
                .unwrap_or_else(|e| e.into_inner());
            state = next;
            if result.timed_out() && state.queue.is_empty() {
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queue
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.receivers -= 1;
        if state.receivers == 0 {
            drop(state);
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn bounded_try_send_full() {
        let (tx, _rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
    }

    #[test]
    fn recv_timeout_times_out_then_disconnects() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn mpmc_each_message_delivered_once() {
        let (tx, rx) = unbounded();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        drop(rx);
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
    }

    #[test]
    fn bounded_send_unblocks_on_recv() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).unwrap());
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap();
    }
}
