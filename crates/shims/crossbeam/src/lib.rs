//! Offline shim for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel` — multi-producer **multi-consumer**
//! channels with optional capacity — implemented over a mutex-protected
//! `VecDeque` plus two condition variables. std's `mpsc` is not sufficient
//! because the workspace clones `Receiver`s (per-checker executors and
//! worker pools all drain one queue).

pub mod channel;
