//! Offline shim for the `bytes` crate.
//!
//! `Bytes` here is a cheaply-cloneable immutable byte buffer backed by
//! `Arc<[u8]>`. The workspace only passes whole frames around (no
//! split/advance), so the slicing machinery of the real crate is omitted.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: bytes.into() }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes { data: bytes.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Self::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Self::from_static(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        **self == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        **self == other[..]
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_and_compares() {
        let b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(b, [1u8, 2, 3][..]);
        let c = b.clone();
        assert_eq!(b, c);
    }

    #[test]
    fn static_and_copy_constructors() {
        let s = Bytes::from_static(b"__wd__");
        assert_eq!(&*s, b"__wd__");
        let c = Bytes::copy_from_slice(&[9, 9]);
        assert_eq!(c.len(), 2);
        assert!(Bytes::new().is_empty());
    }
}
