//! Offline shim for the `proptest` crate.
//!
//! Deterministic random-input property testing. Compared to real proptest
//! this shim keeps the `Strategy` combinator surface the workspace uses
//! (`prop_map`, `prop_flat_map`, tuples, ranges, `any`, `Just`,
//! `prop_oneof!`, `proptest::collection::vec`, character-class string
//! patterns) and drops shrinking: a failing case panics with its case
//! number, and the generator is seeded deterministically per test name, so
//! failures reproduce exactly by re-running the test.

use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod collection;
pub mod string;

/// The RNG handed to strategies; deterministic per (test name, case index).
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Builds the RNG for one test case.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h ^ (u64::from(case) << 32 | u64::from(case))),
        }
    }

    /// Returns the next random word.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Draws uniformly from `[0, bound)`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "cannot sample from empty range");
        self.inner.gen_range(0..bound)
    }
}

/// Run configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then a value from the strategy `f`
    /// builds from it (dependent generation).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: Box::new(move |rng| self.new_value(rng)),
        }
    }
}

/// Map combinator (see [`Strategy::prop_map`]).
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Flat-map combinator (see [`Strategy::prop_flat_map`]).
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    #[allow(clippy::type_complexity)]
    gen: Box<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over the given alternatives.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len());
        self.arms[idx].new_value(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

/// Types with a canonical full-range strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// Character-class string patterns like `"[a-z]{1,8}"` (see the `string`
/// module for the supported subset).
impl Strategy for &str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        string::generate(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// item becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), case);
                    let ($($pat,)+) = ($($crate::Strategy::new_value(&($strat), &mut __rng),)+);
                    // The body runs once per case; a panic identifies the
                    // case via the deterministic (test name, case) seed.
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform random choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts inside a property (plain `assert!`: this shim has no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// The commonly-glob-imported names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..500 {
            let v = (3..9usize).new_value(&mut rng);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::for_case("oneof", 0);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.new_value(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn flat_map_controls_dependent_sizes() {
        let s = (1..5usize).prop_flat_map(|n| crate::collection::vec(Just(0u8), n));
        let mut rng = TestRng::for_case("flat", 0);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn the_macro_itself_works(x in 0..10u8, s in "[a-z]{1,4}") {
            prop_assert!(x < 10);
            prop_assert!((1..=4).contains(&s.len()));
            prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }
}
