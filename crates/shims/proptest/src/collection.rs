//! Collection strategies (`proptest::collection::vec`).

use crate::{Strategy, TestRng};
use std::ops::Range;

/// A length specification for collection strategies: either an exact size
/// or a half-open range `[min, max)`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.max_exclusive <= self.min + 1 {
            return self.min;
        }
        self.min + rng.below(self.max_exclusive - self.min)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

/// Strategy for `Vec<T>` with random length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Just;

    #[test]
    fn length_respects_range_and_exact_size() {
        let mut rng = TestRng::for_case("vec", 0);
        let ranged = vec(Just(1u8), 2..6);
        for _ in 0..200 {
            let v = ranged.new_value(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
        let exact = vec(Just(1u8), 4usize);
        assert_eq!(exact.new_value(&mut rng).len(), 4);
    }
}
