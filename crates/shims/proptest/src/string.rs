//! String generation from the character-class pattern subset the workspace
//! uses: sequences of `[class]{m,n}`, `[class]{n}`, or literal characters,
//! where a class holds plain characters and `a-z` style ranges.

use crate::TestRng;

/// Generates one string matching `pattern`.
///
/// Panics on syntax outside the supported subset — that is a test-author
/// error, not a runtime condition.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        match chars[i] {
            '[' => {
                let (class, next) = parse_class(&chars, i);
                i = next;
                let (min, max, next) = parse_repeat(&chars, i);
                i = next;
                let n = if max > min {
                    min + rng.below(max - min + 1)
                } else {
                    min
                };
                for _ in 0..n {
                    out.push(class[rng.below(class.len())]);
                }
            }
            '\\' => {
                i += 1;
                if i < chars.len() {
                    out.push(chars[i]);
                    i += 1;
                }
            }
            c => {
                assert!(
                    !"{}()*+?|^$.".contains(c),
                    "unsupported pattern syntax `{c}` in {pattern:?}"
                );
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

/// Parses `[...]` starting at `start` (which must point at `[`); returns
/// the expanded character set and the index after `]`.
fn parse_class(chars: &[char], start: usize) -> (Vec<char>, usize) {
    let mut set = Vec::new();
    let mut i = start + 1;
    while i < chars.len() && chars[i] != ']' {
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            assert!(lo <= hi, "inverted class range {lo}-{hi}");
            for c in lo..=hi {
                set.push(c);
            }
            i += 3;
        } else {
            set.push(chars[i]);
            i += 1;
        }
    }
    assert!(i < chars.len(), "unterminated character class");
    assert!(!set.is_empty(), "empty character class");
    (set, i + 1)
}

/// Parses an optional `{m,n}` or `{n}` repetition; returns (min, max, next
/// index). Without a repetition, both are 1.
fn parse_repeat(chars: &[char], start: usize) -> (usize, usize, usize) {
    if start >= chars.len() || chars[start] != '{' {
        return (1, 1, start);
    }
    let mut i = start + 1;
    let mut text = String::new();
    while i < chars.len() && chars[i] != '}' {
        text.push(chars[i]);
        i += 1;
    }
    assert!(i < chars.len(), "unterminated repetition");
    let (min, max) = match text.split_once(',') {
        Some((lo, hi)) => (
            lo.trim().parse().expect("repeat min"),
            hi.trim().parse().expect("repeat max"),
        ),
        None => {
            let n = text.trim().parse().expect("repeat count");
            (n, n)
        }
    };
    (min, max, i + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_range_and_bounds() {
        let mut rng = TestRng::for_case("string", 0);
        for _ in 0..200 {
            let s = generate("[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }

    #[test]
    fn printable_ascii_class() {
        let mut rng = TestRng::for_case("string2", 0);
        for _ in 0..200 {
            let s = generate("[ -~]{0,16}", &mut rng);
            assert!(s.len() <= 16);
            assert!(s.bytes().all(|b| (0x20..=0x7e).contains(&b)));
        }
    }

    #[test]
    fn literals_pass_through() {
        let mut rng = TestRng::for_case("string3", 0);
        assert_eq!(generate("abc", &mut rng), "abc");
    }
}
