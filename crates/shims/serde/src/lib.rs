//! Offline shim for the `serde` crate.
//!
//! Real serde is a zero-copy visitor framework; this shim is a small
//! value-model codec that preserves the property the workspace actually
//! relies on — faithful round-trips of plain data types through JSON — while
//! building with no external dependencies. `Serialize` lowers a value into
//! a [`Value`] tree, `Deserialize` rebuilds it, and the in-workspace
//! `serde_json` shim prints/parses that tree as standard JSON. The
//! `#[derive(Serialize, Deserialize)]` macros come from the sibling
//! `serde_derive` proc-macro crate and follow serde's data model: structs as
//! objects, newtype structs as their inner value, enums externally tagged.

mod impls;
mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Value};

use std::fmt;

/// Serialization/deserialization error: a message plus a breadcrumb path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }

    /// Prefixes the error with a location breadcrumb (`Struct.field`).
    pub fn context(self, location: &str) -> Self {
        Error {
            msg: format!("{location}: {}", self.msg),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can lower themselves into a [`Value`] tree.
pub trait Serialize {
    /// Produces the value-model representation of `self`.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from its value-model representation.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Looks up a struct field in an object, treating a missing key as `Null`
/// (so `Option` fields tolerate omission, as with real serde).
pub fn from_field<T: Deserialize>(obj: &Map, type_name: &str, field: &str) -> Result<T, Error> {
    static NULL: Value = Value::Null;
    let value = obj.get(field).unwrap_or(&NULL);
    T::from_value(value).map_err(|e| e.context(&format!("{type_name}.{field}")))
}

/// Looks up a `#[serde(default)]` struct field, substituting the type's
/// default when the key is absent (matching real serde's behaviour, so data
/// written before a field existed still loads).
pub fn from_field_or_default<T: Deserialize + Default>(
    obj: &Map,
    type_name: &str,
    field: &str,
) -> Result<T, Error> {
    match obj.get(field) {
        None => Ok(T::default()),
        Some(value) => T::from_value(value).map_err(|e| e.context(&format!("{type_name}.{field}"))),
    }
}
