//! The value model: a JSON-shaped tree with enough number width to hold
//! every integer type the workspace serializes (including `u128` histogram
//! sums).

use std::fmt;

/// An insertion-ordered string-keyed map (JSON object).
///
/// Insertion order is preserved so printed JSON matches declaration order of
/// struct fields, which keeps golden output stable and diffable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a key/value pair, replacing any existing entry for the key.
    pub fn insert(&mut self, key: String, value: Value) {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// One node of the serialized tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also `Option::None` and unit).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer up to `u64`.
    U64(u64),
    /// Negative integer (positive values normalize to [`Value::U64`]).
    I64(i64),
    /// Integer too large for `u64` (histogram sums are `u128`).
    U128(u128),
    /// Floating point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object.
    Object(Map),
}

impl Value {
    /// Builds the externally-tagged representation `{tag: value}` used for
    /// enum variants with payloads.
    pub fn tagged(tag: &str, value: Value) -> Value {
        let mut m = Map::new();
        m.insert(tag.to_string(), value);
        Value::Object(m)
    }

    /// Returns the object map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Returns the elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Returns the string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as `u64` if it is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) => u64::try_from(*v).ok(),
            Value::U128(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Returns the value as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::U64(v) => i64::try_from(*v).ok(),
            Value::I64(v) => Some(*v),
            Value::U128(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Returns the value as `u128` if it is a non-negative integer.
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            Value::U64(v) => Some(u128::from(*v)),
            Value::I64(v) => u128::try_from(*v).ok(),
            Value::U128(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the value as `f64` if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            Value::U128(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Short label for error messages ("object", "string", ...).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::U128(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::U128(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Array(_) | Value::Object(_) => f.write_str(self.kind()),
        }
    }
}
