//! Codec implementations for the primitive and container types the
//! workspace serializes.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::time::Duration;

use crate::{Deserialize, Error, Map, Serialize, Value};

// ---------------------------------------------------------------------------
// Integers
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_u64()
                    .ok_or_else(|| type_error(stringify!($t), value))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::U64(v as u64)
                } else {
                    Value::I64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_i64()
                    .ok_or_else(|| type_error(stringify!($t), value))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        match u64::try_from(*self) {
            Ok(v) => Value::U64(v),
            Err(_) => Value::U128(*self),
        }
    }
}

impl Deserialize for u128 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_u128().ok_or_else(|| type_error("u128", value))
    }
}

// ---------------------------------------------------------------------------
// Floats, bool, strings, unit
// ---------------------------------------------------------------------------

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| type_error("f64", value))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|v| v as f32)
            .ok_or_else(|| type_error("f32", value))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_bool().ok_or_else(|| type_error("bool", value))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| type_error("String", value))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value.as_str().ok_or_else(|| type_error("char", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, Error> {
        if value.is_null() {
            Ok(())
        } else {
            Err(type_error("()", value))
        }
    }
}

// ---------------------------------------------------------------------------
// References and smart pointers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ---------------------------------------------------------------------------
// Option / containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        if value.is_null() {
            Ok(None)
        } else {
            T::from_value(value).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value.as_array().ok_or_else(|| type_error("Vec", value))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| type_error("BTreeSet", value))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| type_error("BTreeMap", value))?;
        obj.iter()
            .map(|(k, v)| V::from_value(v).map(|v| (k.clone(), v)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys for deterministic output.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Object(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| type_error("HashMap", value))?;
        obj.iter()
            .map(|(k, v)| V::from_value(v).map(|v| (k.clone(), v)))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_array().ok_or_else(|| type_error("tuple", value))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of {expected}, got array of {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// ---------------------------------------------------------------------------
// Duration — serde's canonical `{secs, nanos}` encoding
// ---------------------------------------------------------------------------

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("secs".to_string(), Value::U64(self.as_secs()));
        m.insert(
            "nanos".to_string(),
            Value::U64(u64::from(self.subsec_nanos())),
        );
        Value::Object(m)
    }
}

impl Deserialize for Duration {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| type_error("Duration", value))?;
        let secs = obj
            .get("secs")
            .and_then(Value::as_u64)
            .ok_or_else(|| Error::custom("Duration missing secs"))?;
        let nanos = obj
            .get("nanos")
            .and_then(Value::as_u64)
            .ok_or_else(|| Error::custom("Duration missing nanos"))?;
        let nanos =
            u32::try_from(nanos).map_err(|_| Error::custom("Duration nanos out of range"))?;
        Ok(Duration::new(secs, nanos))
    }
}

fn type_error(expected: &str, got: &Value) -> Error {
    Error::custom(format!("expected {expected}, got {}", got.kind()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(v: T) {
        let encoded = v.to_value();
        let decoded = T::from_value(&encoded).expect("decode");
        assert_eq!(decoded, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(u64::MAX);
        roundtrip(u128::MAX);
        roundtrip(-42i64);
        roundtrip(3.5f64);
        roundtrip(true);
        roundtrip("hello".to_string());
        roundtrip(());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Some("x".to_string()));
        roundtrip(None::<String>);
        roundtrip((1u32, "a".to_string()));
        roundtrip(vec![("k".to_string(), "v".to_string())]);
        roundtrip(BTreeSet::from(["a".to_string(), "b".to_string()]));
        roundtrip(BTreeMap::from([("k".to_string(), 7u64)]));
        roundtrip(Duration::from_millis(1500));
    }

    #[test]
    fn option_tolerates_missing_field() {
        let m = Map::new();
        let got: Option<u64> = crate::from_field(&m, "T", "absent").unwrap();
        assert_eq!(got, None);
    }
}
