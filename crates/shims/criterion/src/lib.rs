//! Offline shim for the `criterion` crate.
//!
//! A minimal statistical benchmark harness: each benchmark warms up for
//! `warm_up_time`, then collects `sample_size` samples within
//! `measurement_time`, and prints `[min median max]` ns/op in a
//! criterion-like line. Supports `iter`, `iter_batched` (setup excluded
//! from timing), and `iter_custom`. Plots, HTML reports, and regression
//! analysis are intentionally out of scope.

use std::time::{Duration, Instant};

/// How per-iteration inputs are batched in [`Bencher::iter_batched`].
/// The shim times each routine call individually, so the hint is accepted
/// for API compatibility and does not change measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: batch many per sample.
    SmallInput,
    /// Large inputs: fewer per batch.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

#[derive(Debug, Clone, Copy)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 50,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

/// Entry point handed to benchmark functions.
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n{name}");
        BenchmarkGroup {
            group: name.to_string(),
            settings: self.settings,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        run_benchmark(name, self.settings, f);
    }
}

/// A group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    group: String,
    settings: Settings,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(2);
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(&format!("{}/{name}", self.group), self.settings, f);
        self
    }

    /// Ends the group (printing is already done per benchmark).
    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    settings: Settings,
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate per-iteration cost.
        let per_iter = warmup(self.settings.warm_up_time, || {
            black_box(routine());
        });
        let (samples, iters) = plan(&self.settings, per_iter);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }

    /// Times `routine` on inputs built by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let per_iter = warmup(self.settings.warm_up_time, || {
            let input = setup();
            black_box(routine(input));
        });
        let (samples, iters) = plan(&self.settings, per_iter);
        let mut inputs = Vec::with_capacity(iters as usize);
        for _ in 0..samples {
            inputs.clear();
            for _ in 0..iters {
                inputs.push(setup());
            }
            let start = Instant::now();
            for input in inputs.drain(..) {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }

    /// Hands full timing control to the routine: it receives an iteration
    /// count and returns the elapsed time for that many iterations.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        // One calibration call, then the planned samples.
        let probe = routine(1).max(Duration::from_nanos(1));
        let (samples, iters) = plan(&self.settings, probe);
        for _ in 0..samples {
            let elapsed = routine(iters);
            self.samples.push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }
}

/// Runs `f` repeatedly for roughly `budget`, returning mean duration/call.
fn warmup<F: FnMut()>(budget: Duration, mut f: F) -> Duration {
    let start = Instant::now();
    let mut calls = 0u64;
    while start.elapsed() < budget || calls == 0 {
        f();
        calls += 1;
        if calls >= 1_000_000 {
            break;
        }
    }
    start.elapsed() / u32::try_from(calls.min(u64::from(u32::MAX))).unwrap_or(u32::MAX)
}

/// Decides (sample count, iterations per sample) from the measurement
/// budget and estimated per-iteration cost.
fn plan(settings: &Settings, per_iter: Duration) -> (usize, u64) {
    let samples = settings.sample_size;
    let per_sample = settings.measurement_time.as_nanos() / samples.max(1) as u128;
    let per_iter_ns = per_iter.as_nanos().max(1);
    let iters = (per_sample / per_iter_ns).clamp(1, 10_000_000) as u64;
    (samples, iters)
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, settings: Settings, mut f: F) {
    let mut bencher = Bencher {
        settings,
        samples: Vec::new(),
    };
    f(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let min = samples[0];
    let max = samples[samples.len() - 1];
    let median = samples[samples.len() / 2];
    println!(
        "{name:<40} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_produces_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-selftest");
        group
            .sample_size(5)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-batched");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn iter_custom_runs() {
        let mut c = Criterion::default();
        c.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(1 + 1);
                }
                start.elapsed()
            })
        });
    }
}
