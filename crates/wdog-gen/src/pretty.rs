//! Figure 2/3-style rendering of reductions and generated checkers.
//!
//! The paper illustrates AutoWatchdog with a before/after listing: the
//! original `serializeSnapshot` chain annotated with what reduction keeps
//! (Figure 2) and the generated checker that invokes the reduced function
//! with a context-readiness guard (Figure 3). [`render_region`] and
//! [`render_checker`] produce the equivalent listings for any program, used
//! by experiment E3b and the `autogen_demo` example.

use std::fmt::Write as _;

use crate::drift::DriftReport;
use crate::ir::{OpKind, ProgramIr};
use crate::plan::{GeneratedChecker, WatchdogPlan};
use crate::vulnerable::VulnerabilityRules;

fn kind_note(kind: &OpKind, resource: Option<&str>) -> String {
    match resource {
        Some(r) => format!("{} @{r}", kind.label()),
        None => kind.label().to_owned(),
    }
}

/// Renders one region's functions with keep/drop annotations (Figure 2).
///
/// Retained ops are tagged `KEEP`, vulnerable-but-deduplicated ops
/// `DROP(similar)`, deterministic code `DROP(deterministic)`, and planned
/// hook points are shown inline as `+ hook -> context[...]` lines.
pub fn render_region(ir: &ProgramIr, plan: &WatchdogPlan, entry: &str) -> String {
    let mut out = String::new();
    let rules = &VulnerabilityRules::all();
    let _ = writeln!(out, "region `{entry}` of program `{}`:", plan.program);
    let kept_ids: Vec<String> = plan
        .checker_for(entry)
        .map(|c| c.ops.iter().map(|o| o.op_id.as_str().to_owned()).collect())
        .unwrap_or_default();
    for rf in plan.reduced.functions_in(entry) {
        let Some(func) = ir.function(&rf.name) else {
            continue;
        };
        let _ = writeln!(out, "  fn {}:", func.name);
        for op in &func.ops {
            if let OpKind::Call { callee } = &op.kind {
                let _ = writeln!(out, "    call {callee}(..)            // follow callee");
                continue;
            }
            let id = op.id_in(&func.name);
            let note = kind_note(&op.kind, op.resource.as_deref());
            if kept_ids.iter().any(|k| k == id.as_str()) {
                for h in plan.hooks_in(&func.name) {
                    if h.before_op == op.name {
                        let fields: Vec<&str> =
                            h.publishes.iter().map(|a| a.name.as_str()).collect();
                        let _ = writeln!(
                            out,
                            "    + hook: publish {{{}}} -> context[{}]",
                            fields.join(", "),
                            h.context_key
                        );
                    }
                }
                let _ = writeln!(out, "    [KEEP] {} ({note})", op.name);
            } else if rules.is_vulnerable(op) {
                let _ = writeln!(out, "    [DROP: similar/covered] {} ({note})", op.name);
            } else {
                let _ = writeln!(out, "    [DROP: deterministic] {} ({note})", op.name);
            }
        }
    }
    out
}

/// Renders a generated checker as pseudo-code (Figure 3).
pub fn render_checker(checker: &GeneratedChecker) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "checker {} (component {}) {{",
        checker.name, checker.component
    );
    let _ = writeln!(
        out,
        "    let ctx = ContextFactory::context(\"{}\");",
        checker.context_key
    );
    let _ = writeln!(out, "    if ctx.status != READY {{ return NotReady; }}");
    for arg in &checker.required_fields {
        let _ = writeln!(
            out,
            "    let {}: {:?} = ctx.args_getter(\"{}\");",
            arg.name, arg.ty, arg.name
        );
    }
    for op in &checker.ops {
        let args: Vec<&str> = op.args.iter().map(|a| a.name.as_str()).collect();
        let _ = writeln!(
            out,
            "    exec {}({});    // {}",
            op.op_id,
            args.join(", "),
            kind_note(&op.kind, op.resource.as_deref())
        );
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders a one-paragraph summary of a whole plan (checker inventory).
pub fn render_summary(plan: &WatchdogPlan) -> String {
    let mut out = String::new();
    let s = &plan.reduced.stats;
    let _ = writeln!(
        out,
        "program `{}`: {} functions ({} in {} long-running regions), \
         {} ops -> {} vulnerable -> {} retained ({:.1}% of all ops)",
        plan.program,
        s.functions_total,
        s.functions_in_regions,
        s.regions,
        s.ops_total,
        s.ops_vulnerable,
        s.ops_retained,
        s.retention_ratio() * 100.0
    );
    let _ = writeln!(
        out,
        "generated {} checkers, {} hooks:",
        plan.checkers.len(),
        plan.hooks.len()
    );
    for c in &plan.checkers {
        let _ = writeln!(
            out,
            "  - {} ({} ops, {} context fields)",
            c.name,
            c.ops.len(),
            c.required_fields.len()
        );
    }
    out
}

/// Renders a [`DriftReport`] for terminal output.
///
/// Denied findings come first (they gate `--deny-drift`), then allowed
/// ones with their reasons, then non-gating info lines.
pub fn render_drift(report: &DriftReport) -> String {
    let mut out = String::new();
    let denied = report.denied();
    let allowed = report.findings.len() - denied.len();
    let _ = writeln!(
        out,
        "drift report for `{}`: {} matched ops, {} confirmed hooks, \
         {} finding(s) ({} allowed)",
        report.program,
        report.matched_ops,
        report.matched_hooks,
        report.findings.len(),
        allowed
    );
    for finding in report.findings.iter().filter(|f| f.allowed.is_none()) {
        let _ = writeln!(
            out,
            "  DRIFT [{}] region `{}`: {} — {}",
            finding.kind.label(),
            finding.region,
            finding.subject,
            finding.detail
        );
        if let Some(src) = &finding.source {
            let _ = writeln!(out, "        at {src}");
        }
    }
    for finding in report.findings.iter().filter(|f| f.allowed.is_some()) {
        let _ = writeln!(
            out,
            "  allowed [{}] region `{}`: {} — {}",
            finding.kind.label(),
            finding.region,
            finding.subject,
            finding.allowed.as_deref().unwrap_or_default()
        );
    }
    for line in &report.info {
        let _ = writeln!(out, "  info: {line}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drift::{AllowEntry, DriftFinding, DriftKind, SourceRef};
    use crate::ir::{ArgType, ProgramBuilder};
    use crate::plan::generate_plan;
    use crate::reduce::ReductionConfig;

    fn setup() -> (ProgramIr, WatchdogPlan) {
        let ir = ProgramBuilder::new("minizk")
            .function("snapshot_loop", |f| {
                f.long_running().call_in_loop("serialize_node")
            })
            .function("serialize_node", |f| {
                f.compute("get_node")
                    .op("node_lock", OpKind::LockAcquire, |o| o.resource("node"))
                    .op("write_record", OpKind::DiskWrite, |o| {
                        o.resource("snapshot/").arg("record", ArgType::Bytes)
                    })
                    .op("write_record_2", OpKind::DiskWrite, |o| {
                        o.resource("snapshot/")
                    })
            })
            .build();
        let plan = generate_plan(&ir, &ReductionConfig::default());
        (ir, plan)
    }

    #[test]
    fn region_rendering_tags_keep_and_drop() {
        let (ir, plan) = setup();
        let s = render_region(&ir, &plan, "snapshot_loop");
        assert!(s.contains("[KEEP] node_lock"), "{s}");
        assert!(s.contains("[KEEP] write_record"), "{s}");
        assert!(s.contains("[DROP: similar/covered] write_record_2"), "{s}");
        assert!(s.contains("[DROP: deterministic] get_node"), "{s}");
        assert!(s.contains("+ hook: publish {record} -> context[snapshot_loop]"));
    }

    #[test]
    fn checker_rendering_includes_guard_and_ops() {
        let (_, plan) = setup();
        let s = render_checker(&plan.checkers[0]);
        assert!(s.contains("checker snapshot_loop_checker"));
        assert!(s.contains("if ctx.status != READY { return NotReady; }"));
        assert!(s.contains("exec serialize_node#write_record(record)"));
        assert!(s.contains("args_getter(\"record\")"));
    }

    #[test]
    fn summary_counts_match_plan() {
        let (_, plan) = setup();
        let s = render_summary(&plan);
        assert!(s.contains("generated 1 checkers, 1 hooks"), "{s}");
        assert!(s.contains("minizk"));
    }

    #[test]
    fn drift_rendering_separates_denied_and_allowed() {
        let mut report = DriftReport {
            program: "kvs".into(),
            matched_ops: 7,
            matched_hooks: 4,
            findings: vec![
                DriftFinding {
                    kind: DriftKind::MissingFromDescription,
                    region: "wal_loop".into(),
                    subject: "wal_loop#lock".into(),
                    detail: "lock-acquire @wal has no described counterpart".into(),
                    source: Some(SourceRef {
                        file: "crates/kvs/src/listener.rs".into(),
                        line: 124,
                    }),
                    allowed: None,
                },
                DriftFinding {
                    kind: DriftKind::RegionNotDescribed,
                    region: "responder_loop".into(),
                    subject: "responder_loop".into(),
                    detail: "source region has no description".into(),
                    source: None,
                    allowed: None,
                },
            ],
            info: vec!["fuzzy-matched 1 op on kind alone".into()],
        };
        report.apply_allowlist(&[AllowEntry::new(
            DriftKind::RegionNotDescribed,
            "responder_loop",
            "*",
            "probe-checked, not mimicked",
        )]);
        let s = render_drift(&report);
        assert!(s.contains("2 finding(s) (1 allowed)"), "{s}");
        assert!(
            s.contains("DRIFT [missing-from-description] region `wal_loop`"),
            "{s}"
        );
        assert!(s.contains("at crates/kvs/src/listener.rs:124"), "{s}");
        assert!(s.contains("allowed [region-not-described]"), "{s}");
        assert!(s.contains("probe-checked, not mimicked"), "{s}");
        assert!(s.contains("info: fuzzy-matched"), "{s}");
    }
}
