//! The program intermediate representation AutoWatchdog analyzes.
//!
//! Target systems *self-describe*: each system ships a `describe_ir()`
//! function that builds a [`ProgramIr`] naming its functions, the operations
//! they perform, their call edges, and which entry points run continuously.
//! This plays the role Soot's bytecode model plays for the paper's Java
//! prototype — the reduction pipeline downstream is representation-agnostic,
//! exactly as the paper claims ("the proposed technique is not
//! Java-specific").
//!
//! The IR is linear per function: a [`Function`] is an ordered list of
//! [`Operation`]s, where calls are operations of kind [`OpKind::Call`].
//! Loops are modelled with a per-operation `in_loop` flag, which is all the
//! reduction needs (a repeated vulnerable op reduces to one execution
//! anyway).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use wdog_base::ids::OpId;

/// The semantic class of one IR operation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Read from persistent storage.
    DiskRead,
    /// Write to persistent storage.
    DiskWrite,
    /// Durability barrier.
    DiskSync,
    /// Send a message to a peer.
    NetSend,
    /// Wait for a message from a peer.
    NetRecv,
    /// Acquire a lock (blocking).
    LockAcquire,
    /// Release a lock.
    LockRelease,
    /// Wait on a condition.
    CondWait,
    /// Allocate a significant resource (memory region, handle, thread).
    Alloc,
    /// Pure computation — never vulnerable, always reduced away.
    Compute,
    /// Call another function in the same program.
    Call {
        /// Callee function name.
        callee: String,
    },
}

impl OpKind {
    /// Returns `true` if this is a call edge.
    pub fn is_call(&self) -> bool {
        matches!(self, OpKind::Call { .. })
    }

    /// Short lowercase label for rendering.
    pub fn label(&self) -> &'static str {
        match self {
            OpKind::DiskRead => "disk-read",
            OpKind::DiskWrite => "disk-write",
            OpKind::DiskSync => "disk-sync",
            OpKind::NetSend => "net-send",
            OpKind::NetRecv => "net-recv",
            OpKind::LockAcquire => "lock-acquire",
            OpKind::LockRelease => "lock-release",
            OpKind::CondWait => "cond-wait",
            OpKind::Alloc => "alloc",
            OpKind::Compute => "compute",
            OpKind::Call { .. } => "call",
        }
    }
}

/// The type of a context argument an operation consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArgType {
    /// Unsigned integer.
    U64,
    /// Text.
    Str,
    /// Raw bytes.
    Bytes,
    /// Flag.
    Bool,
}

/// A named, typed argument an operation needs from its context.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArgSpec {
    /// Field name in the context slot.
    pub name: String,
    /// Expected type.
    pub ty: ArgType,
}

impl ArgSpec {
    /// Creates an argument spec.
    pub fn new(name: impl Into<String>, ty: ArgType) -> Self {
        Self {
            name: name.into(),
            ty,
        }
    }
}

/// One operation in a function body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Operation {
    /// Operation name, unique within its function, e.g. `write_record`.
    pub name: String,
    /// Semantic class.
    pub kind: OpKind,
    /// Context arguments the operation consumes.
    pub args: Vec<ArgSpec>,
    /// The resource the operation touches (path prefix, lock name, peer);
    /// operations with the same kind **and** resource are "similar" and are
    /// deduplicated by reduction.
    pub resource: Option<String>,
    /// Whether the operation sits inside a loop body.
    pub in_loop: bool,
    /// Developer annotation forcing this operation to be treated as
    /// vulnerable regardless of kind (paper: "we also support annotations
    /// for developers to tag customized vulnerable methods").
    pub annotated_vulnerable: bool,
}

impl Operation {
    /// Returns this operation's workspace-wide id within `function`.
    pub fn id_in(&self, function: &str) -> OpId {
        OpId::new(format!("{function}#{}", self.name))
    }

    /// The dedup key: operations sharing it are "similar".
    pub fn similarity_key(&self) -> (String, Option<String>) {
        (self.kind.label().to_owned(), self.resource.clone())
    }
}

/// One function in the program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Function {
    /// Function name, unique within the program.
    pub name: String,
    /// Ordered operation list.
    pub ops: Vec<Operation>,
    /// Marked as an entry point that executes continuously (a thread main
    /// loop, a request-processing stage). Reduction starts from these.
    pub long_running: bool,
    /// Initialization-stage code, excluded from checking (paper §4.1).
    pub init_only: bool,
}

impl Function {
    /// Returns the callees named by this function's call operations.
    pub fn callees(&self) -> Vec<&str> {
        self.ops
            .iter()
            .filter_map(|o| match &o.kind {
                OpKind::Call { callee } => Some(callee.as_str()),
                _ => None,
            })
            .collect()
    }
}

/// A whole program as AutoWatchdog sees it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgramIr {
    /// Program name, e.g. `kvs`.
    pub name: String,
    /// Functions by name (deterministic iteration order).
    pub functions: BTreeMap<String, Function>,
}

impl ProgramIr {
    /// Looks up a function.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.get(name)
    }

    /// Total number of non-call operations across all functions.
    pub fn total_ops(&self) -> usize {
        self.functions
            .values()
            .map(|f| f.ops.iter().filter(|o| !o.kind.is_call()).count())
            .sum()
    }

    /// Validates referential integrity: every call edge targets a function
    /// that exists. Returns the list of dangling callee names.
    pub fn dangling_callees(&self) -> Vec<String> {
        let mut out = Vec::new();
        for f in self.functions.values() {
            for callee in f.callees() {
                if !self.functions.contains_key(callee) {
                    out.push(format!("{} -> {}", f.name, callee));
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

/// Fluent builder for [`ProgramIr`].
///
/// # Examples
///
/// ```
/// use wdog_gen::ir::{ArgType, OpKind, ProgramBuilder};
///
/// let ir = ProgramBuilder::new("kvs")
///     .function("flusher_loop", |f| {
///         f.long_running()
///             .call("flush_memtable")
///     })
///     .function("flush_memtable", |f| {
///         f.op("wal_append", OpKind::DiskWrite, |o| {
///             o.resource("wal/").arg("payload", ArgType::Bytes)
///         })
///     })
///     .build();
/// assert_eq!(ir.functions.len(), 2);
/// assert!(ir.dangling_callees().is_empty());
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    functions: BTreeMap<String, Function>,
}

impl ProgramBuilder {
    /// Starts a program description.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            functions: BTreeMap::new(),
        }
    }

    /// Describes one function; replaces any previous same-named description.
    pub fn function<F>(mut self, name: impl Into<String>, build: F) -> Self
    where
        F: FnOnce(FunctionBuilder) -> FunctionBuilder,
    {
        let name = name.into();
        let fb = build(FunctionBuilder::new(name.clone()));
        self.functions.insert(name, fb.finish());
        self
    }

    /// Finishes the program.
    pub fn build(self) -> ProgramIr {
        ProgramIr {
            name: self.name,
            functions: self.functions,
        }
    }
}

/// Builder for a single [`Function`].
#[derive(Debug)]
pub struct FunctionBuilder {
    f: Function,
}

impl FunctionBuilder {
    fn new(name: String) -> Self {
        Self {
            f: Function {
                name,
                ops: Vec::new(),
                long_running: false,
                init_only: false,
            },
        }
    }

    /// Marks the function as a continuously-executing entry point.
    pub fn long_running(mut self) -> Self {
        self.f.long_running = true;
        self
    }

    /// Marks the function as initialization-stage code.
    pub fn init_only(mut self) -> Self {
        self.f.init_only = true;
        self
    }

    /// Appends an operation configured by `build`.
    pub fn op<F>(mut self, name: impl Into<String>, kind: OpKind, build: F) -> Self
    where
        F: FnOnce(OperationBuilder) -> OperationBuilder,
    {
        let ob = build(OperationBuilder::new(name.into(), kind));
        self.f.ops.push(ob.finish());
        self
    }

    /// Appends a bare operation with no arguments or resource.
    pub fn simple_op(self, name: impl Into<String>, kind: OpKind) -> Self {
        self.op(name, kind, |o| o)
    }

    /// Appends a pure-compute operation.
    pub fn compute(self, name: impl Into<String>) -> Self {
        self.simple_op(name, OpKind::Compute)
    }

    /// Appends a call edge.
    pub fn call(mut self, callee: impl Into<String>) -> Self {
        let callee = callee.into();
        self.f.ops.push(Operation {
            name: format!("call_{callee}"),
            kind: OpKind::Call { callee },
            args: Vec::new(),
            resource: None,
            in_loop: false,
            annotated_vulnerable: false,
        });
        self
    }

    /// Appends a call edge inside a loop body.
    pub fn call_in_loop(mut self, callee: impl Into<String>) -> Self {
        let callee = callee.into();
        self.f.ops.push(Operation {
            name: format!("call_{callee}"),
            kind: OpKind::Call { callee },
            args: Vec::new(),
            resource: None,
            in_loop: true,
            annotated_vulnerable: false,
        });
        self
    }

    fn finish(self) -> Function {
        self.f
    }
}

/// Builder for a single [`Operation`].
#[derive(Debug)]
pub struct OperationBuilder {
    op: Operation,
}

impl OperationBuilder {
    fn new(name: String, kind: OpKind) -> Self {
        Self {
            op: Operation {
                name,
                kind,
                args: Vec::new(),
                resource: None,
                in_loop: false,
                annotated_vulnerable: false,
            },
        }
    }

    /// Declares a context argument.
    pub fn arg(mut self, name: impl Into<String>, ty: ArgType) -> Self {
        self.op.args.push(ArgSpec::new(name, ty));
        self
    }

    /// Names the touched resource (for similar-op dedup).
    pub fn resource(mut self, r: impl Into<String>) -> Self {
        self.op.resource = Some(r.into());
        self
    }

    /// Marks the operation as sitting inside a loop.
    pub fn in_loop(mut self) -> Self {
        self.op.in_loop = true;
        self
    }

    /// Developer annotation: treat as vulnerable regardless of kind.
    pub fn annotate_vulnerable(mut self) -> Self {
        self.op.annotated_vulnerable = true;
        self
    }

    fn finish(self) -> Operation {
        self.op
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProgramIr {
        ProgramBuilder::new("kvs")
            .function("main_loop", |f| {
                f.long_running().call_in_loop("handle_set").compute("route")
            })
            .function("handle_set", |f| {
                f.op("wal_append", OpKind::DiskWrite, |o| {
                    o.resource("wal/").arg("payload", ArgType::Bytes)
                })
                .compute("update_index")
                .call("replicate")
            })
            .function("replicate", |f| {
                f.op("send_replica", OpKind::NetSend, |o| o.resource("replica-1"))
            })
            .function("startup", |f| {
                f.init_only().op("load_manifest", OpKind::DiskRead, |o| o)
            })
            .build()
    }

    #[test]
    fn builder_produces_expected_shape() {
        let ir = sample();
        assert_eq!(ir.name, "kvs");
        assert_eq!(ir.functions.len(), 4);
        let h = ir.function("handle_set").unwrap();
        assert_eq!(h.ops.len(), 3);
        assert_eq!(h.callees(), vec!["replicate"]);
        assert!(ir.function("main_loop").unwrap().long_running);
        assert!(ir.function("startup").unwrap().init_only);
    }

    #[test]
    fn dangling_callees_detected() {
        let ir = ProgramBuilder::new("p")
            .function("a", |f| f.call("missing"))
            .build();
        assert_eq!(ir.dangling_callees(), vec!["a -> missing"]);
        assert!(sample().dangling_callees().is_empty());
    }

    #[test]
    fn total_ops_excludes_calls() {
        let ir = sample();
        // main_loop: route; handle_set: wal_append, update_index;
        // replicate: send_replica; startup: load_manifest.
        assert_eq!(ir.total_ops(), 5);
    }

    #[test]
    fn op_ids_qualified_by_function() {
        let ir = sample();
        let op = &ir.function("handle_set").unwrap().ops[0];
        assert_eq!(op.id_in("handle_set").as_str(), "handle_set#wal_append");
    }

    #[test]
    fn similarity_key_uses_kind_and_resource() {
        let a = Operation {
            name: "w1".into(),
            kind: OpKind::DiskWrite,
            args: vec![],
            resource: Some("wal/".into()),
            in_loop: false,
            annotated_vulnerable: false,
        };
        let mut b = a.clone();
        b.name = "w2".into();
        assert_eq!(a.similarity_key(), b.similarity_key());
        b.resource = Some("sst/".into());
        assert_ne!(a.similarity_key(), b.similarity_key());
    }

    #[test]
    fn ir_serializes_roundtrip() {
        let ir = sample();
        let json = serde_json::to_string(&ir).unwrap();
        let back: ProgramIr = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ir);
    }

    #[test]
    fn redefining_function_replaces() {
        let ir = ProgramBuilder::new("p")
            .function("a", |f| f.compute("x"))
            .function("a", |f| f.compute("y").compute("z"))
            .build();
        assert_eq!(ir.function("a").unwrap().ops.len(), 2);
    }
}
