//! Vulnerable-operation identification (paper §4.1, step 2).
//!
//! "For each such code region, we are interested in only retaining
//! operations that are worthy of monitoring. Our criteria for selecting such
//! operations are those that are vulnerable to fail in production due to
//! either environment issues or bugs, such as I/O, synchronization,
//! resource, and communication related method invocations. We also support
//! annotations for developers to tag customized vulnerable methods."
//!
//! [`VulnerabilityRules`] encodes that policy: which built-in classes count,
//! plus a custom name set mirroring AutoWatchdog's configuration of
//! "system-specific operations \[that\] might be vulnerable".

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::ir::{OpKind, Operation};

/// The paper's vulnerability classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum VulnClass {
    /// Disk reads/writes/syncs.
    Io,
    /// Sends and receives.
    Communication,
    /// Lock acquisition and condition waits (release never blocks).
    Synchronization,
    /// Allocation of significant resources.
    Resource,
    /// Developer-annotated or name-matched custom operations.
    Custom,
}

impl VulnClass {
    /// Classifies an operation kind; `None` for non-vulnerable kinds.
    pub fn of_kind(kind: &OpKind) -> Option<Self> {
        match kind {
            OpKind::DiskRead | OpKind::DiskWrite | OpKind::DiskSync => Some(VulnClass::Io),
            OpKind::NetSend | OpKind::NetRecv => Some(VulnClass::Communication),
            OpKind::LockAcquire | OpKind::CondWait => Some(VulnClass::Synchronization),
            OpKind::Alloc => Some(VulnClass::Resource),
            OpKind::LockRelease | OpKind::Compute | OpKind::Call { .. } => None,
        }
    }

    /// Short label for rendering.
    pub fn label(self) -> &'static str {
        match self {
            VulnClass::Io => "io",
            VulnClass::Communication => "comm",
            VulnClass::Synchronization => "sync",
            VulnClass::Resource => "resource",
            VulnClass::Custom => "custom",
        }
    }
}

/// Policy for which operations count as vulnerable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VulnerabilityRules {
    /// Include I/O operations.
    pub io: bool,
    /// Include communication operations.
    pub communication: bool,
    /// Include blocking synchronization operations.
    pub synchronization: bool,
    /// Include resource allocation operations.
    pub resource: bool,
    /// Operation names always treated as vulnerable (configuration-level
    /// tagging, in addition to per-op IR annotations).
    pub custom_ops: BTreeSet<String>,
}

impl VulnerabilityRules {
    /// The paper's default: I/O, synchronization, resource, communication.
    pub fn all() -> Self {
        Self {
            io: true,
            communication: true,
            synchronization: true,
            resource: true,
            custom_ops: BTreeSet::new(),
        }
    }

    /// Adds a custom vulnerable operation name.
    pub fn with_custom(mut self, name: impl Into<String>) -> Self {
        self.custom_ops.insert(name.into());
        self
    }

    /// Classifies `op` under these rules; `None` means not vulnerable.
    pub fn classify(&self, op: &Operation) -> Option<VulnClass> {
        if op.annotated_vulnerable || self.custom_ops.contains(&op.name) {
            return Some(VulnClass::Custom);
        }
        match VulnClass::of_kind(&op.kind)? {
            VulnClass::Io if self.io => Some(VulnClass::Io),
            VulnClass::Communication if self.communication => Some(VulnClass::Communication),
            VulnClass::Synchronization if self.synchronization => Some(VulnClass::Synchronization),
            VulnClass::Resource if self.resource => Some(VulnClass::Resource),
            _ => None,
        }
    }

    /// Returns `true` if `op` is vulnerable under these rules.
    pub fn is_vulnerable(&self, op: &Operation) -> bool {
        self.classify(op).is_some()
    }
}

impl Default for VulnerabilityRules {
    fn default() -> Self {
        Self::all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ArgType;

    fn op(name: &str, kind: OpKind) -> Operation {
        Operation {
            name: name.into(),
            kind,
            args: vec![crate::ir::ArgSpec::new("x", ArgType::U64)],
            resource: None,
            in_loop: false,
            annotated_vulnerable: false,
        }
    }

    #[test]
    fn builtin_classes_match_paper() {
        let r = VulnerabilityRules::all();
        assert_eq!(r.classify(&op("w", OpKind::DiskWrite)), Some(VulnClass::Io));
        assert_eq!(r.classify(&op("r", OpKind::DiskRead)), Some(VulnClass::Io));
        assert_eq!(r.classify(&op("s", OpKind::DiskSync)), Some(VulnClass::Io));
        assert_eq!(
            r.classify(&op("tx", OpKind::NetSend)),
            Some(VulnClass::Communication)
        );
        assert_eq!(
            r.classify(&op("rx", OpKind::NetRecv)),
            Some(VulnClass::Communication)
        );
        assert_eq!(
            r.classify(&op("lk", OpKind::LockAcquire)),
            Some(VulnClass::Synchronization)
        );
        assert_eq!(
            r.classify(&op("cw", OpKind::CondWait)),
            Some(VulnClass::Synchronization)
        );
        assert_eq!(
            r.classify(&op("al", OpKind::Alloc)),
            Some(VulnClass::Resource)
        );
    }

    #[test]
    fn compute_release_and_calls_never_vulnerable() {
        let r = VulnerabilityRules::all();
        assert!(!r.is_vulnerable(&op("c", OpKind::Compute)));
        assert!(!r.is_vulnerable(&op("u", OpKind::LockRelease)));
        assert!(!r.is_vulnerable(&op("call", OpKind::Call { callee: "f".into() })));
    }

    #[test]
    fn classes_can_be_disabled() {
        let r = VulnerabilityRules {
            synchronization: false,
            ..VulnerabilityRules::all()
        };
        assert!(!r.is_vulnerable(&op("lk", OpKind::LockAcquire)));
        assert!(r.is_vulnerable(&op("w", OpKind::DiskWrite)));
    }

    #[test]
    fn annotation_overrides_kind() {
        let r = VulnerabilityRules::all();
        let mut o = op("business_step", OpKind::Compute);
        o.annotated_vulnerable = true;
        assert_eq!(r.classify(&o), Some(VulnClass::Custom));
    }

    #[test]
    fn custom_name_set_matches() {
        let r = VulnerabilityRules::all().with_custom("checksum_partition");
        assert_eq!(
            r.classify(&op("checksum_partition", OpKind::Compute)),
            Some(VulnClass::Custom)
        );
        assert!(!r.is_vulnerable(&op("other_compute", OpKind::Compute)));
    }

    #[test]
    fn labels_stable() {
        assert_eq!(VulnClass::Io.label(), "io");
        assert_eq!(VulnClass::Communication.label(), "comm");
        assert_eq!(VulnClass::Synchronization.label(), "sync");
        assert_eq!(VulnClass::Resource.label(), "resource");
        assert_eq!(VulnClass::Custom.label(), "custom");
    }
}
