//! Program logic reduction (paper §4.1, steps 2–3).
//!
//! Reduction turns the IR of a program *P* into the skeleton of its watchdog
//! *W*:
//!
//! 1. within each long-running region, keep only **vulnerable** operations
//!    (per [`VulnerabilityRules`]);
//! 2. remove **similar** vulnerable operations inside a function — two ops
//!    with the same kind and resource fail the same way, so checking one
//!    suffices (the paper's "if P invoked `write()` many times in a loop,
//!    W may only need to invoke `write()` once");
//! 3. perform a **global reduction along the call chains** — an operation
//!    class already retained anywhere along the region's call graph is not
//!    retained again in deeper callees.
//!
//! Both dedup steps are ablation switches on [`ReductionConfig`] so
//! experiment E6 can measure the checker-count blow-up without them.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::ir::{Operation, ProgramIr};
use crate::regions::{find_regions, Region};
use crate::vulnerable::{VulnClass, VulnerabilityRules};

/// Configuration for one reduction run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReductionConfig {
    /// Which operations count as vulnerable.
    pub rules: VulnerabilityRules,
    /// Remove similar ops within a function (paper step; ablation switch).
    pub dedupe_similar: bool,
    /// Remove op classes already covered along the call chain
    /// (paper step; ablation switch).
    pub global_reduction: bool,
}

impl Default for ReductionConfig {
    fn default() -> Self {
        Self {
            rules: VulnerabilityRules::all(),
            dedupe_similar: true,
            global_reduction: true,
        }
    }
}

/// The reduced version of one function within one region.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReducedFunction {
    /// Original function name.
    pub name: String,
    /// Entry function of the region this reduction belongs to.
    pub region: String,
    /// Operations retained for checking, in original order.
    pub kept_ops: Vec<Operation>,
    /// Vulnerable operations dropped as similar/covered.
    pub dropped_vulnerable: usize,
    /// Non-vulnerable operations excluded (logically deterministic code).
    pub dropped_deterministic: usize,
    /// Callees retained inside the same region, in call order.
    pub callees: Vec<String>,
}

/// Aggregate statistics for one reduction run (experiment E3b).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReductionStats {
    /// Functions in the IR.
    pub functions_total: usize,
    /// Distinct functions inside at least one long-running region.
    pub functions_in_regions: usize,
    /// Non-call operations in the IR.
    pub ops_total: usize,
    /// Operations inside regions classified vulnerable.
    pub ops_vulnerable: usize,
    /// Operations retained after both dedup steps.
    pub ops_retained: usize,
    /// Long-running regions found.
    pub regions: usize,
}

impl ReductionStats {
    /// Fraction of all ops retained, in `[0, 1]`.
    pub fn retention_ratio(&self) -> f64 {
        if self.ops_total == 0 {
            0.0
        } else {
            self.ops_retained as f64 / self.ops_total as f64
        }
    }
}

/// The complete reduction output for one program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReducedProgram {
    /// Program name.
    pub program: String,
    /// The long-running regions found.
    pub regions: Vec<Region>,
    /// Reduced functions, grouped by region in DFS order from each entry.
    pub functions: Vec<ReducedFunction>,
    /// Aggregate statistics.
    pub stats: ReductionStats,
}

impl ReducedProgram {
    /// Returns the reduced functions belonging to `region` in DFS order.
    pub fn functions_in(&self, region: &str) -> Vec<&ReducedFunction> {
        self.functions
            .iter()
            .filter(|f| f.region == region)
            .collect()
    }

    /// Returns all retained ops of one region, flattened in DFS order as
    /// `(function, op)` pairs — the op list of the region's mimic checker.
    pub fn flattened_ops(&self, region: &str) -> Vec<(&str, &Operation)> {
        self.functions_in(region)
            .into_iter()
            .flat_map(|f| f.kept_ops.iter().map(move |o| (f.name.as_str(), o)))
            .collect()
    }
}

/// Counts retained operations per vulnerability class across the whole
/// reduced program (each shared function counted once, as reduced).
///
/// This is the `ReductionStats`-level equivalence the extraction golden
/// tests assert: two IRs of the same program — one hand-written, one
/// source-extracted — may name ops differently, but after reduction they
/// must retain the same number of ops per class.
pub fn class_counts(
    reduced: &ReducedProgram,
    rules: &VulnerabilityRules,
) -> BTreeMap<VulnClass, usize> {
    let mut counts = BTreeMap::new();
    for func in &reduced.functions {
        for op in &func.kept_ops {
            if let Some(class) = rules.classify(op) {
                *counts.entry(class).or_insert(0) += 1;
            }
        }
    }
    counts
}

/// Runs program logic reduction over `ir`.
pub fn reduce_program(ir: &ProgramIr, config: &ReductionConfig) -> ReducedProgram {
    let regions = find_regions(ir);
    let mut functions: Vec<ReducedFunction> = Vec::new();
    // Functions already reduced in an earlier region: with global reduction
    // a function shared between two regions is checked once, by the first.
    let mut globally_reduced: BTreeSet<String> = BTreeSet::new();
    // Op classes already retained anywhere along processed call chains.
    let mut global_seen: BTreeSet<(String, Option<String>)> = BTreeSet::new();

    let mut ops_vulnerable = 0usize;
    let mut ops_retained = 0usize;
    let mut region_functions: BTreeSet<String> = BTreeSet::new();

    for region in &regions {
        // Deterministic DFS from the entry following call order.
        let mut order: Vec<String> = Vec::new();
        let mut visited: BTreeSet<String> = BTreeSet::new();
        dfs(ir, &region.entry, region, &mut visited, &mut order);

        for fname in order {
            region_functions.insert(fname.clone());
            if config.global_reduction && globally_reduced.contains(&fname) {
                continue;
            }
            globally_reduced.insert(fname.clone());
            let func = ir
                .function(&fname)
                .expect("region functions exist in the IR");

            let mut kept: Vec<Operation> = Vec::new();
            let mut dropped_vulnerable = 0usize;
            let mut dropped_deterministic = 0usize;
            let mut local_seen: BTreeSet<(String, Option<String>)> = BTreeSet::new();
            let mut callees: Vec<String> = Vec::new();

            for op in &func.ops {
                if let crate::ir::OpKind::Call { callee } = &op.kind {
                    if region.contains(callee) && !callees.contains(callee) {
                        callees.push(callee.clone());
                    }
                    continue;
                }
                if !config.rules.is_vulnerable(op) {
                    dropped_deterministic += 1;
                    continue;
                }
                ops_vulnerable += 1;
                let key = op.similarity_key();
                let similar_here = config.dedupe_similar && local_seen.contains(&key);
                let covered_globally = config.global_reduction && global_seen.contains(&key);
                if similar_here || covered_globally {
                    dropped_vulnerable += 1;
                    continue;
                }
                local_seen.insert(key.clone());
                global_seen.insert(key);
                kept.push(op.clone());
                ops_retained += 1;
            }

            functions.push(ReducedFunction {
                name: fname,
                region: region.entry.clone(),
                kept_ops: kept,
                dropped_vulnerable,
                dropped_deterministic,
                callees,
            });
        }
    }

    let stats = ReductionStats {
        functions_total: ir.functions.len(),
        functions_in_regions: region_functions.len(),
        ops_total: ir.total_ops(),
        ops_vulnerable,
        ops_retained,
        regions: regions.len(),
    };

    ReducedProgram {
        program: ir.name.clone(),
        regions,
        functions,
        stats,
    }
}

fn dfs(
    ir: &ProgramIr,
    name: &str,
    region: &Region,
    visited: &mut BTreeSet<String>,
    order: &mut Vec<String>,
) {
    if visited.contains(name) || !region.contains(name) {
        return;
    }
    visited.insert(name.to_owned());
    order.push(name.to_owned());
    if let Some(func) = ir.function(name) {
        for callee in func.callees() {
            dfs(ir, callee, region, visited, order);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ArgType, OpKind, ProgramBuilder};

    /// The paper's Figure 2 shape: `serialize_snapshot` calls `serialize`
    /// calls `serialize_node`, which holds a lock and performs the
    /// vulnerable `write_record`, recursing over children.
    fn zk_like() -> ProgramIr {
        ProgramBuilder::new("minizk")
            .function("snapshot_loop", |f| {
                f.long_running().call_in_loop("serialize_snapshot")
            })
            .function("serialize_snapshot", |f| {
                f.compute("reset_count").call("serialize")
            })
            .function("serialize", |f| {
                f.compute("init_path").call("serialize_node")
            })
            .function("serialize_node", |f| {
                f.compute("get_node")
                    .op("node_lock", OpKind::LockAcquire, |o| o.resource("node"))
                    .op("write_record", OpKind::DiskWrite, |o| {
                        o.resource("snapshot/").arg("record", ArgType::Bytes)
                    })
                    .simple_op("node_unlock", OpKind::LockRelease)
                    .compute("append_path")
                    .call_in_loop("serialize_node")
            })
            .build()
    }

    #[test]
    fn keeps_only_vulnerable_ops() {
        let reduced = reduce_program(&zk_like(), &ReductionConfig::default());
        let node = reduced
            .functions
            .iter()
            .find(|f| f.name == "serialize_node")
            .unwrap();
        let names: Vec<&str> = node.kept_ops.iter().map(|o| o.name.as_str()).collect();
        assert_eq!(names, vec!["node_lock", "write_record"]);
        assert!(node.dropped_deterministic >= 3, "computes must be dropped");
    }

    #[test]
    fn flattened_ops_follow_call_chain_order() {
        let reduced = reduce_program(&zk_like(), &ReductionConfig::default());
        let flat = reduced.flattened_ops("snapshot_loop");
        let names: Vec<&str> = flat.iter().map(|(_, o)| o.name.as_str()).collect();
        assert_eq!(names, vec!["node_lock", "write_record"]);
        assert!(flat.iter().all(|(f, _)| *f == "serialize_node"));
    }

    #[test]
    fn similar_ops_deduped_within_function() {
        let ir = ProgramBuilder::new("p")
            .function("main", |f| {
                f.long_running()
                    .op("w1", OpKind::DiskWrite, |o| o.resource("wal/").in_loop())
                    .op("w2", OpKind::DiskWrite, |o| o.resource("wal/"))
                    .op("w3", OpKind::DiskWrite, |o| o.resource("sst/"))
            })
            .build();
        let reduced = reduce_program(&ir, &ReductionConfig::default());
        let main = &reduced.functions[0];
        let names: Vec<&str> = main.kept_ops.iter().map(|o| o.name.as_str()).collect();
        assert_eq!(names, vec!["w1", "w3"], "same-resource writes dedupe");
        assert_eq!(main.dropped_vulnerable, 1);
    }

    #[test]
    fn dedup_can_be_disabled_for_ablation() {
        let ir = ProgramBuilder::new("p")
            .function("main", |f| {
                f.long_running()
                    .op("w1", OpKind::DiskWrite, |o| o.resource("wal/"))
                    .op("w2", OpKind::DiskWrite, |o| o.resource("wal/"))
            })
            .build();
        let cfg = ReductionConfig {
            dedupe_similar: false,
            global_reduction: false,
            ..ReductionConfig::default()
        };
        let reduced = reduce_program(&ir, &cfg);
        assert_eq!(reduced.functions[0].kept_ops.len(), 2);
    }

    #[test]
    fn global_reduction_covers_call_chain() {
        // caller writes to wal/, callee writes to wal/ too: the callee's
        // write is covered along the chain.
        let ir = ProgramBuilder::new("p")
            .function("main", |f| {
                f.long_running()
                    .op("w", OpKind::DiskWrite, |o| o.resource("wal/"))
                    .call("helper")
            })
            .function("helper", |f| {
                f.op("w_deep", OpKind::DiskWrite, |o| o.resource("wal/"))
                    .op("send", OpKind::NetSend, |o| o.resource("peer"))
            })
            .build();
        let reduced = reduce_program(&ir, &ReductionConfig::default());
        let helper = reduced
            .functions
            .iter()
            .find(|f| f.name == "helper")
            .unwrap();
        let names: Vec<&str> = helper.kept_ops.iter().map(|o| o.name.as_str()).collect();
        assert_eq!(names, vec!["send"], "covered write must be dropped");
    }

    #[test]
    fn shared_function_reduced_once_across_regions() {
        let ir = ProgramBuilder::new("p")
            .function("loop_a", |f| f.long_running().call("shared"))
            .function("loop_b", |f| f.long_running().call("shared"))
            .function("shared", |f| {
                f.op("w", OpKind::DiskWrite, |o| o.resource("d/"))
            })
            .build();
        let reduced = reduce_program(&ir, &ReductionConfig::default());
        let shared_reductions: Vec<_> = reduced
            .functions
            .iter()
            .filter(|f| f.name == "shared")
            .collect();
        assert_eq!(shared_reductions.len(), 1);
        assert_eq!(shared_reductions[0].region, "loop_a");
    }

    #[test]
    fn stats_are_consistent() {
        let reduced = reduce_program(&zk_like(), &ReductionConfig::default());
        let s = reduced.stats;
        assert_eq!(s.functions_total, 4);
        assert_eq!(s.functions_in_regions, 4);
        assert_eq!(s.regions, 1);
        assert!(s.ops_retained <= s.ops_vulnerable);
        assert!(s.ops_vulnerable <= s.ops_total);
        assert!(s.retention_ratio() > 0.0 && s.retention_ratio() < 1.0);
        // The reduction thesis: most code is excluded.
        assert!(
            s.retention_ratio() < 0.5,
            "retained {}/{} — reduction too weak",
            s.ops_retained,
            s.ops_total
        );
    }

    #[test]
    fn annotated_compute_survives_reduction() {
        let ir = ProgramBuilder::new("p")
            .function("main", |f| {
                f.long_running()
                    .op("checksum_partition", OpKind::Compute, |o| {
                        o.annotate_vulnerable().resource("part-0")
                    })
                    .compute("sort_ranges")
            })
            .build();
        let reduced = reduce_program(&ir, &ReductionConfig::default());
        let names: Vec<&str> = reduced.functions[0]
            .kept_ops
            .iter()
            .map(|o| o.name.as_str())
            .collect();
        assert_eq!(names, vec!["checksum_partition"]);
    }

    #[test]
    fn class_counts_tally_kept_ops() {
        let reduced = reduce_program(&zk_like(), &ReductionConfig::default());
        let counts = class_counts(&reduced, &VulnerabilityRules::all());
        assert_eq!(counts.get(&VulnClass::Io), Some(&1), "{counts:?}");
        assert_eq!(counts.get(&VulnClass::Synchronization), Some(&1));
        assert_eq!(counts.values().sum::<usize>(), reduced.stats.ops_retained);
    }

    #[test]
    fn empty_program_reduces_to_nothing() {
        let ir = ProgramBuilder::new("p").build();
        let reduced = reduce_program(&ir, &ReductionConfig::default());
        assert!(reduced.functions.is_empty());
        assert_eq!(reduced.stats.ops_total, 0);
        assert_eq!(reduced.stats.retention_ratio(), 0.0);
    }
}
