//! Checker and hook generation (paper §4.1, steps 4–5).
//!
//! After reduction, each long-running region becomes one **generated mimic
//! checker** whose operation list is the region's retained ops flattened
//! along the call chain (the paper's Figure 3: `serializeSnapshot_reduced`
//! executes the vulnerable `writeRecord` hoisted from `serializeNode`).
//!
//! "*C* at this point cannot be directly executed, however, due to
//! uninitialized variables or parameters. So we further analyze the context
//! required for the execution of *C*": context inference here is the union
//! of the retained ops' argument specs. For every retained op with
//! arguments, a [`HookPoint`] is planned *immediately before the op* in the
//! original function (Figure 2, line 28), publishing those arguments into
//! the region's context slot.

use serde::{Deserialize, Serialize};

use wdog_base::ids::OpId;

use crate::ir::{ArgSpec, OpKind, ProgramIr};
use crate::reduce::{reduce_program, ReducedProgram, ReductionConfig};

/// One operation scheduled into a generated checker.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlannedOp {
    /// Fully qualified id, `function#op`.
    pub op_id: OpId,
    /// The original function the op came from.
    pub function: String,
    /// The op's name within its function.
    pub name: String,
    /// Semantic class.
    pub kind: OpKind,
    /// Context arguments the op consumes.
    pub args: Vec<ArgSpec>,
    /// The resource touched, if named.
    pub resource: Option<String>,
}

/// One generated mimic checker (one per long-running region).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GeneratedChecker {
    /// Checker name, `{entry}_checker`.
    pub name: String,
    /// Component label, `{program}.{entry}`.
    pub component: String,
    /// Context slot the checker reads (and its hooks publish).
    pub context_key: String,
    /// Operations in call-chain order.
    pub ops: Vec<PlannedOp>,
    /// Union of all context fields the ops require, sorted by name.
    pub required_fields: Vec<ArgSpec>,
}

/// One instrumentation point to insert into the main program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HookPoint {
    /// Function to instrument.
    pub function: String,
    /// The op immediately after the hook (the hook runs *before* it).
    pub before_op: String,
    /// Context slot the hook publishes into.
    pub context_key: String,
    /// Fields the hook publishes.
    pub publishes: Vec<ArgSpec>,
}

/// The complete generation output for one program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WatchdogPlan {
    /// Program name.
    pub program: String,
    /// Generated checkers, one per region with retained ops.
    pub checkers: Vec<GeneratedChecker>,
    /// Hook points to insert into the main program.
    pub hooks: Vec<HookPoint>,
    /// The underlying reduction (for statistics and rendering).
    pub reduced: ReducedProgram,
}

impl WatchdogPlan {
    /// Looks up a generated checker by region entry.
    pub fn checker_for(&self, entry: &str) -> Option<&GeneratedChecker> {
        self.checkers.iter().find(|c| c.context_key == entry)
    }

    /// Returns the hooks that instrument `function`.
    pub fn hooks_in(&self, function: &str) -> Vec<&HookPoint> {
        self.hooks
            .iter()
            .filter(|h| h.function == function)
            .collect()
    }
}

/// Runs the full AutoWatchdog pipeline: reduction, context inference,
/// checker and hook planning.
pub fn generate_plan(ir: &ProgramIr, config: &ReductionConfig) -> WatchdogPlan {
    let reduced = reduce_program(ir, config);
    let mut checkers = Vec::new();
    let mut hooks = Vec::new();

    for region in &reduced.regions {
        let flat = reduced.flattened_ops(&region.entry);
        if flat.is_empty() {
            continue;
        }
        let mut ops = Vec::new();
        let mut required: Vec<ArgSpec> = Vec::new();
        for (function, op) in flat {
            ops.push(PlannedOp {
                op_id: op.id_in(function),
                function: function.to_owned(),
                name: op.name.clone(),
                kind: op.kind.clone(),
                args: op.args.clone(),
                resource: op.resource.clone(),
            });
            for arg in &op.args {
                if !required.iter().any(|a| a.name == arg.name) {
                    required.push(arg.clone());
                }
            }
            if !op.args.is_empty() {
                hooks.push(HookPoint {
                    function: function.to_owned(),
                    before_op: op.name.clone(),
                    context_key: region.entry.clone(),
                    publishes: op.args.clone(),
                });
            }
        }
        required.sort_by(|a, b| a.name.cmp(&b.name));
        checkers.push(GeneratedChecker {
            name: format!("{}_checker", region.entry),
            component: format!("{}.{}", ir.name, region.entry),
            context_key: region.entry.clone(),
            ops,
            required_fields: required,
        });
    }

    WatchdogPlan {
        program: ir.name.clone(),
        checkers,
        hooks,
        reduced,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ArgType, ProgramBuilder};

    fn ir() -> ProgramIr {
        ProgramBuilder::new("minizk")
            .function("snapshot_loop", |f| {
                f.long_running().call_in_loop("serialize_snapshot")
            })
            .function("serialize_snapshot", |f| {
                f.compute("prep").call("serialize_node")
            })
            .function("serialize_node", |f| {
                f.op("node_lock", OpKind::LockAcquire, |o| o.resource("node"))
                    .op("write_record", OpKind::DiskWrite, |o| {
                        o.resource("snapshot/")
                            .arg("record", ArgType::Bytes)
                            .arg("node_path", ArgType::Str)
                    })
            })
            .function("idle_loop", |f| f.long_running().compute("tick"))
            .build()
    }

    #[test]
    fn one_checker_per_region_with_ops() {
        let plan = generate_plan(&ir(), &ReductionConfig::default());
        // idle_loop has no vulnerable ops, so only snapshot_loop generates.
        assert_eq!(plan.checkers.len(), 1);
        let c = &plan.checkers[0];
        assert_eq!(c.name, "snapshot_loop_checker");
        assert_eq!(c.component, "minizk.snapshot_loop");
        assert_eq!(c.context_key, "snapshot_loop");
    }

    #[test]
    fn ops_are_hoisted_along_call_chain() {
        let plan = generate_plan(&ir(), &ReductionConfig::default());
        let c = &plan.checkers[0];
        let ids: Vec<&str> = c.ops.iter().map(|o| o.op_id.as_str()).collect();
        assert_eq!(
            ids,
            vec!["serialize_node#node_lock", "serialize_node#write_record"]
        );
    }

    #[test]
    fn required_fields_are_union_sorted() {
        let plan = generate_plan(&ir(), &ReductionConfig::default());
        let c = &plan.checkers[0];
        let names: Vec<&str> = c.required_fields.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, vec!["node_path", "record"]);
    }

    #[test]
    fn hooks_inserted_before_ops_with_args() {
        let plan = generate_plan(&ir(), &ReductionConfig::default());
        assert_eq!(plan.hooks.len(), 1, "lock op has no args, write does");
        let h = &plan.hooks[0];
        assert_eq!(h.function, "serialize_node");
        assert_eq!(h.before_op, "write_record");
        assert_eq!(h.context_key, "snapshot_loop");
        assert_eq!(h.publishes.len(), 2);
        assert_eq!(plan.hooks_in("serialize_node").len(), 1);
        assert!(plan.hooks_in("serialize_snapshot").is_empty());
    }

    #[test]
    fn checker_lookup_by_entry() {
        let plan = generate_plan(&ir(), &ReductionConfig::default());
        assert!(plan.checker_for("snapshot_loop").is_some());
        assert!(plan.checker_for("idle_loop").is_none());
    }

    #[test]
    fn plan_serializes_roundtrip() {
        let plan = generate_plan(&ir(), &ReductionConfig::default());
        let json = serde_json::to_string(&plan).unwrap();
        let back: WatchdogPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn multiple_regions_yield_multiple_checkers() {
        let two = ProgramBuilder::new("kvs")
            .function("flusher_loop", |f| {
                f.long_running()
                    .op("wal_write", OpKind::DiskWrite, |o| o.resource("wal/"))
            })
            .function("repl_loop", |f| {
                f.long_running()
                    .op("send", OpKind::NetSend, |o| o.resource("replica"))
            })
            .build();
        let plan = generate_plan(&two, &ReductionConfig::default());
        assert_eq!(plan.checkers.len(), 2);
    }
}
