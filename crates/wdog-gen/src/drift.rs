//! Drift findings: the vocabulary of the `wdog-lint` gate.
//!
//! The lint compares three artifacts that must agree for a target's
//! watchdog to be trustworthy:
//!
//! 1. the IR **extracted from source** by `wdog-analyze`;
//! 2. the hand-written `describe_ir()` **self-description** in the
//!    target's `wd.rs`;
//! 3. the **runtime hook registration** implied by the generated plan.
//!
//! Each disagreement becomes a [`DriftFinding`]. A target may ship an
//! [`AllowEntry`] list for findings that are understood and deliberate
//! (every entry carries a human-readable reason); everything else fails
//! `--deny-drift`. The comparison itself lives in `wdog-analyze::drift`;
//! these types sit here so target crates can export allowlists without
//! depending on the analyzer.

use serde::{Deserialize, Serialize};

/// What kind of disagreement a finding reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DriftKind {
    /// A vulnerable op exists in source but not in `describe_ir()` (a).
    MissingFromDescription,
    /// A described op has no matching source site (b).
    DescribedNotInSource,
    /// A planned `HookPoint` has no runtime hook firing its context (c).
    UnhookedPlanPoint,
    /// A long-running region exists in source but not in the description.
    RegionNotDescribed,
    /// A described region has no source entry point.
    RegionNotInSource,
}

impl DriftKind {
    /// Stable kebab-case label, used in rendered reports and allowlists.
    pub fn label(self) -> &'static str {
        match self {
            DriftKind::MissingFromDescription => "missing-from-description",
            DriftKind::DescribedNotInSource => "described-not-in-source",
            DriftKind::UnhookedPlanPoint => "unhooked-plan-point",
            DriftKind::RegionNotDescribed => "region-not-described",
            DriftKind::RegionNotInSource => "region-not-in-source",
        }
    }
}

/// A source location, workspace-relative.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SourceRef {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
}

impl std::fmt::Display for SourceRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.file, self.line)
    }
}

/// One disagreement between source, description, and hooks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DriftFinding {
    /// The disagreement class.
    pub kind: DriftKind,
    /// The long-running region (context key) the finding belongs to.
    pub region: String,
    /// What drifted: an op id (`function#op`), hook id, or region name.
    pub subject: String,
    /// Human-readable explanation.
    pub detail: String,
    /// Source site, when the finding points at real code.
    pub source: Option<SourceRef>,
    /// Set to the allowlist reason if an [`AllowEntry`] matched.
    pub allowed: Option<String>,
}

/// A deliberate, documented exception to the drift gate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllowEntry {
    /// Finding kind this entry may absorb.
    pub kind: DriftKind,
    /// Region name to match, or `*` for any.
    pub region: String,
    /// Substring of the finding subject, or `*` for any.
    pub subject: String,
    /// Why the drift is acceptable — rendered next to the finding.
    pub reason: String,
}

impl AllowEntry {
    /// Builds an entry; `region`/`subject` accept `*` wildcards.
    pub fn new(
        kind: DriftKind,
        region: impl Into<String>,
        subject: impl Into<String>,
        reason: impl Into<String>,
    ) -> Self {
        Self {
            kind,
            region: region.into(),
            subject: subject.into(),
            reason: reason.into(),
        }
    }

    /// Returns `true` if this entry absorbs `finding`.
    pub fn matches(&self, finding: &DriftFinding) -> bool {
        self.kind == finding.kind
            && (self.region == "*" || self.region == finding.region)
            && (self.subject == "*" || finding.subject.contains(&self.subject))
    }
}

/// The full lint result for one target program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DriftReport {
    /// Target program name.
    pub program: String,
    /// Ops that matched between source and description.
    pub matched_ops: usize,
    /// Plan hook points confirmed against runtime firings.
    pub matched_hooks: usize,
    /// All findings, allowed or not.
    pub findings: Vec<DriftFinding>,
    /// Non-gating diagnostics (e.g. fuzzy matches worth a look).
    pub info: Vec<String>,
}

impl DriftReport {
    /// Marks findings absorbed by `allowlist` with their reasons.
    pub fn apply_allowlist(&mut self, allowlist: &[AllowEntry]) {
        for finding in &mut self.findings {
            if finding.allowed.is_none() {
                if let Some(entry) = allowlist.iter().find(|e| e.matches(finding)) {
                    finding.allowed = Some(entry.reason.clone());
                }
            }
        }
    }

    /// Findings not absorbed by any allowlist entry — these gate CI.
    pub fn denied(&self) -> Vec<&DriftFinding> {
        self.findings
            .iter()
            .filter(|f| f.allowed.is_none())
            .collect()
    }

    /// Returns `true` if nothing gates (allowed findings may remain).
    pub fn is_clean(&self) -> bool {
        self.denied().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(kind: DriftKind, region: &str, subject: &str) -> DriftFinding {
        DriftFinding {
            kind,
            region: region.into(),
            subject: subject.into(),
            detail: String::new(),
            source: None,
            allowed: None,
        }
    }

    #[test]
    fn allow_entries_match_on_kind_region_and_subject() {
        let entry = AllowEntry::new(
            DriftKind::RegionNotDescribed,
            "responder_loop",
            "*",
            "liveness responder is probe-checked, not mimicked",
        );
        assert!(entry.matches(&finding(
            DriftKind::RegionNotDescribed,
            "responder_loop",
            "responder_loop"
        )));
        assert!(!entry.matches(&finding(
            DriftKind::MissingFromDescription,
            "responder_loop",
            "x"
        )));
        assert!(!entry.matches(&finding(
            DriftKind::RegionNotDescribed,
            "broadcast_loop",
            "broadcast_loop"
        )));
    }

    #[test]
    fn subject_matching_is_substring() {
        let entry = AllowEntry::new(DriftKind::DescribedNotInSource, "*", "probe_", "probes");
        assert!(entry.matches(&finding(
            DriftKind::DescribedNotInSource,
            "r",
            "loop#probe_key"
        )));
        assert!(!entry.matches(&finding(DriftKind::DescribedNotInSource, "r", "loop#other")));
    }

    #[test]
    fn report_gates_on_denied_findings_only() {
        let mut report = DriftReport {
            program: "kvs".into(),
            matched_ops: 3,
            matched_hooks: 2,
            findings: vec![
                finding(DriftKind::RegionNotDescribed, "responder_loop", "responder"),
                finding(DriftKind::MissingFromDescription, "wal_loop", "wal#lock"),
            ],
            info: Vec::new(),
        };
        assert!(!report.is_clean());
        report.apply_allowlist(&[AllowEntry::new(
            DriftKind::RegionNotDescribed,
            "*",
            "*",
            "reason",
        )]);
        assert_eq!(report.denied().len(), 1);
        assert_eq!(report.denied()[0].kind, DriftKind::MissingFromDescription);
        report.apply_allowlist(&[AllowEntry::new(
            DriftKind::MissingFromDescription,
            "wal_loop",
            "wal#lock",
            "r2",
        )]);
        assert!(report.is_clean());
    }

    #[test]
    fn reports_serialize_to_json() {
        let report = DriftReport {
            program: "kvs".into(),
            matched_ops: 1,
            matched_hooks: 0,
            findings: vec![DriftFinding {
                kind: DriftKind::UnhookedPlanPoint,
                region: "wal_loop".into(),
                subject: "wal_loop#append".into(),
                detail: "no runtime hook".into(),
                source: Some(SourceRef {
                    file: "crates/kvs/src/listener.rs".into(),
                    line: 124,
                }),
                allowed: None,
            }],
            info: Vec::new(),
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: DriftReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
