//! Long-running region identification (paper §4.1, step 1).
//!
//! "First, we extract code regions that may be executed continuously. In
//! this way, we exclude checking for code execution in the initialization
//! stage. Multiple long running regions may be identified."
//!
//! A region is the set of functions reachable along call edges from one
//! entry marked [`long_running`](crate::ir::Function::long_running),
//! stopping at (and excluding) functions marked
//! [`init_only`](crate::ir::Function::init_only). Call edges to functions
//! that do not exist in the IR are ignored (the validator surfaces them
//! separately).

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::ir::ProgramIr;

/// One continuously-executing region of the program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    /// The long-running entry function.
    pub entry: String,
    /// Every function reachable from the entry (including it), sorted.
    pub functions: BTreeSet<String>,
}

impl Region {
    /// Returns `true` if `function` belongs to this region.
    pub fn contains(&self, function: &str) -> bool {
        self.functions.contains(function)
    }
}

/// Finds all long-running regions of `ir`, sorted by entry name.
pub fn find_regions(ir: &ProgramIr) -> Vec<Region> {
    let mut regions = Vec::new();
    for f in ir.functions.values() {
        if !f.long_running || f.init_only {
            continue;
        }
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut stack = vec![f.name.clone()];
        while let Some(name) = stack.pop() {
            if seen.contains(&name) {
                continue;
            }
            let Some(func) = ir.function(&name) else {
                continue; // Dangling call edge; reported by the validator.
            };
            if func.init_only {
                continue; // Initialization code is excluded from checking.
            }
            seen.insert(name);
            for callee in func.callees() {
                if !seen.contains(callee) {
                    stack.push(callee.to_owned());
                }
            }
        }
        regions.push(Region {
            entry: f.name.clone(),
            functions: seen,
        });
    }
    regions.sort_by(|a, b| a.entry.cmp(&b.entry));
    regions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{OpKind, ProgramBuilder};

    fn ir() -> ProgramIr {
        ProgramBuilder::new("p")
            .function("loop_a", |f| f.long_running().call("shared").call("a_only"))
            .function("loop_b", |f| f.long_running().call("shared"))
            .function("shared", |f| f.simple_op("w", OpKind::DiskWrite))
            .function("a_only", |f| f.simple_op("s", OpKind::NetSend).call("deep"))
            .function("deep", |f| f.compute("calc"))
            .function("init", |f| f.init_only().simple_op("r", OpKind::DiskRead))
            .function("helper_called_from_init", |f| f.compute("h"))
            .build()
    }

    #[test]
    fn finds_one_region_per_long_running_entry() {
        let regions = find_regions(&ir());
        assert_eq!(regions.len(), 2);
        assert_eq!(regions[0].entry, "loop_a");
        assert_eq!(regions[1].entry, "loop_b");
    }

    #[test]
    fn regions_close_over_call_chains() {
        let regions = find_regions(&ir());
        let a = &regions[0];
        for f in ["loop_a", "shared", "a_only", "deep"] {
            assert!(a.contains(f), "loop_a region missing {f}");
        }
        assert!(!a.contains("loop_b"));
        let b = &regions[1];
        assert_eq!(
            b.functions.iter().cloned().collect::<Vec<_>>(),
            vec!["loop_b", "shared"]
        );
    }

    #[test]
    fn init_only_functions_excluded() {
        let regions = find_regions(
            &ProgramBuilder::new("p")
                .function("main", |f| f.long_running().call("init_helper"))
                .function("init_helper", |f| f.init_only().compute("x"))
                .build(),
        );
        assert_eq!(regions.len(), 1);
        assert!(!regions[0].contains("init_helper"));
    }

    #[test]
    fn cycles_terminate() {
        let regions = find_regions(
            &ProgramBuilder::new("p")
                .function("a", |f| f.long_running().call("b"))
                .function("b", |f| f.call("a"))
                .build(),
        );
        assert_eq!(regions.len(), 1);
        assert!(regions[0].contains("a"));
        assert!(regions[0].contains("b"));
    }

    #[test]
    fn dangling_calls_skipped_gracefully() {
        let regions = find_regions(
            &ProgramBuilder::new("p")
                .function("a", |f| f.long_running().call("ghost"))
                .build(),
        );
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].functions.len(), 1);
    }

    #[test]
    fn no_long_running_means_no_regions() {
        let regions = find_regions(
            &ProgramBuilder::new("p")
                .function("a", |f| f.simple_op("w", OpKind::DiskWrite))
                .build(),
        );
        assert!(regions.is_empty());
    }
}
