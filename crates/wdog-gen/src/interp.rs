//! Instantiating generated checkers against real system operations.
//!
//! The paper's AutoWatchdog emits Java source that calls the target's real
//! methods (Figure 3). The Rust equivalent is an [`OpTable`]: the target
//! system registers, for every operation id in its IR, a closure performing
//! the *real reduced operation* — a redirected `SimDisk` write, a probe send
//! on the live `SimNet`, a lock acquisition on the live `DataTree` — taking
//! its arguments from the checker's context snapshot.
//!
//! [`instantiate`] then turns a [`WatchdogPlan`] into executable
//! [`MimicChecker`]s ready to register with a
//! [`WatchdogDriver`](wdog_core::driver::WatchdogDriver). Missing
//! registrations are a hard error: a generated checker that silently skips
//! operations would report a false sense of health.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use wdog_base::clock::SharedClock;
use wdog_base::error::{BaseError, BaseResult};

use wdog_checkers::mimic::{MimicChecker, MimicOp};
use wdog_core::prelude::*;

use crate::plan::WatchdogPlan;

/// The implementation of one mimicked operation.
pub type OpImpl = Arc<dyn Fn(&ContextSnapshot) -> BaseResult<()> + Send + Sync>;

/// Registry mapping IR operation ids (`function#op`) to implementations.
#[derive(Clone, Default)]
pub struct OpTable {
    map: HashMap<String, OpImpl>,
}

impl OpTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an implementation for `op_id`, replacing any previous one.
    pub fn register<F>(&mut self, op_id: impl Into<String>, f: F)
    where
        F: Fn(&ContextSnapshot) -> BaseResult<()> + Send + Sync + 'static,
    {
        self.map.insert(op_id.into(), Arc::new(f));
    }

    /// Looks up an implementation.
    pub fn get(&self, op_id: &str) -> Option<OpImpl> {
        self.map.get(op_id).cloned()
    }

    /// Returns registered op ids, sorted.
    pub fn op_ids(&self) -> Vec<String> {
        let mut v: Vec<String> = self.map.keys().cloned().collect();
        v.sort();
        v
    }

    /// Returns the number of registered implementations.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if no implementation is registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl std::fmt::Debug for OpTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpTable")
            .field("ops", &self.op_ids())
            .finish()
    }
}

/// Tunables applied to every instantiated checker.
#[derive(Debug, Clone)]
pub struct InstantiateOptions {
    /// Per-checker execution timeout handed to the driver.
    pub timeout: Option<Duration>,
    /// Maximum tolerated context age before a checker reports `NotReady`.
    pub max_context_age: Option<Duration>,
    /// Latency above which a successful I/O or communication op is
    /// reported `Slow`. Lock acquisitions and compute ops are exempt:
    /// waiting on a held lock is contention, not environment slowness.
    pub slow_threshold: Option<Duration>,
    /// When set, every checker journals its op executions into this
    /// recorder (test-time mode, consumed by `wdog-infer`).
    pub trace: Option<Arc<TraceRecorder>>,
}

impl Default for InstantiateOptions {
    fn default() -> Self {
        Self {
            timeout: Some(Duration::from_secs(5)),
            max_context_age: None,
            slow_threshold: None,
            trace: None,
        }
    }
}

/// Builds executable [`MimicChecker`]s from a plan and an op table.
///
/// Returns [`BaseError::NotFound`] naming every unregistered op id if any
/// planned operation lacks an implementation.
pub fn instantiate(
    plan: &WatchdogPlan,
    table: &OpTable,
    reader: &ContextReader,
    clock: &SharedClock,
    opts: &InstantiateOptions,
) -> BaseResult<Vec<MimicChecker>> {
    // Validate the whole table first so errors name everything at once.
    let missing: Vec<String> = plan
        .checkers
        .iter()
        .flat_map(|c| c.ops.iter())
        .filter(|o| table.get(o.op_id.as_str()).is_none())
        .map(|o| o.op_id.as_str().to_owned())
        .collect();
    if !missing.is_empty() {
        return Err(BaseError::NotFound(format!(
            "op implementations missing from table: {}",
            missing.join(", ")
        )));
    }

    let mut checkers = Vec::with_capacity(plan.checkers.len());
    for gc in &plan.checkers {
        let mut checker = MimicChecker::new(
            format!("{}.{}", plan.program, gc.name),
            gc.component.clone(),
            gc.context_key.clone(),
            reader.clone(),
            Arc::clone(clock),
        );
        if let Some(age) = opts.max_context_age {
            checker = checker.with_max_context_age(age);
        }
        if let Some(t) = opts.timeout {
            checker = checker.with_timeout(t);
        }
        if let Some(trace) = &opts.trace {
            checker = checker.with_trace(Arc::clone(trace));
        }
        for planned in &gc.ops {
            let body = table.get(planned.op_id.as_str()).expect("validated above");
            let mut op = MimicOp::new(
                planned.op_id.clone(),
                planned.function.clone(),
                Box::new(move |snap: &ContextSnapshot| body(snap)),
            )
            .with_required_fields(planned.args.iter().map(|a| a.name.clone()).collect());
            let io_like = matches!(
                planned.kind,
                crate::ir::OpKind::DiskRead
                    | crate::ir::OpKind::DiskWrite
                    | crate::ir::OpKind::DiskSync
                    | crate::ir::OpKind::NetSend
                    | crate::ir::OpKind::NetRecv
            );
            if let (Some(t), true) = (opts.slow_threshold, io_like) {
                op = op.with_slow_threshold(t);
            }
            checker = checker.push_op(op);
        }
        checkers.push(checker);
    }
    Ok(checkers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ArgType, OpKind, ProgramBuilder};
    use crate::plan::generate_plan;
    use crate::reduce::ReductionConfig;
    use std::sync::atomic::{AtomicU64, Ordering};
    use wdog_base::clock::RealClock;

    fn plan() -> WatchdogPlan {
        let ir = ProgramBuilder::new("kvs")
            .function("flusher_loop", |f| f.long_running().call("flush"))
            .function("flush", |f| {
                f.op("wal_append", OpKind::DiskWrite, |o| {
                    o.resource("wal/").arg("payload", ArgType::Bytes)
                })
                .op("wal_sync", OpKind::DiskSync, |o| o.resource("wal/"))
            })
            .build();
        generate_plan(&ir, &ReductionConfig::default())
    }

    #[test]
    fn missing_ops_rejected_with_names() {
        let plan = plan();
        let table = OpTable::new();
        let ctx = ContextTable::new(RealClock::shared());
        let err = instantiate(
            &plan,
            &table,
            &ctx.reader(),
            &RealClock::shared(),
            &InstantiateOptions::default(),
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("flush#wal_append"), "{msg}");
        assert!(msg.contains("flush#wal_sync"), "{msg}");
    }

    #[test]
    fn instantiated_checkers_execute_registered_ops() {
        let plan = plan();
        let executed = Arc::new(AtomicU64::new(0));
        let mut table = OpTable::new();
        let e1 = Arc::clone(&executed);
        table.register("flush#wal_append", move |snap| {
            assert!(snap.get("payload").is_some());
            e1.fetch_add(1, Ordering::Relaxed);
            Ok(())
        });
        let e2 = Arc::clone(&executed);
        table.register("flush#wal_sync", move |_| {
            e2.fetch_add(1, Ordering::Relaxed);
            Ok(())
        });

        let ctx = ContextTable::new(RealClock::shared());
        ctx.publish(
            "flusher_loop",
            vec![("payload".into(), CtxValue::Bytes(vec![1, 2, 3]))],
        );
        let clock: SharedClock = RealClock::shared();
        let mut checkers = instantiate(
            &plan,
            &table,
            &ctx.reader(),
            &clock,
            &InstantiateOptions::default(),
        )
        .unwrap();
        assert_eq!(checkers.len(), 1);
        assert!(checkers[0].check().is_pass());
        assert_eq!(executed.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn context_gates_execution_until_ready() {
        let plan = plan();
        let mut table = OpTable::new();
        table.register("flush#wal_append", |_| Ok(()));
        table.register("flush#wal_sync", |_| Ok(()));
        let ctx = ContextTable::new(RealClock::shared());
        let clock: SharedClock = RealClock::shared();
        let mut checkers = instantiate(
            &plan,
            &table,
            &ctx.reader(),
            &clock,
            &InstantiateOptions::default(),
        )
        .unwrap();
        assert_eq!(checkers[0].check(), CheckStatus::NotReady);
        // Publishing the wrong field is still not ready (required field).
        ctx.publish("flusher_loop", vec![("other".into(), CtxValue::U64(1))]);
        assert_eq!(checkers[0].check(), CheckStatus::NotReady);
        ctx.publish(
            "flusher_loop",
            vec![("payload".into(), CtxValue::Bytes(vec![0]))],
        );
        assert!(checkers[0].check().is_pass());
    }

    #[test]
    fn failing_op_pinpoints_planned_id() {
        let plan = plan();
        let mut table = OpTable::new();
        table.register("flush#wal_append", |_| {
            Err(BaseError::Io("bad sector".into()))
        });
        table.register("flush#wal_sync", |_| Ok(()));
        let ctx = ContextTable::new(RealClock::shared());
        ctx.publish(
            "flusher_loop",
            vec![("payload".into(), CtxValue::Bytes(vec![0]))],
        );
        let clock: SharedClock = RealClock::shared();
        let mut checkers = instantiate(
            &plan,
            &table,
            &ctx.reader(),
            &clock,
            &InstantiateOptions::default(),
        )
        .unwrap();
        let CheckStatus::Fail(f) = checkers[0].check() else {
            panic!("expected failure");
        };
        assert_eq!(
            f.location.operation.as_ref().unwrap().as_str(),
            "flush#wal_append"
        );
        assert_eq!(f.location.function, "flush");
    }

    #[test]
    fn traced_instantiation_journals_op_executions() {
        let plan = plan();
        let mut table = OpTable::new();
        table.register("flush#wal_append", |_| Ok(()));
        table.register("flush#wal_sync", |_| {
            Err(BaseError::Io("bad sector".into()))
        });
        let ctx = ContextTable::new(RealClock::shared());
        ctx.publish(
            "flusher_loop",
            vec![("payload".into(), CtxValue::Bytes(vec![0]))],
        );
        let clock: SharedClock = RealClock::shared();
        let recorder = TraceRecorder::new(clock.clone());
        let opts = InstantiateOptions {
            trace: Some(Arc::clone(&recorder)),
            ..InstantiateOptions::default()
        };
        let mut checkers = instantiate(&plan, &table, &ctx.reader(), &clock, &opts).unwrap();
        assert!(matches!(checkers[0].check(), CheckStatus::Fail(_)));
        let events = recorder.drain();
        let ops: Vec<(String, bool)> = events
            .iter()
            .filter_map(|e| match &e.kind {
                TraceEventKind::Op { op, ok } => Some((op.clone(), *ok)),
                _ => None,
            })
            .collect();
        assert_eq!(
            ops,
            vec![
                ("flush#wal_append".to_string(), true),
                ("flush#wal_sync".to_string(), false),
            ]
        );
        assert!(events.iter().all(|e| e.key == "flusher_loop"));
    }

    #[test]
    fn op_table_introspection() {
        let mut table = OpTable::new();
        assert!(table.is_empty());
        table.register("b#y", |_| Ok(()));
        table.register("a#x", |_| Ok(()));
        assert_eq!(table.len(), 2);
        assert_eq!(table.op_ids(), vec!["a#x", "b#y"]);
        assert!(table.get("a#x").is_some());
        assert!(table.get("zzz").is_none());
    }
}
