//! The callee-pattern rule table: how source-level call sites map to
//! [`OpKind`]s (paper §4.1, "vulnerable operations ... such as I/O,
//! synchronization, resource, and communication related method invocations").
//!
//! This is the **single** rule source shared by the static extractor
//! (`wdog-analyze`) and the vulnerability policy
//! ([`crate::vulnerable::VulnerabilityRules`]): the extractor classifies a
//! call site into an `OpKind` with [`classify_callee`], and the policy maps
//! that kind to a [`crate::vulnerable::VulnClass`] via
//! [`crate::vulnerable::VulnClass::of_kind`]. Neither side keeps a private
//! copy of the method-name table.
//!
//! A rule optionally carries a *receiver hint*: `".send"` is a network send
//! only when the receiver chain mentions `net` (so channel `Sender::send`
//! stays deterministic), and `".read"` is disk I/O only on a `disk`-like
//! receiver (so `RwLock::read` stays invisible). Lock acquisition needs no
//! hint — `.lock()` blocks regardless of who owns the mutex.
//!
//! Deliberately absent: an allocation rule. Resource ops (`OpKind::Alloc`)
//! enter the IR only through explicit annotation, because the targets'
//! `monitor.alloc(..)` calls are *accounting* for injected leaks, not
//! allocations the watchdog should mimic.

use crate::ir::OpKind;

/// One callee-pattern rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CalleeRule {
    /// Method or function name the rule matches (last path segment).
    pub method: &'static str,
    /// If set, some segment of the receiver chain must contain this
    /// substring for the rule to fire (e.g. `disk`, `net`).
    pub receiver_hint: Option<&'static str>,
    /// The operation kind a matching call site becomes.
    pub kind: OpKind,
}

/// The built-in rule table, checked in order; first match wins.
pub const CALLEE_RULES: &[CalleeRule] = &[
    // Disk I/O — gated on a disk-like receiver so e.g. `Vec::append` or
    // `BTreeMap::remove` never classify.
    CalleeRule {
        method: "write_all",
        receiver_hint: Some("disk"),
        kind: OpKind::DiskWrite,
    },
    CalleeRule {
        method: "write",
        receiver_hint: Some("disk"),
        kind: OpKind::DiskWrite,
    },
    CalleeRule {
        method: "append",
        receiver_hint: Some("disk"),
        kind: OpKind::DiskWrite,
    },
    CalleeRule {
        method: "rename",
        receiver_hint: Some("disk"),
        kind: OpKind::DiskWrite,
    },
    CalleeRule {
        method: "remove",
        receiver_hint: Some("disk"),
        kind: OpKind::DiskWrite,
    },
    CalleeRule {
        method: "truncate",
        receiver_hint: Some("disk"),
        kind: OpKind::DiskWrite,
    },
    CalleeRule {
        method: "fsync",
        receiver_hint: Some("disk"),
        kind: OpKind::DiskSync,
    },
    CalleeRule {
        method: "sync_all",
        receiver_hint: Some("disk"),
        kind: OpKind::DiskSync,
    },
    CalleeRule {
        method: "read",
        receiver_hint: Some("disk"),
        kind: OpKind::DiskRead,
    },
    // Communication — gated on a net-like receiver so channel sends and
    // channel `recv_timeout` drains stay deterministic.
    CalleeRule {
        method: "send",
        receiver_hint: Some("net"),
        kind: OpKind::NetSend,
    },
    CalleeRule {
        method: "send_to",
        receiver_hint: Some("net"),
        kind: OpKind::NetSend,
    },
    CalleeRule {
        method: "recv",
        receiver_hint: Some("net"),
        kind: OpKind::NetRecv,
    },
    CalleeRule {
        method: "recv_timeout",
        receiver_hint: Some("net"),
        kind: OpKind::NetRecv,
    },
    // Blocking synchronization — no receiver gate; `.lock()` blocks no
    // matter whose mutex it is.
    CalleeRule {
        method: "lock",
        receiver_hint: None,
        kind: OpKind::LockAcquire,
    },
    CalleeRule {
        method: "try_lock_for",
        receiver_hint: None,
        kind: OpKind::LockAcquire,
    },
    CalleeRule {
        method: "wait",
        receiver_hint: None,
        kind: OpKind::CondWait,
    },
    CalleeRule {
        method: "wait_timeout",
        receiver_hint: None,
        kind: OpKind::CondWait,
    },
];

/// Classifies a call site against [`CALLEE_RULES`].
///
/// `receiver_chain` is the dotted receiver path (e.g. `["shared", "disk"]`
/// for `shared.disk.fsync(..)`); empty for free-function calls.
pub fn classify_callee(method: &str, receiver_chain: &[String]) -> Option<&'static CalleeRule> {
    CALLEE_RULES.iter().find(|rule| {
        rule.method == method
            && match rule.receiver_hint {
                None => true,
                Some(hint) => receiver_chain.iter().any(|seg| seg.contains(hint)),
            }
    })
}

/// Parses an `OpKind` from its [`OpKind::label`] form (annotation syntax
/// `// wdog: vulnerable kind=net-send`). `Call` is not constructible here.
pub fn kind_for_label(label: &str) -> Option<OpKind> {
    match label {
        "disk-read" => Some(OpKind::DiskRead),
        "disk-write" => Some(OpKind::DiskWrite),
        "disk-sync" => Some(OpKind::DiskSync),
        "net-send" => Some(OpKind::NetSend),
        "net-recv" => Some(OpKind::NetRecv),
        "lock-acquire" => Some(OpKind::LockAcquire),
        "lock-release" => Some(OpKind::LockRelease),
        "cond-wait" => Some(OpKind::CondWait),
        "alloc" => Some(OpKind::Alloc),
        "compute" => Some(OpKind::Compute),
        _ => None,
    }
}

/// Returns the *family* of a resource name: everything up to and including
/// the first `/`, or the whole name. `wal/flushing` and `wal/log` both
/// belong to family `wal/` — the granularity at which similarity dedup and
/// drift matching treat resources as interchangeable.
pub fn resource_family(resource: &str) -> &str {
    match resource.find('/') {
        Some(i) => &resource[..=i],
        None => resource,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(segs: &[&str]) -> Vec<String> {
        segs.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn disk_rules_need_disk_receiver() {
        let hit = classify_callee("write_all", &chain(&["shared", "disk"])).unwrap();
        assert_eq!(hit.kind, OpKind::DiskWrite);
        assert!(classify_callee("write_all", &chain(&["buf"])).is_none());
        // BTreeMap::remove / Vec::append must not classify.
        assert!(classify_callee("remove", &chain(&["self", "index"])).is_none());
        assert!(classify_callee("append", &chain(&["entries"])).is_none());
    }

    #[test]
    fn channel_send_is_not_net_send() {
        assert!(classify_callee("send", &chain(&["shared", "wal_tx"])).is_none());
        let hit = classify_callee("send", &chain(&["shared", "net"])).unwrap();
        assert_eq!(hit.kind, OpKind::NetSend);
    }

    #[test]
    fn rwlock_read_is_not_disk_read() {
        assert!(classify_callee("read", &chain(&["self", "nodes"])).is_none());
        let hit = classify_callee("read", &chain(&["self", "disk"])).unwrap();
        assert_eq!(hit.kind, OpKind::DiskRead);
    }

    #[test]
    fn lock_needs_no_receiver_gate() {
        let hit = classify_callee("lock", &chain(&["write_lock"])).unwrap();
        assert_eq!(hit.kind, OpKind::LockAcquire);
        let hit = classify_callee("lock", &[]).unwrap();
        assert_eq!(hit.kind, OpKind::LockAcquire);
    }

    #[test]
    fn no_alloc_rule_exists() {
        assert!(classify_callee("alloc", &chain(&["shared", "monitor"])).is_none());
        assert!(CALLEE_RULES.iter().all(|r| r.kind != OpKind::Alloc));
    }

    #[test]
    fn kind_labels_round_trip() {
        for rule in CALLEE_RULES {
            let label = rule.kind.label();
            assert_eq!(kind_for_label(label).as_ref(), Some(&rule.kind));
        }
        assert!(kind_for_label("call").is_none());
        assert!(kind_for_label("bogus").is_none());
    }

    #[test]
    fn families_split_at_first_slash() {
        assert_eq!(resource_family("wal/flushing"), "wal/");
        assert_eq!(resource_family("sst/00000001"), "sst/");
        assert_eq!(resource_family("index"), "index");
    }
}
