//! AutoWatchdog: automatic generation of mimic-type watchdogs through
//! **program logic reduction** (paper §4).
//!
//! Given a program *P*, the goal is a watchdog *W* that detects gray
//! failures in *P* without imposing on *P*'s execution. Full program slices
//! would be heavyweight and poor at pinpointing; instead *W* is a *reduced
//! but representative* version of *P*, built on two insights (§4.1):
//!
//! 1. most code need not be checked at runtime because its correctness is
//!    logically deterministic — that belongs in unit tests;
//! 2. *W* only needs to catch errors, not recreate business logic — one
//!    `write()` suffices to check a loop of many.
//!
//! The pipeline, mirroring the paper step for step:
//!
//! | Paper step | Module |
//! |---|---|
//! | extract code regions that may be executed continuously | [`regions`] |
//! | retain operations vulnerable in production (I/O, sync, resource, communication; plus annotations) | [`vulnerable`] |
//! | remove similar vulnerable operations; global reduction along call chains | [`reduce`] |
//! | analyze the context required; generate context factory + hooks | [`plan`] |
//! | enhance with runtime checks; package checkers into the driver | [`interp`] |
//!
//! The front end is the [`ir`]: target systems ship a hand-written
//! self-description built with [`ir::ProgramBuilder`], and the
//! `wdog-analyze` crate extracts the same IR directly from their Rust
//! source using the shared [`patterns`] rule table (the stand-in for
//! Soot-style bytecode analysis, see `DESIGN.md` §2). The `wdog-lint` tool
//! diffs the two — and the registered runtime hooks — into [`drift`]
//! findings so the description cannot silently rot. Everything downstream
//! of the IR is the paper's algorithm, and the generated checkers execute
//! *real* system operations through an [`interp::OpTable`].
//!
//! [`pretty`] renders Figure 2/3-style before/after listings.

pub mod drift;
pub mod interp;
pub mod ir;
pub mod patterns;
pub mod plan;
pub mod pretty;
pub mod reduce;
pub mod regions;
pub mod vulnerable;

pub use drift::{AllowEntry, DriftFinding, DriftKind, DriftReport, SourceRef};
pub use interp::OpTable;
pub use ir::{ArgSpec, ArgType, Function, OpKind, Operation, ProgramBuilder, ProgramIr};
pub use patterns::{classify_callee, kind_for_label, resource_family, CalleeRule, CALLEE_RULES};
pub use plan::{generate_plan, GeneratedChecker, HookPoint, WatchdogPlan};
pub use reduce::{
    class_counts, reduce_program, ReducedFunction, ReducedProgram, ReductionConfig, ReductionStats,
};
pub use regions::{find_regions, Region};
pub use vulnerable::{VulnClass, VulnerabilityRules};
