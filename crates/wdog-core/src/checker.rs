//! The checker abstraction: one tailored inspection of the main program.
//!
//! Each checker "stores a sequence of specific instructions tailored to
//! inspect a certain part of the main program ... for expected behavior"
//! (paper §3.1). Checkers are executed by the
//! [`WatchdogDriver`](crate::driver::WatchdogDriver) on dedicated executor
//! threads so that a checker which hangs — *sharing the fate* of a hung main
//! program (§3.3) — is itself detected by the driver rather than wedging the
//! watchdog.
//!
//! A checker returns [`CheckStatus::NotReady`] when its context has not been
//! published yet; the driver counts but does not report these, implementing
//! the paper's "the watchdog driver will ensure that a checker's context is
//! ready before executing it".

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use wdog_base::ids::{CheckerId, ComponentId};

use crate::report::{FailureKind, FaultLocation};

/// The verdict-relevant part of a failure, produced inside a checker.
///
/// The driver wraps this into a full
/// [`FailureReport`](crate::report::FailureReport) by adding the checker id
/// and timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckFailure {
    /// Failure class.
    pub kind: FailureKind,
    /// Pinpointed location.
    pub location: FaultLocation,
    /// Human-readable detail.
    pub detail: String,
    /// Context payload captured at check time.
    pub payload: Vec<(String, String)>,
    /// Latency of the failing operation, if measured.
    pub observed_latency_ms: Option<u64>,
}

impl CheckFailure {
    /// Creates a failure with empty payload and no latency.
    pub fn new(kind: FailureKind, location: FaultLocation, detail: impl Into<String>) -> Self {
        Self {
            kind,
            location,
            detail: detail.into(),
            payload: Vec::new(),
            observed_latency_ms: None,
        }
    }

    /// Attaches a captured payload.
    pub fn with_payload(mut self, payload: Vec<(String, String)>) -> Self {
        self.payload = payload;
        self
    }

    /// Attaches the observed latency.
    pub fn with_latency_ms(mut self, ms: u64) -> Self {
        self.observed_latency_ms = Some(ms);
        self
    }
}

/// Result of one checker execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckStatus {
    /// The inspected part of the program behaved as expected.
    Pass,
    /// The checker's context has not been published yet; skipped silently.
    NotReady,
    /// A failure was detected.
    Fail(CheckFailure),
}

impl CheckStatus {
    /// Returns `true` for [`CheckStatus::Pass`].
    pub fn is_pass(&self) -> bool {
        matches!(self, CheckStatus::Pass)
    }

    /// Returns `true` for [`CheckStatus::Fail`].
    pub fn is_fail(&self) -> bool {
        matches!(self, CheckStatus::Fail(_))
    }
}

/// A live pinpointing channel between a running checker and the driver.
///
/// A checker records the operation it is *about to* execute via
/// [`ExecutionProbe::enter`]. If the checker then hangs, the driver's timeout
/// path reads the probe and reports the exact blocked operation — this is how
/// experiment E4 pinpoints the blocked function call during the
/// ZOOKEEPER-2201 gray failure while the checker thread is still stuck.
#[derive(Clone, Default)]
pub struct ExecutionProbe {
    current: Arc<Mutex<Option<FaultLocation>>>,
}

impl ExecutionProbe {
    /// Creates an empty probe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the operation about to be executed.
    pub fn enter(&self, location: FaultLocation) {
        *self.current.lock() = Some(location);
    }

    /// Clears the record after the operation completes.
    pub fn exit(&self) {
        *self.current.lock() = None;
    }

    /// Returns the operation the checker is currently inside, if any.
    pub fn current(&self) -> Option<FaultLocation> {
        self.current.lock().clone()
    }
}

impl std::fmt::Debug for ExecutionProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutionProbe")
            .field("current", &self.current())
            .finish()
    }
}

/// One runtime checking procedure managed by the watchdog driver.
pub trait Checker: Send {
    /// Stable identifier, unique within a driver.
    fn id(&self) -> CheckerId;

    /// The component of the main program this checker inspects.
    fn component(&self) -> ComponentId;

    /// Per-checker execution timeout; `None` uses the driver default.
    ///
    /// When the timeout expires the driver reports the checker as stuck at
    /// the location its [`ExecutionProbe`] last recorded.
    fn timeout(&self) -> Option<Duration> {
        None
    }

    /// Receives the probe before the first execution; default ignores it.
    fn attach_probe(&mut self, probe: ExecutionProbe) {
        let _ = probe;
    }

    /// Executes one inspection.
    fn check(&mut self) -> CheckStatus;
}

/// A [`Checker`] built from a closure, for simple ad-hoc checks.
///
/// # Examples
///
/// ```
/// use wdog_core::checker::{Checker, CheckStatus, FnChecker};
///
/// let mut remaining = 3u32;
/// let mut c = FnChecker::new("count", "demo", move || {
///     remaining = remaining.saturating_sub(1);
///     CheckStatus::Pass
/// });
/// assert!(c.check().is_pass());
/// ```
pub struct FnChecker<F> {
    id: CheckerId,
    component: ComponentId,
    timeout: Option<Duration>,
    f: F,
}

impl<F> FnChecker<F>
where
    F: FnMut() -> CheckStatus + Send,
{
    /// Creates a closure checker.
    pub fn new(id: impl Into<CheckerId>, component: impl Into<ComponentId>, f: F) -> Self {
        Self {
            id: id.into(),
            component: component.into(),
            timeout: None,
            f,
        }
    }

    /// Sets a per-checker timeout.
    pub fn with_timeout(mut self, t: Duration) -> Self {
        self.timeout = Some(t);
        self
    }
}

impl<F> Checker for FnChecker<F>
where
    F: FnMut() -> CheckStatus + Send,
{
    fn id(&self) -> CheckerId {
        self.id.clone()
    }

    fn component(&self) -> ComponentId {
        self.component.clone()
    }

    fn timeout(&self) -> Option<Duration> {
        self.timeout
    }

    fn check(&mut self) -> CheckStatus {
        (self.f)()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_checker_runs_closure() {
        let mut calls = 0u32;
        let mut c = FnChecker::new("c", "comp", move || {
            calls += 1;
            if calls < 2 {
                CheckStatus::NotReady
            } else {
                CheckStatus::Pass
            }
        });
        assert_eq!(c.check(), CheckStatus::NotReady);
        assert!(c.check().is_pass());
        assert_eq!(c.id(), CheckerId::new("c"));
        assert_eq!(c.component(), ComponentId::new("comp"));
    }

    #[test]
    fn fn_checker_timeout_configurable() {
        let c = FnChecker::new("c", "comp", || CheckStatus::Pass)
            .with_timeout(Duration::from_millis(250));
        assert_eq!(c.timeout(), Some(Duration::from_millis(250)));
    }

    #[test]
    fn probe_roundtrip() {
        let p = ExecutionProbe::new();
        assert!(p.current().is_none());
        p.enter(FaultLocation::new("kvs.wal", "append"));
        assert_eq!(p.current().unwrap().function, "append");
        p.exit();
        assert!(p.current().is_none());
    }

    #[test]
    fn probe_clones_share_state() {
        let p = ExecutionProbe::new();
        let p2 = p.clone();
        p.enter(FaultLocation::new("a", "f"));
        assert!(p2.current().is_some());
    }

    #[test]
    fn failure_builder_chains() {
        let f = CheckFailure::new(FailureKind::Error, FaultLocation::new("c", "f"), "boom")
            .with_payload(vec![("k".into(), "v".into())])
            .with_latency_ms(12);
        assert_eq!(f.observed_latency_ms, Some(12));
        assert_eq!(f.payload.len(), 1);
        assert!(CheckStatus::Fail(f).is_fail());
    }
}
