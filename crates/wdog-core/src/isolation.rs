//! Isolation mechanisms: keeping the checking execution from perturbing the
//! normal execution (paper §3.2, §5.1).
//!
//! The paper names two concrete mechanisms, both implemented in this
//! workspace:
//!
//! 1. **Context replication** — checkers receive deep copies of main-program
//!    state; this lives in [`crate::context`] (snapshots are clones).
//! 2. **I/O redirection** — a mimic checker that really writes to disk or
//!    really inserts keys must not overwrite data produced by the normal
//!    execution. [`IoRedirect`] rewrites resource names into a dedicated
//!    watchdog namespace (`__wd/...`), the moral equivalent of HDFS's disk
//!    checker creating *its own* probe files next to real block files.
//!
//! [`Budget`] bounds the checking execution's resource appetite so a
//! watchdog can never starve the main program.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Rewrites resource names (paths, keys) into a watchdog-private namespace.
///
/// # Examples
///
/// ```
/// use wdog_core::isolation::IoRedirect;
///
/// let redirect = IoRedirect::new("__wd");
/// assert_eq!(redirect.path("wal/0"), "__wd/wal/0");
/// assert_eq!(redirect.key("user:42"), "__wd:user:42");
/// assert!(redirect.is_redirected("__wd/wal/0"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoRedirect {
    prefix: String,
}

impl IoRedirect {
    /// Creates a redirect into the given namespace prefix.
    pub fn new(prefix: impl Into<String>) -> Self {
        Self {
            prefix: prefix.into(),
        }
    }

    /// Returns the default watchdog namespace (`__wd`).
    pub fn default_namespace() -> Self {
        Self::new("__wd")
    }

    /// Redirects a slash-separated path.
    pub fn path(&self, path: &str) -> String {
        format!("{}/{}", self.prefix, path)
    }

    /// Redirects a flat key (colon-separated namespace).
    pub fn key(&self, key: &str) -> String {
        format!("{}:{}", self.prefix, key)
    }

    /// Returns `true` if `name` already lives in the watchdog namespace.
    pub fn is_redirected(&self, name: &str) -> bool {
        name.starts_with(&self.prefix)
    }

    /// Returns the namespace prefix.
    pub fn prefix(&self) -> &str {
        &self.prefix
    }
}

impl Default for IoRedirect {
    fn default() -> Self {
        Self::default_namespace()
    }
}

/// Resource bounds for one checking round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Budget {
    /// Wall-clock ceiling for a single checker execution; the driver reports
    /// the checker stuck past this.
    pub max_checker_runtime: Duration,
    /// Maximum mimicked operations per checker execution; reduction keeps
    /// checkers small, this is the backstop.
    pub max_ops_per_check: usize,
    /// Maximum bytes a checker may write through redirected I/O per check.
    pub max_io_bytes_per_check: u64,
}

impl Budget {
    /// Returns `true` if an execution at `ops` operations and `io_bytes`
    /// written is still within budget.
    pub fn allows(&self, ops: usize, io_bytes: u64) -> bool {
        ops <= self.max_ops_per_check && io_bytes <= self.max_io_bytes_per_check
    }
}

impl Default for Budget {
    fn default() -> Self {
        Self {
            max_checker_runtime: Duration::from_secs(5),
            max_ops_per_check: 64,
            max_io_bytes_per_check: 1 << 20,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_and_key_redirection() {
        let r = IoRedirect::new("__wd");
        assert_eq!(r.path("sst/3"), "__wd/sst/3");
        assert_eq!(r.key("k"), "__wd:k");
        assert_eq!(r.prefix(), "__wd");
    }

    #[test]
    fn is_redirected_detects_namespace() {
        let r = IoRedirect::default();
        assert!(r.is_redirected(&r.path("x")));
        assert!(r.is_redirected(&r.key("x")));
        assert!(!r.is_redirected("wal/0"));
    }

    #[test]
    fn budget_boundaries_inclusive() {
        let b = Budget {
            max_checker_runtime: Duration::from_secs(1),
            max_ops_per_check: 4,
            max_io_bytes_per_check: 100,
        };
        assert!(b.allows(4, 100));
        assert!(!b.allows(5, 1));
        assert!(!b.allows(1, 101));
    }

    #[test]
    fn default_budget_is_reasonable() {
        let b = Budget::default();
        assert!(b.max_ops_per_check > 0);
        assert!(b.max_io_bytes_per_check > 0);
        assert!(b.max_checker_runtime > Duration::ZERO);
    }
}
