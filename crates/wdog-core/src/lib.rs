//! The intrinsic software watchdog abstraction from *Comprehensive and
//! Efficient Runtime Checking in System Software through Watchdogs*
//! (HotOS '19).
//!
//! A **watchdog** is an extension embedded in the main program that monitors
//! the program's own health from inside its address space (paper §3.1). It is
//! *intrinsic* (unlike heartbeat-style crash failure detectors, which are
//! extrinsic) and runs *concurrently* with the normal execution (unlike error
//! handlers, which run in place). The pieces map one-to-one onto the paper:
//!
//! - [`checker::Checker`] — a sequence of instructions tailored to inspect
//!   one part of the main program;
//! - [`driver::WatchdogDriver`] — manages checker scheduling and execution,
//!   catches failure signatures (including a checker that itself hangs or
//!   panics — *fate sharing*, §3.3), and applies [`action::Action`]s;
//! - [`context::ContextTable`] — per-checker **contexts** holding the payload
//!   and arguments a checker needs, synchronized **one-way** from the main
//!   program through [`hooks::HookSite`]s so checkers never report failures
//!   that do not exist in the main program (§3.1, "state synchronization");
//! - [`report::FailureReport`] — what a detection looks like: the failure
//!   kind plus a pinpointed [`report::FaultLocation`] and the captured
//!   payload, precise enough to expedite diagnosis and reproduction (§1);
//! - [`status::HealthBoard`] — the definitive, per-component assessment of
//!   whether the software is still functioning (§2, Table 1);
//! - [`isolation`] — context replication and I/O redirection so checking
//!   never perturbs the normal execution (§3.2, "strong isolation").

pub mod action;
pub mod checker;
pub mod context;
pub mod driver;
pub mod hooks;
pub mod isolation;
pub mod policy;
pub mod prelude;
pub mod report;
pub mod status;
pub mod trace;
pub mod wdt;

pub use action::{Action, CallbackAction, EscalatingAction, ImpactGatedAction, LogAction};
pub use checker::{CheckStatus, Checker, ExecutionProbe, FnChecker};
pub use context::{
    ContextReader, ContextSlot, ContextSnapshot, ContextTable, CtxValue, PublishGuard,
};
pub use driver::{DriverBuilder, DriverStats, WatchdogConfig, WatchdogDriver};
pub use hooks::{FireGuard, HookSite, Hooks};
pub use isolation::{Budget, IoRedirect};
pub use policy::SchedulePolicy;
pub use report::{FailureKind, FailureReport, FaultLocation};
pub use status::{ComponentHealth, HealthBoard};
pub use trace::{TraceEvent, TraceEventKind, TraceRecorder};
pub use wdt::WatchdogTimer;
