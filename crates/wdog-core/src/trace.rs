//! Execution tracing for checker inference (`wdog-infer`).
//!
//! A [`TraceRecorder`] journals what the instrumented program *does* while
//! its own tests run: every context-key publish that flows through a hook
//! site and every op-table execution a mimic checker performs. The journal
//! is the raw material `wdog-infer` mines for value-level invariants —
//! numeric bounds, publish orderings, staleness windows — that structural
//! mimics are blind to.
//!
//! The recorder rides the same arming discipline as hook telemetry
//! ([`crate::hooks`]): it is attached post-hoc through
//! [`Hooks::attach_trace`](crate::hooks::Hooks::attach_trace), the armed
//! flag flips only after the recorder is stored, and a *disarmed* hook fire
//! still costs exactly one extra relaxed atomic load. An armed fire clones
//! its fields into a lane-striped, bounded buffer — recording is a test-time
//! mode, so the armed path may allocate; the production path may not.
//!
//! Events are stamped with a global sequence number and the recorder
//! clock's current (virtual) time. Under the deterministic simulation
//! substrate the drained journal is fully reproducible, which is what makes
//! mined invariants and the emitted checker corpus byte-stable.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use wdog_base::clock::SharedClock;

use crate::context::CtxValue;

/// Number of buffer lanes. Threads pick a lane by thread stripe, so
/// concurrent program threads recording events do not contend on one lock.
const TRACE_LANES: usize = 8;

/// Default per-lane event capacity; past it events are counted as dropped
/// rather than grown unboundedly (the buffer is bounded by construction).
const DEFAULT_LANE_CAPACITY: usize = 1 << 16;

/// What one trace event records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEventKind {
    /// A hook fired and published these fields into its context key.
    Publish { fields: Vec<(String, CtxValue)> },
    /// A mimicked op-table operation executed against the key's context.
    Op { op: String, ok: bool },
}

/// One journaled event: a context publish or an op-table execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Global record order (1-based); ties cannot occur.
    pub seq: u64,
    /// Recorder-clock timestamp in microseconds (virtual time under sim).
    pub at_us: u64,
    /// The context key the event belongs to.
    pub key: String,
    /// Publish or op execution.
    pub kind: TraceEventKind,
}

/// A bounded, lane-striped journal of publishes and op executions.
///
/// Created around the program's clock (use the sim clock for deterministic
/// journals), attached to the program's [`Hooks`](crate::hooks::Hooks) and
/// to mimic checkers, then [`drain`](TraceRecorder::drain)ed after the
/// workload of interest has run.
pub struct TraceRecorder {
    clock: SharedClock,
    seq: AtomicU64,
    dropped: AtomicU64,
    lane_capacity: usize,
    lanes: [Mutex<Vec<TraceEvent>>; TRACE_LANES],
}

impl TraceRecorder {
    /// Creates a recorder stamping events with `clock`, with the default
    /// per-lane capacity.
    pub fn new(clock: SharedClock) -> Arc<Self> {
        Self::with_capacity(clock, DEFAULT_LANE_CAPACITY)
    }

    /// Creates a recorder with an explicit per-lane event capacity.
    pub fn with_capacity(clock: SharedClock, lane_capacity: usize) -> Arc<Self> {
        Arc::new(Self {
            clock,
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            lane_capacity,
            lanes: std::array::from_fn(|_| Mutex::new(Vec::new())),
        })
    }

    /// Journals a completed context publish.
    pub fn record_publish(&self, key: &str, fields: Vec<(String, CtxValue)>) {
        self.record(key, TraceEventKind::Publish { fields });
    }

    /// Journals one op-table execution for the checker bound to `key`.
    pub fn record_op(&self, key: &str, op: &str, ok: bool) {
        self.record(
            key,
            TraceEventKind::Op {
                op: op.to_owned(),
                ok,
            },
        );
    }

    fn record(&self, key: &str, kind: TraceEventKind) {
        let lane = &self.lanes[wdog_base::lane::thread_stripe(TRACE_LANES)];
        let mut events = lane.lock();
        if events.len() >= self.lane_capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // The sequence is claimed under the lane lock so drained events sort
        // into a true record order.
        let seq = self.seq.fetch_add(1, Ordering::AcqRel) + 1;
        events.push(TraceEvent {
            seq,
            at_us: self.clock.now().as_micros() as u64,
            key: key.to_owned(),
            kind,
        });
    }

    /// Removes and returns every journaled event, sorted by sequence.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut all = Vec::new();
        for lane in &self.lanes {
            all.append(&mut lane.lock());
        }
        all.sort_by_key(|e| e.seq);
        all
    }

    /// Returns how many events were discarded because a lane was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Returns how many events are currently buffered.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(|l| l.lock().len()).sum()
    }

    /// Returns `true` if no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRecorder")
            .field("events", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use wdog_base::clock::VirtualClock;

    #[test]
    fn records_publishes_and_ops_in_sequence_order() {
        let clock = VirtualClock::shared();
        let rec = TraceRecorder::new(clock.clone());
        rec.record_publish("k", vec![("a".into(), CtxValue::U64(1))]);
        clock.advance(Duration::from_millis(2));
        rec.record_op("k", "f#disk_write", true);
        let events = rec.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 1);
        assert_eq!(events[0].at_us, 0);
        assert_eq!(
            events[0].kind,
            TraceEventKind::Publish {
                fields: vec![("a".into(), CtxValue::U64(1))]
            }
        );
        assert_eq!(events[1].at_us, 2_000);
        assert_eq!(
            events[1].kind,
            TraceEventKind::Op {
                op: "f#disk_write".into(),
                ok: true
            }
        );
        assert!(rec.is_empty(), "drain removes events");
    }

    #[test]
    fn bounded_lanes_count_drops_instead_of_growing() {
        let rec = TraceRecorder::with_capacity(VirtualClock::shared(), 2);
        for i in 0..5u64 {
            rec.record_publish("k", vec![("i".into(), CtxValue::U64(i))]);
        }
        // One thread = one lane, so capacity 2 admits 2 events.
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 3);
    }

    #[test]
    fn concurrent_recording_yields_unique_total_order() {
        let rec = TraceRecorder::new(VirtualClock::shared());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let rec = Arc::clone(&rec);
                s.spawn(move || {
                    for i in 0..500u64 {
                        rec.record_publish("k", vec![("v".into(), CtxValue::U64(t * 1000 + i))]);
                    }
                });
            }
        });
        let events = rec.drain();
        assert_eq!(events.len(), 2000);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64 + 1, "sequences dense and sorted");
        }
    }

    #[test]
    fn events_serialize_round_trip() {
        let e = TraceEvent {
            seq: 7,
            at_us: 1234,
            key: "flush".into(),
            kind: TraceEventKind::Publish {
                fields: vec![("len".into(), CtxValue::U64(42))],
            },
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }
}
