//! Failure reports: what a watchdog detection looks like.
//!
//! The paper's core argument for intrinsic detectors is *localization*: a
//! report should "pinpoint the problematic code region along with the payload
//! for diagnosing and reproducing production failures" (§1). A
//! [`FailureReport`] therefore carries a [`FaultLocation`] naming the
//! component, function, and — when known — the specific operation, plus the
//! captured context payload at the time of the check.

use serde::{Deserialize, Serialize};

use wdog_base::ids::{CheckerId, ComponentId, OpId};

/// The class of a detected failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureKind {
    /// A liveness violation: the checked operation never completed
    /// (deadlock, blocked I/O, infinite loop).
    Stuck,
    /// The operation completed but took far longer than its baseline
    /// (fail-slow hardware, limplock).
    Slow,
    /// The operation returned an explicit error.
    Error,
    /// Data failed an integrity check (checksum mismatch, bad state).
    Corruption,
    /// A semantic assertion over program state failed.
    AssertViolation,
    /// The checker itself panicked while executing — treated as a detection
    /// because mimic checkers share the fate of the code they copy.
    CheckerPanic,
}

impl FailureKind {
    /// Returns `true` for liveness-class failures (§2, Table 1).
    pub fn is_liveness(self) -> bool {
        matches!(self, FailureKind::Stuck | FailureKind::Slow)
    }

    /// Classifies a substrate error into a failure kind: timeouts and
    /// disconnect-while-waiting map to liveness ([`FailureKind::Stuck`]),
    /// integrity errors to [`FailureKind::Corruption`], everything else to
    /// [`FailureKind::Error`].
    pub fn from_error(e: &wdog_base::error::BaseError) -> Self {
        use wdog_base::error::BaseError;
        match e {
            BaseError::Timeout { .. } => FailureKind::Stuck,
            BaseError::Corruption(_) => FailureKind::Corruption,
            _ => FailureKind::Error,
        }
    }

    /// Returns a short stable label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            FailureKind::Stuck => "stuck",
            FailureKind::Slow => "slow",
            FailureKind::Error => "error",
            FailureKind::Corruption => "corruption",
            FailureKind::AssertViolation => "assert",
            FailureKind::CheckerPanic => "panic",
        }
    }
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Where a failure was observed, at up to operation granularity.
///
/// The paper's realistic pinpointing goal (§3.3) is "a location in the
/// ballpark of the root cause, e.g., several instructions away in the same
/// function, or at the caller of the faulting function" — component and
/// function are always present, the operation when the checker knows it.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultLocation {
    /// The monitored component, e.g. `kvs.flusher`.
    pub component: ComponentId,
    /// The function in the ballpark of the fault, e.g. `flush_memtable`.
    pub function: String,
    /// The specific operation, when known, e.g. `wal::append#disk_write`.
    pub operation: Option<OpId>,
}

impl FaultLocation {
    /// Creates a location with component and function only.
    pub fn new(component: impl Into<ComponentId>, function: impl Into<String>) -> Self {
        Self {
            component: component.into(),
            function: function.into(),
            operation: None,
        }
    }

    /// Adds the operation-level pinpoint.
    pub fn with_op(mut self, op: impl Into<OpId>) -> Self {
        self.operation = Some(op.into());
        self
    }

    /// Returns the most precise granularity available as a label:
    /// `"operation"`, or `"function"`.
    pub fn granularity(&self) -> &'static str {
        if self.operation.is_some() {
            "operation"
        } else {
            "function"
        }
    }
}

impl std::fmt::Display for FaultLocation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}::{}", self.component, self.function)?;
        if let Some(op) = &self.operation {
            write!(f, " [{op}]")?;
        }
        Ok(())
    }
}

/// A complete failure detection emitted by the watchdog driver.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureReport {
    /// The checker that fired.
    pub checker: CheckerId,
    /// The failure class.
    pub kind: FailureKind,
    /// Pinpointed location.
    pub location: FaultLocation,
    /// Human-readable detail (error text, assertion message).
    pub detail: String,
    /// Captured context payload at check time: `(field, rendered value)`.
    pub payload: Vec<(String, String)>,
    /// How long the failing operation ran before the verdict, if measured.
    pub observed_latency_ms: Option<u64>,
    /// Watchdog-clock timestamp of the detection, in milliseconds.
    pub at_ms: u64,
}

impl FailureReport {
    /// Renders a one-line summary suitable for logs.
    pub fn summary(&self) -> String {
        let lat = self
            .observed_latency_ms
            .map(|l| format!(" after {l} ms"))
            .unwrap_or_default();
        format!(
            "[{}] {} at {}{}: {}",
            self.checker, self.kind, self.location, lat, self.detail
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FailureReport {
        FailureReport {
            checker: CheckerId::new("kvs.flusher.mimic"),
            kind: FailureKind::Stuck,
            location: FaultLocation::new("kvs.flusher", "flush_memtable")
                .with_op("wal::append#disk_write"),
            detail: "operation did not complete".into(),
            payload: vec![("path".into(), "wal/0".into())],
            observed_latency_ms: Some(7000),
            at_ms: 12_000,
        }
    }

    #[test]
    fn liveness_kinds() {
        assert!(FailureKind::Stuck.is_liveness());
        assert!(FailureKind::Slow.is_liveness());
        assert!(!FailureKind::Error.is_liveness());
        assert!(!FailureKind::Corruption.is_liveness());
    }

    #[test]
    fn location_granularity() {
        let f = FaultLocation::new("kvs.indexer", "lookup");
        assert_eq!(f.granularity(), "function");
        assert_eq!(f.with_op("op#1").granularity(), "operation");
    }

    #[test]
    fn display_formats() {
        let loc = FaultLocation::new("kvs.flusher", "flush").with_op("disk#w");
        assert_eq!(loc.to_string(), "kvs.flusher::flush [disk#w]");
    }

    #[test]
    fn summary_mentions_everything_important() {
        let s = sample().summary();
        assert!(s.contains("kvs.flusher.mimic"));
        assert!(s.contains("stuck"));
        assert!(s.contains("flush_memtable"));
        assert!(s.contains("7000 ms"));
    }

    #[test]
    fn report_serializes_roundtrip() {
        let r = sample();
        let json = serde_json::to_string(&r).unwrap();
        let back: FailureReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
