//! Actions the driver applies when a checker detects a failure.
//!
//! The paper's driver "catches failure signatures from checkers, aborts or
//! restarts their executions and applies an action to the main program
//! accordingly" (§3.1), and §5.2 argues precise localization enables *cheap
//! recovery* — replacing corrupted objects or restarting one component
//! instead of the whole process. Actions here range from logging to
//! component-scoped restarts through a [`Restartable`] handle.

use std::sync::Arc;

use parking_lot::Mutex;

use wdog_base::ids::ComponentId;
use wdog_telemetry::{Counter, TelemetryRegistry};

use crate::report::FailureReport;

/// A response to a failure report.
pub trait Action: Send + Sync {
    /// Invoked by the driver for every failure report, in registration order.
    fn on_failure(&self, report: &FailureReport);
}

/// Default retained-report capacity for [`LogAction`].
pub const DEFAULT_LOG_CAP: usize = 4096;

/// Registry counter name for [`LogAction`] ring evictions.
pub const LOG_EVICTIONS_METRIC: &str = "log_reports_evicted_total";

/// Collects reports into a shared, inspectable log.
///
/// The log is a **ring buffer**: at most `capacity` reports are retained,
/// and a failure storm evicts the oldest entries rather than growing without
/// bound (the watchdog must not OOM the process it guards). Evictions are
/// counted into the telemetry registry (metric [`LOG_EVICTIONS_METRIC`])
/// when the log was built with [`LogAction::telemetered`], and are folded
/// into `DriverStats::log_evictions` for the driver's own log either way.
pub struct LogAction {
    reports: Mutex<std::collections::VecDeque<FailureReport>>,
    capacity: usize,
    evictions: Counter,
}

impl Default for LogAction {
    fn default() -> Self {
        Self {
            reports: Mutex::new(std::collections::VecDeque::new()),
            capacity: DEFAULT_LOG_CAP,
            evictions: Counter::new(),
        }
    }
}

impl LogAction {
    /// Creates an empty shared log with the default capacity.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Creates an empty shared log retaining at most `capacity` reports.
    pub fn with_capacity(capacity: usize) -> Arc<Self> {
        Arc::new(Self {
            capacity: capacity.max(1),
            ..Self::default()
        })
    }

    /// Creates a shared log whose eviction count reports through `registry`
    /// as [`LOG_EVICTIONS_METRIC`].
    pub fn telemetered(capacity: usize, registry: &TelemetryRegistry) -> Arc<Self> {
        Arc::new(Self {
            reports: Mutex::new(std::collections::VecDeque::new()),
            capacity: capacity.max(1),
            evictions: registry.counter(LOG_EVICTIONS_METRIC, ""),
        })
    }

    /// Returns a copy of all retained reports, oldest first.
    pub fn reports(&self) -> Vec<FailureReport> {
        self.reports.lock().iter().cloned().collect()
    }

    /// Returns the number of retained reports.
    pub fn len(&self) -> usize {
        self.reports.lock().len()
    }

    /// Returns `true` if no report is retained.
    pub fn is_empty(&self) -> bool {
        self.reports.lock().is_empty()
    }

    /// Removes and returns all retained reports, oldest first.
    pub fn drain(&self) -> Vec<FailureReport> {
        self.reports.lock().drain(..).collect()
    }

    /// Eviction count, exposed to the driver for `DriverStats` folding.
    /// External consumers read it from the telemetry snapshot instead.
    pub(crate) fn eviction_count(&self) -> u64 {
        self.evictions.get()
    }
}

impl Action for LogAction {
    fn on_failure(&self, report: &FailureReport) {
        let mut reports = self.reports.lock();
        if reports.len() >= self.capacity {
            reports.pop_front();
            self.evictions.inc();
        }
        reports.push_back(report.clone());
    }
}

/// Invokes an arbitrary callback for each report.
pub struct CallbackAction<F> {
    f: F,
}

impl<F> CallbackAction<F>
where
    F: Fn(&FailureReport) + Send + Sync,
{
    /// Wraps a callback as an action.
    pub fn new(f: F) -> Self {
        Self { f }
    }
}

impl<F> Action for CallbackAction<F>
where
    F: Fn(&FailureReport) + Send + Sync,
{
    fn on_failure(&self, report: &FailureReport) {
        (self.f)(report)
    }
}

/// A component that supports targeted recovery (§5.2 "cheap recovery").
pub trait Restartable: Send + Sync {
    /// Restarts (or otherwise repairs) the named component.
    fn restart(&self, component: &ComponentId);
}

/// A component whose workload can be shed when recovery fails.
///
/// Degrading is the rung between restart and escalation on the recovery
/// ladder: the component stops doing (and accepting) its work so the rest of
/// the process keeps running without it — e.g. compaction pauses, a
/// replication link goes silent — instead of a chronically failing component
/// flapping forever or forcing a whole-process restart.
pub trait Degradable: Send + Sync {
    /// Sheds the named component's workload, leaving it parked.
    fn degrade(&self, component: &ComponentId);
}

/// Registry counter name for [`EscalatingAction`] inner-action firings.
pub const ESCALATIONS_METRIC: &str = "escalations_total";
/// Registry counter name for [`EscalatingAction`] pruned component counters.
pub const ESCALATION_PRUNED_METRIC: &str = "escalation_counters_pruned_total";

/// Escalates to an inner action only after `threshold` reports for the same
/// component, suppressing one-off transients.
///
/// Counters are pruned: a component with no report inside `window_ms`
/// (typically the driver's `health_window`) is forgotten, so a long-lived
/// process blaming many distinct components over time does not accumulate an
/// unbounded map. Firings and prunes report through the telemetry registry
/// (metrics [`ESCALATIONS_METRIC`] / [`ESCALATION_PRUNED_METRIC`]) when
/// built [`EscalatingAction::with_telemetry`].
pub struct EscalatingAction<A> {
    threshold: u64,
    /// Per-component `(reports, last_report_at_ms)`.
    counts: Mutex<std::collections::HashMap<ComponentId, (u64, u64)>>,
    window_ms: u64,
    inner: A,
    escalations: Counter,
    pruned: Counter,
}

/// Default prune window matching `WatchdogConfig::health_window`'s default.
const DEFAULT_ESCALATION_WINDOW_MS: u64 = 30_000;

impl<A: Action> EscalatingAction<A> {
    /// Creates an escalator that fires `inner` on every `threshold`-th report
    /// per component.
    pub fn new(threshold: u64, inner: A) -> Self {
        Self {
            threshold: threshold.max(1),
            counts: Mutex::new(std::collections::HashMap::new()),
            window_ms: DEFAULT_ESCALATION_WINDOW_MS,
            inner,
            escalations: Counter::new(),
            pruned: Counter::new(),
        }
    }

    /// Sets how long a silent component's counter is retained.
    pub fn with_window(mut self, window: std::time::Duration) -> Self {
        self.window_ms = (window.as_millis() as u64).max(1);
        self
    }

    /// Routes the firing/prune counters through `registry`.
    pub fn with_telemetry(mut self, registry: &TelemetryRegistry) -> Self {
        self.escalations = registry.counter(ESCALATIONS_METRIC, "");
        self.pruned = registry.counter(ESCALATION_PRUNED_METRIC, "");
        self
    }

    /// Returns how many component counters are currently retained.
    pub fn tracked_components(&self) -> usize {
        self.counts.lock().len()
    }

    /// Firing count, exposed for in-crate tests; external consumers read
    /// [`ESCALATIONS_METRIC`] from the telemetry snapshot.
    #[cfg(test)]
    fn escalation_count(&self) -> u64 {
        self.escalations.get()
    }
}

impl<A: Action> Action for EscalatingAction<A> {
    fn on_failure(&self, report: &FailureReport) {
        let fire = {
            let mut counts = self.counts.lock();
            // Drop components silent for longer than the window; report
            // timestamps drive the clock so no time source is needed here.
            let horizon = report.at_ms.saturating_sub(self.window_ms);
            let before = counts.len();
            counts.retain(|_, (_, last)| *last >= horizon);
            let evicted = before - counts.len();
            if evicted > 0 {
                self.pruned.add(evicted as u64);
            }
            let entry = counts
                .entry(report.location.component.clone())
                .or_insert((0, report.at_ms));
            entry.0 += 1;
            entry.1 = report.at_ms;
            entry.0.is_multiple_of(self.threshold)
        };
        if fire {
            self.escalations.inc();
            self.inner.on_failure(report);
        }
    }
}

/// Gates an inner action behind an impact assessment (paper §5.1).
///
/// "The watchdog detection may also be superfluous if the main program can
/// successfully handle the detected fault. To reduce false alarms, we need
/// to further assess the impact of the fault, e.g., through invoking
/// probe-checkers when mimic-checkers detect faults." This action runs a
/// probe (any [`Checker`](crate::checker::Checker), typically an API-level
/// probe) when a report arrives; the inner action fires only if the probe
/// also fails — i.e., the fault has client-visible impact. Suppressed
/// reports are counted, not lost.
pub struct ImpactGatedAction {
    probe: Mutex<Box<dyn crate::checker::Checker>>,
    inner: Arc<dyn Action>,
    forwarded: Counter,
    suppressed: Counter,
}

/// Named counters for an [`ImpactGatedAction`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GateCounters {
    /// Reports whose impact the probe confirmed; forwarded to the inner
    /// action.
    pub forwarded: u64,
    /// Reports the probe found harmless; suppressed.
    pub suppressed: u64,
}

impl ImpactGatedAction {
    /// Creates a gate running `probe` before forwarding to `inner`.
    pub fn new(probe: Box<dyn crate::checker::Checker>, inner: Arc<dyn Action>) -> Self {
        Self {
            probe: Mutex::new(probe),
            inner,
            forwarded: Counter::new(),
            suppressed: Counter::new(),
        }
    }

    /// Returns the forwarded / suppressed report counts.
    pub fn counters(&self) -> GateCounters {
        GateCounters {
            forwarded: self.forwarded.get(),
            suppressed: self.suppressed.get(),
        }
    }
}

impl Action for ImpactGatedAction {
    fn on_failure(&self, report: &FailureReport) {
        let impact = {
            let mut probe = self.probe.lock();
            !matches!(probe.check(), crate::checker::CheckStatus::Pass)
        };
        if impact {
            self.forwarded.inc();
            self.inner.on_failure(report);
        } else {
            self.suppressed.inc();
        }
    }
}

/// Restarts the failing component via a [`Restartable`] handle.
pub struct RestartAction {
    target: Arc<dyn Restartable>,
    restarts: Counter,
}

/// Named counters for a [`RestartAction`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestartCounters {
    /// Restarts requested so far.
    pub restarts: u64,
}

impl RestartAction {
    /// Creates a restart action delegating to `target`.
    pub fn new(target: Arc<dyn Restartable>) -> Self {
        Self {
            target,
            restarts: Counter::new(),
        }
    }

    /// Returns the restart counters so far.
    pub fn counters(&self) -> RestartCounters {
        RestartCounters {
            restarts: self.restarts.get(),
        }
    }
}

impl Action for RestartAction {
    fn on_failure(&self, report: &FailureReport) {
        self.restarts.inc();
        self.target.restart(&report.location.component);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{FailureKind, FaultLocation};
    use std::sync::atomic::{AtomicU64, Ordering};
    use wdog_base::ids::CheckerId;

    fn report(component: &str) -> FailureReport {
        report_at(component, 0)
    }

    fn report_at(component: &str, at_ms: u64) -> FailureReport {
        FailureReport {
            checker: CheckerId::new("c"),
            kind: FailureKind::Error,
            location: FaultLocation::new(component, "f"),
            detail: "d".into(),
            payload: vec![],
            observed_latency_ms: None,
            at_ms,
        }
    }

    #[test]
    fn log_action_collects_and_drains() {
        let log = LogAction::new();
        log.on_failure(&report("a"));
        log.on_failure(&report("b"));
        assert_eq!(log.len(), 2);
        let drained = log.drain();
        assert_eq!(drained.len(), 2);
        assert!(log.is_empty());
    }

    #[test]
    fn log_action_ring_evicts_oldest_and_counts_drops() {
        let registry = TelemetryRegistry::new();
        let log = LogAction::telemetered(3, &registry);
        for i in 0..5 {
            log.on_failure(&report(&format!("c{i}")));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(registry.counter(LOG_EVICTIONS_METRIC, "").get(), 2);
        let kept: Vec<String> = log
            .reports()
            .iter()
            .map(|r| r.location.component.to_string())
            .collect();
        assert_eq!(kept, vec!["c2", "c3", "c4"]);
        // Draining resets the retained set but not the eviction count.
        assert_eq!(log.drain().len(), 3);
        assert!(log.is_empty());
        assert_eq!(registry.counter(LOG_EVICTIONS_METRIC, "").get(), 2);
        assert_eq!(log.eviction_count(), 2);
    }

    #[test]
    fn callback_action_invokes() {
        let hits = Arc::new(AtomicU64::new(0));
        let h2 = Arc::clone(&hits);
        let a = CallbackAction::new(move |_r| {
            h2.fetch_add(1, Ordering::Relaxed);
        });
        a.on_failure(&report("x"));
        a.on_failure(&report("x"));
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn escalation_fires_every_threshold_per_component() {
        let log = LogAction::new();
        let esc = EscalatingAction::new(3, CallbackActionToLog(Arc::clone(&log)));
        for _ in 0..7 {
            esc.on_failure(&report("a"));
        }
        // Interleaved component must not share the counter.
        esc.on_failure(&report("b"));
        assert_eq!(esc.escalation_count(), 2); // at the 3rd and 6th "a" reports
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn escalation_reports_through_registry() {
        let registry = TelemetryRegistry::new();
        let esc = EscalatingAction::new(2, CallbackActionToLog(LogAction::new()))
            .with_window(std::time::Duration::from_millis(1_000))
            .with_telemetry(&registry);
        esc.on_failure(&report_at("a", 0));
        esc.on_failure(&report_at("a", 10));
        assert_eq!(registry.counter(ESCALATIONS_METRIC, "").get(), 1);
        // A report far past the window prunes the stale "a" counter.
        esc.on_failure(&report_at("b", 10_000));
        assert_eq!(registry.counter(ESCALATION_PRUNED_METRIC, "").get(), 1);
    }

    /// Adapter used in tests: forwards into a shared [`LogAction`].
    struct CallbackActionToLog(Arc<LogAction>);

    impl Action for CallbackActionToLog {
        fn on_failure(&self, r: &FailureReport) {
            self.0.on_failure(r);
        }
    }

    #[test]
    fn escalation_counters_are_pruned_outside_window() {
        let log = LogAction::new();
        let esc = EscalatingAction::new(3, CallbackActionToLog(Arc::clone(&log)))
            .with_window(std::time::Duration::from_millis(1_000));
        // Blame many distinct components across a long run: only those seen
        // within the last second of report-time may remain tracked.
        for i in 0..100u64 {
            esc.on_failure(&report_at(&format!("comp{i}"), i * 500));
        }
        assert!(
            esc.tracked_components() <= 4,
            "counter map not pruned: {} entries",
            esc.tracked_components()
        );
        // Pruning also resets stale escalation progress: two old reports
        // separated from a third by more than the window must not fire.
        let esc2 = EscalatingAction::new(3, CallbackActionToLog(LogAction::new()))
            .with_window(std::time::Duration::from_millis(1_000));
        esc2.on_failure(&report_at("a", 0));
        esc2.on_failure(&report_at("a", 10));
        esc2.on_failure(&report_at("a", 5_000));
        assert_eq!(esc2.escalation_count(), 0);
        // Whereas three inside the window do.
        esc2.on_failure(&report_at("a", 5_100));
        esc2.on_failure(&report_at("a", 5_200));
        assert_eq!(esc2.escalation_count(), 1);
    }

    #[test]
    fn degradable_receives_component() {
        struct Shedder(Mutex<Vec<ComponentId>>);
        impl Degradable for Shedder {
            fn degrade(&self, c: &ComponentId) {
                self.0.lock().push(c.clone());
            }
        }
        let s = Shedder(Mutex::new(vec![]));
        s.degrade(&ComponentId::new("kvs.compaction"));
        assert_eq!(s.0.lock()[0], ComponentId::new("kvs.compaction"));
    }

    #[test]
    fn impact_gate_forwards_only_confirmed_reports() {
        use crate::checker::{CheckFailure, CheckStatus, FnChecker};
        let log = LogAction::new();
        let api_broken = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = Arc::clone(&api_broken);
        let probe = FnChecker::new("impact-probe", "api", move || {
            if flag.load(Ordering::Relaxed) {
                CheckStatus::Fail(CheckFailure::new(
                    FailureKind::Error,
                    FaultLocation::new("api", "get"),
                    "probe failed",
                ))
            } else {
                CheckStatus::Pass
            }
        });
        let gate = ImpactGatedAction::new(Box::new(probe), Arc::clone(&log) as Arc<dyn Action>);
        // No client impact: the mimic detection is suppressed.
        gate.on_failure(&report("kvs.wal"));
        assert_eq!(
            gate.counters(),
            GateCounters {
                forwarded: 0,
                suppressed: 1
            }
        );
        assert!(log.is_empty());
        // Client impact confirmed: forwarded.
        api_broken.store(true, Ordering::Relaxed);
        gate.on_failure(&report("kvs.wal"));
        assert_eq!(
            gate.counters(),
            GateCounters {
                forwarded: 1,
                suppressed: 1
            }
        );
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn restart_action_targets_failing_component() {
        struct Recorder(Mutex<Vec<ComponentId>>);
        impl Restartable for Recorder {
            fn restart(&self, c: &ComponentId) {
                self.0.lock().push(c.clone());
            }
        }
        let rec = Arc::new(Recorder(Mutex::new(vec![])));
        let action = RestartAction::new(Arc::clone(&rec) as Arc<dyn Restartable>);
        action.on_failure(&report("kvs.flusher"));
        assert_eq!(action.counters(), RestartCounters { restarts: 1 });
        assert_eq!(rec.0.lock()[0], ComponentId::new("kvs.flusher"));
    }
}
