//! Checker contexts and one-way state synchronization (paper §3.1).
//!
//! A concurrent checker must not report failures that do not exist in the
//! main program — the paper's example is a disk-flusher checker barking when
//! `kvs` is configured in-memory and no snapshot directory exists. The fix is
//! a **context** bound to each checker that supplies the payload and
//! arguments for the checking procedure, updated by **hooks** in the main
//! program. Synchronization is strictly **one-way**: the main program
//! publishes; checkers read.
//!
//! This module enforces the direction with types: a [`ContextTable`] hands
//! out write access only through [`hooks`](crate::hooks), while checkers get
//! a read-only [`ContextReader`]. Reads return a [`ContextSnapshot`] — a
//! deep copy — which is the paper's *context replication* isolation
//! mechanism (§5.1): a checker mutating its snapshot can never corrupt the
//! main program's data.
//!
//! # Sharded, striped layout
//!
//! Contexts are stored as pre-registered, index-addressed [`ContextSlot`]s.
//! A hook site calls [`ContextTable::register`] once when it is created and
//! caches the returned `Arc<ContextSlot>`; every subsequent publish locks
//! only that slot — no key hashing, no table-wide lock. Within a slot,
//! writers are **striped**: each program thread publishes through its own
//! lane-selected stripe (its own small mutex plus a flat field vector
//! upserted in place), so several threads firing the same site do not
//! contend either, and the steady-state publish allocates nothing. Checkers
//! read via [`ContextSlot::snapshot`], which copies each stripe under its
//! short lock, merges fields by publish sequence (latest writer wins), and
//! validates the whole copy against the slot version seqlock-style. The
//! string-keyed [`ContextTable::publish`]/[`ContextTable::read`] API is
//! preserved as a convenience path that resolves the slot through a
//! read-mostly index map. The original single `RwLock<HashMap>` design is
//! retained in [`baseline`] purely so the overhead benchmark can measure the
//! sharded layout against it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

use wdog_base::clock::SharedClock;

/// A value stored in a context slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CtxValue {
    /// Unsigned integer (counters, sizes, offsets).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (rates, loads).
    F64(f64),
    /// Text (paths, keys, peer addresses).
    Str(String),
    /// Raw payload bytes (a record to write, a message to send).
    Bytes(Vec<u8>),
    /// Flag.
    Bool(bool),
}

impl CtxValue {
    /// Renders the value for inclusion in a failure report payload.
    pub fn render(&self) -> String {
        match self {
            CtxValue::U64(v) => v.to_string(),
            CtxValue::I64(v) => v.to_string(),
            CtxValue::F64(v) => format!("{v:.3}"),
            CtxValue::Str(s) => s.clone(),
            CtxValue::Bytes(b) => format!("<{} bytes>", b.len()),
            CtxValue::Bool(b) => b.to_string(),
        }
    }

    /// Returns the string if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            CtxValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer if this is a `U64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            CtxValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the bytes if this is a `Bytes`.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            CtxValue::Bytes(b) => Some(b),
            _ => None,
        }
    }
}

impl From<u64> for CtxValue {
    fn from(v: u64) -> Self {
        CtxValue::U64(v)
    }
}

impl From<&str> for CtxValue {
    fn from(v: &str) -> Self {
        CtxValue::Str(v.to_owned())
    }
}

impl From<String> for CtxValue {
    fn from(v: String) -> Self {
        CtxValue::Str(v)
    }
}

impl From<Vec<u8>> for CtxValue {
    fn from(v: Vec<u8>) -> Self {
        CtxValue::Bytes(v)
    }
}

impl From<bool> for CtxValue {
    fn from(v: bool) -> Self {
        CtxValue::Bool(v)
    }
}

/// A deep-copied view of one context slot at read time.
///
/// Mutating a snapshot has no effect on the table — this is the context
/// replication isolation boundary.
#[derive(Debug, Clone)]
pub struct ContextSnapshot {
    /// Field name → value, copied at read time.
    pub fields: HashMap<String, CtxValue>,
    /// Monotonic per-slot version; bumps on every publish.
    pub version: u64,
    /// How old the slot was at read time.
    pub age: Duration,
}

impl ContextSnapshot {
    /// Looks up one field.
    pub fn get(&self, name: &str) -> Option<&CtxValue> {
        self.fields.get(name)
    }

    /// Renders all fields for a failure-report payload, sorted by name.
    pub fn render_payload(&self) -> Vec<(String, String)> {
        let mut v: Vec<(String, String)> = self
            .fields
            .iter()
            .map(|(k, val)| (k.clone(), val.render()))
            .collect();
        v.sort();
        v
    }
}

/// Number of write stripes per slot. Power of two; writers pick a stripe by
/// thread lane, so program threads publishing into the same slot take
/// different stripe locks and never contend in the common case.
const SLOT_STRIPES: usize = 8;

/// Mutable stripe contents, guarded by the per-stripe mutex.
///
/// Fields live in a flat vector upserted by linear scan: slots hold a
/// handful of fields, and after the first publish from a thread the steady
/// state re-publishes the same names — the scan replaces values in place
/// with **zero allocation** (key `String`s are allocated exactly once).
/// Each field carries the publish sequence that last wrote it, so snapshots
/// can merge stripes into a single latest-writer-wins view.
/// One published field with the publish sequence that wrote it.
type SeqField = (String, CtxValue, u64);

#[derive(Debug, Default)]
struct StripeState {
    fields: Vec<SeqField>,
    updated_at: Duration,
    /// Sequence of the last publish into this stripe (0 = never).
    last_seq: u64,
}

/// One write stripe: its own small mutex plus the state behind it.
#[derive(Debug, Default)]
struct Stripe {
    state: Mutex<StripeState>,
}

/// One pre-registered context slot, striped for concurrent writers.
///
/// Hook sites hold an `Arc<ContextSlot>` resolved once at site creation, so
/// the publish hot path is: one relaxed enable check (in the hook), one
/// *uncontended* per-stripe mutex, one in-place field upsert. The `version`
/// counter is the slot-wide publish sequence; it doubles as the "ever
/// published" flag (0 = registered but empty) and is readable without any
/// lock. Checker-side snapshots merge the stripes per field by publish
/// sequence and validate the copy against `version` seqlock-style, retrying
/// while publishes land mid-read.
pub struct ContextSlot {
    key: String,
    id: usize,
    clock: SharedClock,
    version: AtomicU64,
    stripes: [Stripe; SLOT_STRIPES],
}

/// An open publish into one slot stripe, created by
/// [`ContextSlot::begin_publish`].
///
/// Holds the stripe lock; [`PublishGuard::set`] upserts fields in place with
/// no allocation once the field exists. Dropping the guard completes the
/// publish: it stamps the stripe's freshness and bumps the slot version.
/// This is the zero-alloc path `HookSite::fire` writes through.
pub struct PublishGuard<'a> {
    slot: &'a ContextSlot,
    state: parking_lot::MutexGuard<'a, StripeState>,
    seq: u64,
}

impl PublishGuard<'_> {
    /// Sets one field, replacing a same-named field in place.
    #[inline]
    pub fn set(&mut self, name: &str, value: impl Into<CtxValue>) -> &mut Self {
        let value = value.into();
        let seq = self.seq;
        match self.state.fields.iter_mut().find(|(k, _, _)| k == name) {
            Some((_, v, s)) => {
                *v = value;
                *s = seq;
            }
            None => self.state.fields.push((name.to_owned(), value, seq)),
        }
        self
    }

    /// Sets one field from an owned key, avoiding the copy [`set`] would
    /// make on first insert. Used by the `Vec`-based compatibility path.
    ///
    /// [`set`]: PublishGuard::set
    pub fn set_owned(&mut self, name: String, value: CtxValue) -> &mut Self {
        let seq = self.seq;
        match self.state.fields.iter_mut().find(|(k, _, _)| *k == name) {
            Some((_, v, s)) => {
                *v = value;
                *s = seq;
            }
            None => self.state.fields.push((name, value, seq)),
        }
        self
    }
}

impl Drop for PublishGuard<'_> {
    fn drop(&mut self) {
        self.state.updated_at = self.slot.clock.now();
        self.state.last_seq = self.seq;
    }
}

impl std::fmt::Debug for PublishGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PublishGuard")
            .field("key", &self.slot.key)
            .field("seq", &self.seq)
            .finish()
    }
}

impl ContextSlot {
    fn new(key: String, id: usize, clock: SharedClock) -> Self {
        Self {
            key,
            id,
            clock,
            version: AtomicU64::new(0),
            stripes: std::array::from_fn(|_| Stripe::default()),
        }
    }

    /// Returns the context key this slot stores.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Returns the slot's registration index (stable for the table's life).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Opens a publish on this thread's stripe and returns the write guard.
    ///
    /// The slot version (publish sequence) is claimed under the stripe lock,
    /// so sequences within one stripe are monotone in lock order and a
    /// snapshot's per-field merge across stripes is a true linearization.
    #[inline]
    pub fn begin_publish(&self) -> PublishGuard<'_> {
        let stripe = &self.stripes[wdog_base::lane::thread_stripe(SLOT_STRIPES)];
        let state = stripe.state.lock();
        let seq = self.version.fetch_add(1, Ordering::AcqRel) + 1;
        PublishGuard {
            slot: self,
            state,
            seq,
        }
    }

    /// Publishes fields, replacing same-named fields and bumping the slot
    /// version. `Vec`-building compatibility path; hot code publishes
    /// through [`ContextSlot::begin_publish`] (or a hook-site fire guard)
    /// instead.
    pub fn publish(&self, fields: Vec<(String, CtxValue)>) {
        let mut guard = self.begin_publish();
        for (k, v) in fields {
            guard.set_owned(k, v);
        }
    }

    /// Copies every stripe once; returns per-stripe (fields, updated_at).
    fn copy_stripes(&self) -> Vec<(Vec<SeqField>, Duration)> {
        let mut parts = Vec::with_capacity(SLOT_STRIPES);
        for stripe in &self.stripes {
            let state = stripe.state.lock();
            if state.last_seq == 0 {
                continue;
            }
            parts.push((state.fields.clone(), state.updated_at));
        }
        parts
    }

    /// Reads a deep copy, or `None` if nothing was ever published.
    ///
    /// Stripes are copied one short lock at a time and merged per field by
    /// publish sequence (latest writer wins). The copy is validated against
    /// the slot version seqlock-style: if a publish landed while the stripes
    /// were being walked, the read retries, so a quiescent slot always
    /// yields an exact point-in-time view. Under a sustained publish storm
    /// the final attempt is accepted as-is — each *individual* publish is
    /// still atomic (its stripe was copied under the stripe lock); only
    /// cross-stripe simultaneity is relaxed, which concurrent publishing
    /// makes unobservable anyway.
    pub fn snapshot(&self) -> Option<ContextSnapshot> {
        if self.version.load(Ordering::Acquire) == 0 {
            return None;
        }
        let now = self.clock.now();
        const SEQLOCK_RETRIES: usize = 3;
        let mut attempt = 0;
        let (parts, version) = loop {
            let before = self.version.load(Ordering::Acquire);
            let parts = self.copy_stripes();
            let after = self.version.load(Ordering::Acquire);
            attempt += 1;
            if before == after || attempt > SEQLOCK_RETRIES {
                break (parts, after);
            }
        };
        if parts.is_empty() {
            // Version was claimed but no stripe has completed a publish yet;
            // the slot is not observable until the first guard drops.
            return None;
        }
        let mut updated_at = Duration::ZERO;
        let mut winners: HashMap<String, (CtxValue, u64)> = HashMap::new();
        for (stripe_fields, stripe_updated) in parts {
            updated_at = updated_at.max(stripe_updated);
            for (k, v, seq) in stripe_fields {
                match winners.get(&k) {
                    Some((_, cur)) if *cur >= seq => {}
                    _ => {
                        winners.insert(k, (v, seq));
                    }
                }
            }
        }
        let fields: HashMap<String, CtxValue> =
            winners.into_iter().map(|(k, (v, _))| (k, v)).collect();
        Some(ContextSnapshot {
            fields,
            version,
            age: now.saturating_sub(updated_at),
        })
    }

    /// Returns the current version without locking (0 = never published).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Returns `true` once the slot has been published at least once.
    pub fn is_ready(&self) -> bool {
        self.version() > 0
    }
}

impl std::fmt::Debug for ContextSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContextSlot")
            .field("key", &self.key)
            .field("id", &self.id)
            .field("version", &self.version())
            .finish()
    }
}

/// The table of all checker contexts inside one watchdog.
///
/// Keys are free-form strings; by convention the generated watchdogs use the
/// reduced function's name (e.g. `"serialize_snapshot"`). Writes happen only
/// through [`ContextTable::publish`] or a registered [`ContextSlot`], which
/// the hook machinery calls from the main program's threads; checkers hold a
/// [`ContextReader`]. The key → slot index is touched only at registration
/// and string-keyed lookup, never on a slot-handle publish.
pub struct ContextTable {
    clock: SharedClock,
    index: RwLock<HashMap<String, Arc<ContextSlot>>>,
}

impl ContextTable {
    /// Creates an empty table on the given clock.
    pub fn new(clock: SharedClock) -> Arc<Self> {
        Arc::new(Self {
            clock,
            index: RwLock::new(HashMap::new()),
        })
    }

    /// Registers (or finds) the slot for `key`, returning a handle that
    /// publishes without consulting the table again. Hook sites call this
    /// once at creation and cache the handle.
    pub fn register(&self, key: &str) -> Arc<ContextSlot> {
        if let Some(slot) = self.index.read().get(key) {
            return Arc::clone(slot);
        }
        let mut index = self.index.write();
        if let Some(slot) = index.get(key) {
            return Arc::clone(slot);
        }
        let slot = Arc::new(ContextSlot::new(
            key.to_owned(),
            index.len(),
            self.clock.clone(),
        ));
        index.insert(key.to_owned(), Arc::clone(&slot));
        slot
    }

    /// Looks up the slot for `key` without creating it.
    pub fn slot(&self, key: &str) -> Option<Arc<ContextSlot>> {
        self.index.read().get(key).map(Arc::clone)
    }

    /// Publishes fields into a slot, replacing same-named fields and bumping
    /// the slot version. String-keyed convenience path; hot code should
    /// publish through a registered [`ContextSlot`] instead.
    pub fn publish(&self, key: &str, fields: Vec<(String, CtxValue)>) {
        self.register(key).publish(fields);
    }

    /// Reads a deep copy of a slot, or `None` if it was never published.
    pub fn read(&self, key: &str) -> Option<ContextSnapshot> {
        self.slot(key).and_then(|s| s.snapshot())
    }

    /// Returns `true` if the slot has been published — the paper's "context
    /// ready" test. Registered-but-empty slots are not ready.
    pub fn is_ready(&self, key: &str) -> bool {
        self.slot(key).is_some_and(|s| s.is_ready())
    }

    /// Returns the keys of all published slots, sorted.
    pub fn keys(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .index
            .read()
            .values()
            .filter(|s| s.is_ready())
            .map(|s| s.key().to_owned())
            .collect();
        v.sort();
        v
    }

    /// Creates a read-only handle for checkers.
    pub fn reader(self: &Arc<Self>) -> ContextReader {
        ContextReader {
            table: Arc::clone(self),
        }
    }
}

impl std::fmt::Debug for ContextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContextTable")
            .field("slots", &self.keys())
            .finish()
    }
}

/// Read-only access to a [`ContextTable`], handed to checkers.
#[derive(Clone)]
pub struct ContextReader {
    table: Arc<ContextTable>,
}

impl ContextReader {
    /// Reads a deep copy of a slot; see [`ContextTable::read`].
    pub fn read(&self, key: &str) -> Option<ContextSnapshot> {
        self.table.read(key)
    }

    /// Returns `true` if the slot has been published at least once.
    pub fn is_ready(&self, key: &str) -> bool {
        self.table.is_ready(key)
    }
}

impl std::fmt::Debug for ContextReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ContextReader")
    }
}

pub mod baseline {
    //! The pre-sharding context table: one `RwLock<HashMap>` for everything.
    //!
    //! Every publish from any component serializes on the same write lock
    //! and re-hashes its key. Kept only as the comparison point for
    //! `bench/benches/overhead.rs`; production code uses the sharded
    //! [`ContextTable`](super::ContextTable).

    use super::*;

    #[derive(Debug, Clone, Default)]
    struct Slot {
        fields: HashMap<String, CtxValue>,
        version: u64,
        updated_at: Duration,
    }

    /// Single-lock context table retained for benchmarking.
    pub struct BaselineContextTable {
        clock: SharedClock,
        slots: RwLock<HashMap<String, Slot>>,
    }

    impl BaselineContextTable {
        /// Creates an empty table on the given clock.
        pub fn new(clock: SharedClock) -> Arc<Self> {
            Arc::new(Self {
                clock,
                slots: RwLock::new(HashMap::new()),
            })
        }

        /// Publishes fields under the table-wide write lock.
        pub fn publish(&self, key: &str, fields: Vec<(String, CtxValue)>) {
            let now = self.clock.now();
            let mut slots = self.slots.write();
            let slot = slots.entry(key.to_owned()).or_default();
            for (k, v) in fields {
                slot.fields.insert(k, v);
            }
            slot.version += 1;
            slot.updated_at = now;
        }

        /// Reads a deep copy under the table-wide read lock.
        pub fn read(&self, key: &str) -> Option<ContextSnapshot> {
            let now = self.clock.now();
            let slots = self.slots.read();
            slots.get(key).map(|s| ContextSnapshot {
                fields: s.fields.clone(),
                version: s.version,
                age: now.saturating_sub(s.updated_at),
            })
        }

        /// Returns `true` if the slot exists.
        pub fn is_ready(&self, key: &str) -> bool {
            self.slots.read().contains_key(key)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdog_base::clock::VirtualClock;

    #[test]
    fn unpublished_slot_is_not_ready() {
        let table = ContextTable::new(VirtualClock::shared());
        assert!(!table.is_ready("x"));
        assert!(table.read("x").is_none());
    }

    #[test]
    fn registered_but_unpublished_slot_is_not_ready() {
        let table = ContextTable::new(VirtualClock::shared());
        let slot = table.register("x");
        assert!(!slot.is_ready());
        assert!(!table.is_ready("x"));
        assert!(table.read("x").is_none());
        assert!(table.keys().is_empty());
    }

    #[test]
    fn publish_then_read_roundtrip() {
        let table = ContextTable::new(VirtualClock::shared());
        table.publish(
            "flush",
            vec![
                ("path".into(), "wal/0".into()),
                ("len".into(), CtxValue::U64(42)),
            ],
        );
        let snap = table.read("flush").unwrap();
        assert_eq!(snap.get("path").unwrap().as_str(), Some("wal/0"));
        assert_eq!(snap.get("len").unwrap().as_u64(), Some(42));
        assert_eq!(snap.version, 1);
    }

    #[test]
    fn versions_bump_on_each_publish() {
        let table = ContextTable::new(VirtualClock::shared());
        for i in 0..5u64 {
            table.publish("k", vec![("i".into(), CtxValue::U64(i))]);
        }
        let snap = table.read("k").unwrap();
        assert_eq!(snap.version, 5);
        assert_eq!(snap.get("i").unwrap().as_u64(), Some(4));
    }

    #[test]
    fn age_tracks_clock() {
        let clock = VirtualClock::shared();
        let table = ContextTable::new(clock.clone());
        table.publish("k", vec![("a".into(), CtxValue::Bool(true))]);
        clock.advance(Duration::from_secs(3));
        let snap = table.read("k").unwrap();
        assert_eq!(snap.age, Duration::from_secs(3));
    }

    #[test]
    fn snapshots_are_deep_copies() {
        let table = ContextTable::new(VirtualClock::shared());
        table.publish("k", vec![("buf".into(), CtxValue::Bytes(vec![1, 2, 3]))]);
        let mut snap = table.read("k").unwrap();
        // Mutate the snapshot; the table must be unaffected.
        snap.fields.insert("buf".into(), CtxValue::Bytes(vec![9]));
        let again = table.read("k").unwrap();
        assert_eq!(again.get("buf").unwrap().as_bytes(), Some(&[1u8, 2, 3][..]));
    }

    #[test]
    fn partial_publish_merges_fields() {
        let table = ContextTable::new(VirtualClock::shared());
        table.publish("k", vec![("a".into(), CtxValue::U64(1))]);
        table.publish("k", vec![("b".into(), CtxValue::U64(2))]);
        let snap = table.read("k").unwrap();
        assert_eq!(snap.fields.len(), 2);
    }

    #[test]
    fn render_payload_is_sorted() {
        let table = ContextTable::new(VirtualClock::shared());
        table.publish(
            "k",
            vec![
                ("z".into(), CtxValue::U64(1)),
                ("a".into(), CtxValue::Bool(false)),
            ],
        );
        let payload = table.read("k").unwrap().render_payload();
        assert_eq!(payload[0].0, "a");
        assert_eq!(payload[1].0, "z");
    }

    #[test]
    fn reader_is_read_only_view() {
        let table = ContextTable::new(VirtualClock::shared());
        let reader = table.reader();
        assert!(!reader.is_ready("k"));
        table.publish("k", vec![("a".into(), CtxValue::U64(7))]);
        assert!(reader.is_ready("k"));
        assert_eq!(
            reader.read("k").unwrap().get("a").unwrap().as_u64(),
            Some(7)
        );
    }

    #[test]
    fn register_is_idempotent_and_ids_are_stable() {
        let table = ContextTable::new(VirtualClock::shared());
        let a0 = table.register("a");
        let b = table.register("b");
        let a1 = table.register("a");
        assert_eq!(a0.id(), a1.id());
        assert!(Arc::ptr_eq(&a0, &a1));
        assert_ne!(a0.id(), b.id());
        assert_eq!(a0.key(), "a");
    }

    #[test]
    fn slot_handle_publish_is_visible_through_string_reads() {
        let table = ContextTable::new(VirtualClock::shared());
        let slot = table.register("k");
        slot.publish(vec![("a".into(), CtxValue::U64(9))]);
        assert!(table.is_ready("k"));
        assert_eq!(table.read("k").unwrap().get("a").unwrap().as_u64(), Some(9));
        assert_eq!(slot.snapshot().unwrap().version, 1);
    }

    #[test]
    fn concurrent_writers_on_distinct_slots_do_not_interfere() {
        let table = ContextTable::new(VirtualClock::shared());
        let slots: Vec<_> = (0..4).map(|i| table.register(&format!("s{i}"))).collect();
        std::thread::scope(|scope| {
            for slot in &slots {
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        slot.publish(vec![("i".into(), CtxValue::U64(i))]);
                    }
                });
            }
        });
        for slot in &slots {
            let snap = slot.snapshot().unwrap();
            assert_eq!(snap.version, 1000);
            assert_eq!(snap.get("i").unwrap().as_u64(), Some(999));
        }
    }

    #[test]
    fn baseline_table_matches_sharded_semantics() {
        let sharded = ContextTable::new(VirtualClock::shared());
        let base = baseline::BaselineContextTable::new(VirtualClock::shared());
        for t in [0u64, 1, 2] {
            sharded.publish("k", vec![("t".into(), CtxValue::U64(t))]);
            base.publish("k", vec![("t".into(), CtxValue::U64(t))]);
        }
        let (s, b) = (sharded.read("k").unwrap(), base.read("k").unwrap());
        assert_eq!(s.version, b.version);
        assert_eq!(s.get("t"), b.get("t"));
        assert!(base.is_ready("k") && sharded.is_ready("k"));
    }

    #[test]
    fn ctx_value_rendering() {
        assert_eq!(CtxValue::U64(5).render(), "5");
        assert_eq!(CtxValue::Str("x".into()).render(), "x");
        assert_eq!(CtxValue::Bytes(vec![0; 10]).render(), "<10 bytes>");
        assert_eq!(CtxValue::Bool(true).render(), "true");
        assert_eq!(CtxValue::F64(1.5).render(), "1.500");
    }
}
