//! Checker contexts and one-way state synchronization (paper §3.1).
//!
//! A concurrent checker must not report failures that do not exist in the
//! main program — the paper's example is a disk-flusher checker barking when
//! `kvs` is configured in-memory and no snapshot directory exists. The fix is
//! a **context** bound to each checker that supplies the payload and
//! arguments for the checking procedure, updated by **hooks** in the main
//! program. Synchronization is strictly **one-way**: the main program
//! publishes; checkers read.
//!
//! This module enforces the direction with types: a [`ContextTable`] hands
//! out write access only through [`hooks`](crate::hooks), while checkers get
//! a read-only [`ContextReader`]. Reads return a [`ContextSnapshot`] — a
//! deep copy — which is the paper's *context replication* isolation
//! mechanism (§5.1): a checker mutating its snapshot can never corrupt the
//! main program's data.
//!
//! # Sharded layout
//!
//! Contexts are stored as pre-registered, index-addressed [`ContextSlot`]s,
//! each with its own small mutex. A hook site calls
//! [`ContextTable::register`] once when it is created and caches the
//! returned `Arc<ContextSlot>`; every subsequent publish locks only that
//! slot. Two components publishing into different slots never contend, and
//! the hot path performs no key hashing and takes no table-wide lock. The
//! string-keyed [`ContextTable::publish`]/[`ContextTable::read`] API is
//! preserved as a convenience path that resolves the slot through a
//! read-mostly index map. The original single `RwLock<HashMap>` design is
//! retained in [`baseline`] purely so the overhead benchmark can measure the
//! sharded layout against it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

use wdog_base::clock::SharedClock;

/// A value stored in a context slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CtxValue {
    /// Unsigned integer (counters, sizes, offsets).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (rates, loads).
    F64(f64),
    /// Text (paths, keys, peer addresses).
    Str(String),
    /// Raw payload bytes (a record to write, a message to send).
    Bytes(Vec<u8>),
    /// Flag.
    Bool(bool),
}

impl CtxValue {
    /// Renders the value for inclusion in a failure report payload.
    pub fn render(&self) -> String {
        match self {
            CtxValue::U64(v) => v.to_string(),
            CtxValue::I64(v) => v.to_string(),
            CtxValue::F64(v) => format!("{v:.3}"),
            CtxValue::Str(s) => s.clone(),
            CtxValue::Bytes(b) => format!("<{} bytes>", b.len()),
            CtxValue::Bool(b) => b.to_string(),
        }
    }

    /// Returns the string if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            CtxValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer if this is a `U64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            CtxValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the bytes if this is a `Bytes`.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            CtxValue::Bytes(b) => Some(b),
            _ => None,
        }
    }
}

impl From<u64> for CtxValue {
    fn from(v: u64) -> Self {
        CtxValue::U64(v)
    }
}

impl From<&str> for CtxValue {
    fn from(v: &str) -> Self {
        CtxValue::Str(v.to_owned())
    }
}

impl From<String> for CtxValue {
    fn from(v: String) -> Self {
        CtxValue::Str(v)
    }
}

impl From<Vec<u8>> for CtxValue {
    fn from(v: Vec<u8>) -> Self {
        CtxValue::Bytes(v)
    }
}

impl From<bool> for CtxValue {
    fn from(v: bool) -> Self {
        CtxValue::Bool(v)
    }
}

/// A deep-copied view of one context slot at read time.
///
/// Mutating a snapshot has no effect on the table — this is the context
/// replication isolation boundary.
#[derive(Debug, Clone)]
pub struct ContextSnapshot {
    /// Field name → value, copied at read time.
    pub fields: HashMap<String, CtxValue>,
    /// Monotonic per-slot version; bumps on every publish.
    pub version: u64,
    /// How old the slot was at read time.
    pub age: Duration,
}

impl ContextSnapshot {
    /// Looks up one field.
    pub fn get(&self, name: &str) -> Option<&CtxValue> {
        self.fields.get(name)
    }

    /// Renders all fields for a failure-report payload, sorted by name.
    pub fn render_payload(&self) -> Vec<(String, String)> {
        let mut v: Vec<(String, String)> = self
            .fields
            .iter()
            .map(|(k, val)| (k.clone(), val.render()))
            .collect();
        v.sort();
        v
    }
}

/// Mutable slot contents, guarded by the per-slot mutex.
#[derive(Debug, Default)]
struct SlotState {
    fields: HashMap<String, CtxValue>,
    updated_at: Duration,
}

/// One pre-registered context slot with its own lock.
///
/// Hook sites hold an `Arc<ContextSlot>` resolved once at site creation, so
/// the publish hot path is: one relaxed enable check (in the hook), one
/// per-slot mutex, one field merge. The `version` counter doubles as the
/// "ever published" flag (0 = registered but empty) and is readable without
/// the lock.
pub struct ContextSlot {
    key: String,
    id: usize,
    clock: SharedClock,
    version: AtomicU64,
    state: Mutex<SlotState>,
}

impl ContextSlot {
    fn new(key: String, id: usize, clock: SharedClock) -> Self {
        Self {
            key,
            id,
            clock,
            version: AtomicU64::new(0),
            state: Mutex::new(SlotState::default()),
        }
    }

    /// Returns the context key this slot stores.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Returns the slot's registration index (stable for the table's life).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Publishes fields, replacing same-named fields and bumping the slot
    /// version. Called from main-program hook sites; locks only this slot.
    pub fn publish(&self, fields: Vec<(String, CtxValue)>) {
        let now = self.clock.now();
        let mut state = self.state.lock();
        for (k, v) in fields {
            state.fields.insert(k, v);
        }
        state.updated_at = now;
        // Bumped under the lock so locked readers see version and fields
        // move together; lock-free peeks only need Acquire/Release.
        self.version.fetch_add(1, Ordering::AcqRel);
    }

    /// Reads a deep copy, or `None` if nothing was ever published.
    pub fn snapshot(&self) -> Option<ContextSnapshot> {
        if self.version.load(Ordering::Acquire) == 0 {
            return None;
        }
        let now = self.clock.now();
        let state = self.state.lock();
        let snap = ContextSnapshot {
            fields: state.fields.clone(),
            version: self.version.load(Ordering::Acquire),
            age: now.saturating_sub(state.updated_at),
        };
        Some(snap)
    }

    /// Returns the current version without locking (0 = never published).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Returns `true` once the slot has been published at least once.
    pub fn is_ready(&self) -> bool {
        self.version() > 0
    }
}

impl std::fmt::Debug for ContextSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContextSlot")
            .field("key", &self.key)
            .field("id", &self.id)
            .field("version", &self.version())
            .finish()
    }
}

/// The table of all checker contexts inside one watchdog.
///
/// Keys are free-form strings; by convention the generated watchdogs use the
/// reduced function's name (e.g. `"serialize_snapshot"`). Writes happen only
/// through [`ContextTable::publish`] or a registered [`ContextSlot`], which
/// the hook machinery calls from the main program's threads; checkers hold a
/// [`ContextReader`]. The key → slot index is touched only at registration
/// and string-keyed lookup, never on a slot-handle publish.
pub struct ContextTable {
    clock: SharedClock,
    index: RwLock<HashMap<String, Arc<ContextSlot>>>,
}

impl ContextTable {
    /// Creates an empty table on the given clock.
    pub fn new(clock: SharedClock) -> Arc<Self> {
        Arc::new(Self {
            clock,
            index: RwLock::new(HashMap::new()),
        })
    }

    /// Registers (or finds) the slot for `key`, returning a handle that
    /// publishes without consulting the table again. Hook sites call this
    /// once at creation and cache the handle.
    pub fn register(&self, key: &str) -> Arc<ContextSlot> {
        if let Some(slot) = self.index.read().get(key) {
            return Arc::clone(slot);
        }
        let mut index = self.index.write();
        if let Some(slot) = index.get(key) {
            return Arc::clone(slot);
        }
        let slot = Arc::new(ContextSlot::new(
            key.to_owned(),
            index.len(),
            self.clock.clone(),
        ));
        index.insert(key.to_owned(), Arc::clone(&slot));
        slot
    }

    /// Looks up the slot for `key` without creating it.
    pub fn slot(&self, key: &str) -> Option<Arc<ContextSlot>> {
        self.index.read().get(key).map(Arc::clone)
    }

    /// Publishes fields into a slot, replacing same-named fields and bumping
    /// the slot version. String-keyed convenience path; hot code should
    /// publish through a registered [`ContextSlot`] instead.
    pub fn publish(&self, key: &str, fields: Vec<(String, CtxValue)>) {
        self.register(key).publish(fields);
    }

    /// Reads a deep copy of a slot, or `None` if it was never published.
    pub fn read(&self, key: &str) -> Option<ContextSnapshot> {
        self.slot(key).and_then(|s| s.snapshot())
    }

    /// Returns `true` if the slot has been published — the paper's "context
    /// ready" test. Registered-but-empty slots are not ready.
    pub fn is_ready(&self, key: &str) -> bool {
        self.slot(key).is_some_and(|s| s.is_ready())
    }

    /// Returns the keys of all published slots, sorted.
    pub fn keys(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .index
            .read()
            .values()
            .filter(|s| s.is_ready())
            .map(|s| s.key().to_owned())
            .collect();
        v.sort();
        v
    }

    /// Creates a read-only handle for checkers.
    pub fn reader(self: &Arc<Self>) -> ContextReader {
        ContextReader {
            table: Arc::clone(self),
        }
    }
}

impl std::fmt::Debug for ContextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContextTable")
            .field("slots", &self.keys())
            .finish()
    }
}

/// Read-only access to a [`ContextTable`], handed to checkers.
#[derive(Clone)]
pub struct ContextReader {
    table: Arc<ContextTable>,
}

impl ContextReader {
    /// Reads a deep copy of a slot; see [`ContextTable::read`].
    pub fn read(&self, key: &str) -> Option<ContextSnapshot> {
        self.table.read(key)
    }

    /// Returns `true` if the slot has been published at least once.
    pub fn is_ready(&self, key: &str) -> bool {
        self.table.is_ready(key)
    }
}

impl std::fmt::Debug for ContextReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ContextReader")
    }
}

pub mod baseline {
    //! The pre-sharding context table: one `RwLock<HashMap>` for everything.
    //!
    //! Every publish from any component serializes on the same write lock
    //! and re-hashes its key. Kept only as the comparison point for
    //! `bench/benches/overhead.rs`; production code uses the sharded
    //! [`ContextTable`](super::ContextTable).

    use super::*;

    #[derive(Debug, Clone, Default)]
    struct Slot {
        fields: HashMap<String, CtxValue>,
        version: u64,
        updated_at: Duration,
    }

    /// Single-lock context table retained for benchmarking.
    pub struct BaselineContextTable {
        clock: SharedClock,
        slots: RwLock<HashMap<String, Slot>>,
    }

    impl BaselineContextTable {
        /// Creates an empty table on the given clock.
        pub fn new(clock: SharedClock) -> Arc<Self> {
            Arc::new(Self {
                clock,
                slots: RwLock::new(HashMap::new()),
            })
        }

        /// Publishes fields under the table-wide write lock.
        pub fn publish(&self, key: &str, fields: Vec<(String, CtxValue)>) {
            let now = self.clock.now();
            let mut slots = self.slots.write();
            let slot = slots.entry(key.to_owned()).or_default();
            for (k, v) in fields {
                slot.fields.insert(k, v);
            }
            slot.version += 1;
            slot.updated_at = now;
        }

        /// Reads a deep copy under the table-wide read lock.
        pub fn read(&self, key: &str) -> Option<ContextSnapshot> {
            let now = self.clock.now();
            let slots = self.slots.read();
            slots.get(key).map(|s| ContextSnapshot {
                fields: s.fields.clone(),
                version: s.version,
                age: now.saturating_sub(s.updated_at),
            })
        }

        /// Returns `true` if the slot exists.
        pub fn is_ready(&self, key: &str) -> bool {
            self.slots.read().contains_key(key)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdog_base::clock::VirtualClock;

    #[test]
    fn unpublished_slot_is_not_ready() {
        let table = ContextTable::new(VirtualClock::shared());
        assert!(!table.is_ready("x"));
        assert!(table.read("x").is_none());
    }

    #[test]
    fn registered_but_unpublished_slot_is_not_ready() {
        let table = ContextTable::new(VirtualClock::shared());
        let slot = table.register("x");
        assert!(!slot.is_ready());
        assert!(!table.is_ready("x"));
        assert!(table.read("x").is_none());
        assert!(table.keys().is_empty());
    }

    #[test]
    fn publish_then_read_roundtrip() {
        let table = ContextTable::new(VirtualClock::shared());
        table.publish(
            "flush",
            vec![
                ("path".into(), "wal/0".into()),
                ("len".into(), CtxValue::U64(42)),
            ],
        );
        let snap = table.read("flush").unwrap();
        assert_eq!(snap.get("path").unwrap().as_str(), Some("wal/0"));
        assert_eq!(snap.get("len").unwrap().as_u64(), Some(42));
        assert_eq!(snap.version, 1);
    }

    #[test]
    fn versions_bump_on_each_publish() {
        let table = ContextTable::new(VirtualClock::shared());
        for i in 0..5u64 {
            table.publish("k", vec![("i".into(), CtxValue::U64(i))]);
        }
        let snap = table.read("k").unwrap();
        assert_eq!(snap.version, 5);
        assert_eq!(snap.get("i").unwrap().as_u64(), Some(4));
    }

    #[test]
    fn age_tracks_clock() {
        let clock = VirtualClock::shared();
        let table = ContextTable::new(clock.clone());
        table.publish("k", vec![("a".into(), CtxValue::Bool(true))]);
        clock.advance(Duration::from_secs(3));
        let snap = table.read("k").unwrap();
        assert_eq!(snap.age, Duration::from_secs(3));
    }

    #[test]
    fn snapshots_are_deep_copies() {
        let table = ContextTable::new(VirtualClock::shared());
        table.publish("k", vec![("buf".into(), CtxValue::Bytes(vec![1, 2, 3]))]);
        let mut snap = table.read("k").unwrap();
        // Mutate the snapshot; the table must be unaffected.
        snap.fields.insert("buf".into(), CtxValue::Bytes(vec![9]));
        let again = table.read("k").unwrap();
        assert_eq!(again.get("buf").unwrap().as_bytes(), Some(&[1u8, 2, 3][..]));
    }

    #[test]
    fn partial_publish_merges_fields() {
        let table = ContextTable::new(VirtualClock::shared());
        table.publish("k", vec![("a".into(), CtxValue::U64(1))]);
        table.publish("k", vec![("b".into(), CtxValue::U64(2))]);
        let snap = table.read("k").unwrap();
        assert_eq!(snap.fields.len(), 2);
    }

    #[test]
    fn render_payload_is_sorted() {
        let table = ContextTable::new(VirtualClock::shared());
        table.publish(
            "k",
            vec![
                ("z".into(), CtxValue::U64(1)),
                ("a".into(), CtxValue::Bool(false)),
            ],
        );
        let payload = table.read("k").unwrap().render_payload();
        assert_eq!(payload[0].0, "a");
        assert_eq!(payload[1].0, "z");
    }

    #[test]
    fn reader_is_read_only_view() {
        let table = ContextTable::new(VirtualClock::shared());
        let reader = table.reader();
        assert!(!reader.is_ready("k"));
        table.publish("k", vec![("a".into(), CtxValue::U64(7))]);
        assert!(reader.is_ready("k"));
        assert_eq!(
            reader.read("k").unwrap().get("a").unwrap().as_u64(),
            Some(7)
        );
    }

    #[test]
    fn register_is_idempotent_and_ids_are_stable() {
        let table = ContextTable::new(VirtualClock::shared());
        let a0 = table.register("a");
        let b = table.register("b");
        let a1 = table.register("a");
        assert_eq!(a0.id(), a1.id());
        assert!(Arc::ptr_eq(&a0, &a1));
        assert_ne!(a0.id(), b.id());
        assert_eq!(a0.key(), "a");
    }

    #[test]
    fn slot_handle_publish_is_visible_through_string_reads() {
        let table = ContextTable::new(VirtualClock::shared());
        let slot = table.register("k");
        slot.publish(vec![("a".into(), CtxValue::U64(9))]);
        assert!(table.is_ready("k"));
        assert_eq!(table.read("k").unwrap().get("a").unwrap().as_u64(), Some(9));
        assert_eq!(slot.snapshot().unwrap().version, 1);
    }

    #[test]
    fn concurrent_writers_on_distinct_slots_do_not_interfere() {
        let table = ContextTable::new(VirtualClock::shared());
        let slots: Vec<_> = (0..4).map(|i| table.register(&format!("s{i}"))).collect();
        std::thread::scope(|scope| {
            for slot in &slots {
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        slot.publish(vec![("i".into(), CtxValue::U64(i))]);
                    }
                });
            }
        });
        for slot in &slots {
            let snap = slot.snapshot().unwrap();
            assert_eq!(snap.version, 1000);
            assert_eq!(snap.get("i").unwrap().as_u64(), Some(999));
        }
    }

    #[test]
    fn baseline_table_matches_sharded_semantics() {
        let sharded = ContextTable::new(VirtualClock::shared());
        let base = baseline::BaselineContextTable::new(VirtualClock::shared());
        for t in [0u64, 1, 2] {
            sharded.publish("k", vec![("t".into(), CtxValue::U64(t))]);
            base.publish("k", vec![("t".into(), CtxValue::U64(t))]);
        }
        let (s, b) = (sharded.read("k").unwrap(), base.read("k").unwrap());
        assert_eq!(s.version, b.version);
        assert_eq!(s.get("t"), b.get("t"));
        assert!(base.is_ready("k") && sharded.is_ready("k"));
    }

    #[test]
    fn ctx_value_rendering() {
        assert_eq!(CtxValue::U64(5).render(), "5");
        assert_eq!(CtxValue::Str("x".into()).render(), "x");
        assert_eq!(CtxValue::Bytes(vec![0; 10]).render(), "<10 bytes>");
        assert_eq!(CtxValue::Bool(true).render(), "true");
        assert_eq!(CtxValue::F64(1.5).render(), "1.500");
    }
}
