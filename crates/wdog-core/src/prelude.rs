//! The supported public surface, re-exported flat.
//!
//! Targets, the harness, and downstream users should import from here
//! (`use wdog_core::prelude::*;`) instead of deep module paths — the
//! prelude is the API contract this crate maintains, and an API-surface
//! golden test (`tests/api_surface.rs`) snapshots every identifier exported
//! below so accidental drift fails CI instead of rippling through callers.
//!
//! Recovery types live downstream in `wdog-recover` (it depends on this
//! crate, so they cannot be re-exported here without a cycle); use
//! `wdog_recover::prelude` alongside this one.

pub use crate::action::{
    Action, CallbackAction, Degradable, EscalatingAction, GateCounters, ImpactGatedAction,
    LogAction, RestartAction, RestartCounters, Restartable,
};
pub use crate::checker::{CheckFailure, CheckStatus, Checker, ExecutionProbe, FnChecker};
pub use crate::context::{
    ContextReader, ContextSlot, ContextSnapshot, ContextTable, CtxValue, PublishGuard,
};
pub use crate::driver::{
    CheckerFactory, DriverBuilder, DriverStats, WatchdogConfig, WatchdogDriver,
};
pub use crate::hooks::{FireGuard, HookSite, Hooks};
pub use crate::isolation::{Budget, IoRedirect};
pub use crate::policy::SchedulePolicy;
pub use crate::report::{FailureKind, FailureReport, FaultLocation};
pub use crate::status::{ComponentHealth, HealthBoard};
pub use crate::trace::{TraceEvent, TraceEventKind, TraceRecorder};
pub use crate::wd_hook;
pub use crate::wdt::{WatchdogTimer, WdtCounters};

pub use wdog_base::clock::{Clock, RealClock, SharedClock, VirtualClock};
pub use wdog_base::error::{BaseError, BaseResult};
pub use wdog_base::ids::{CheckerId, ComponentId};

pub use wdog_telemetry::{
    AtomicHistogram, Counter, DetectionSample, FlightEvent, Gauge, HistogramSummary,
    TelemetryRegistry, TelemetrySnapshot,
};
