//! A classic multi-stage watchdog timer (paper §2, the hardware heritage).
//!
//! "WDTs use internal counters that start from an initial value and count
//! down to zero. When the counter reaches zero, the watchdog resets the
//! processor. In a multi-stage watchdog, it will initiate a series of
//! actions upon timeout, such as generating an interrupt, activating
//! fail-safe states, logging debug information and resetting the
//! processor. To prevent a reset, the software must keep 'kicking' the
//! watchdog."
//!
//! [`WatchdogTimer`] is that primitive, software-shaped: the monitored
//! program calls [`WatchdogTimer::kick`] from its main loop (ideally after
//! its own sanity checks, as §2 recommends); if kicks stop, escalation
//! stages fire in order at multiples of the timeout. A kick at any point
//! resets the counter *and* the stage ladder.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use wdog_base::clock::SharedClock;

/// One escalation stage: fired when the timer expires `index + 1` times
/// without a kick.
pub type Stage = Box<dyn FnMut() + Send>;

/// Named counters for a [`WatchdogTimer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WdtCounters {
    /// Kicks received from the monitored program.
    pub kicks: u64,
    /// Escalation stages fired.
    pub expiries: u64,
}

struct TimerInner {
    last_kick: AtomicU64,
    kicks: AtomicU64,
    expiries: AtomicU64,
    running: AtomicBool,
}

/// A multi-stage countdown watchdog timer.
pub struct WatchdogTimer {
    inner: Arc<TimerInner>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl WatchdogTimer {
    /// Starts a timer with the given timeout and escalation stages.
    ///
    /// Stage `k` fires once when the time since the last kick crosses
    /// `(k + 1) * timeout`. A kick resets the ladder; stages can then fire
    /// again on the next expiry episode. The final stage conventionally
    /// performs the reset/abort.
    pub fn start(clock: SharedClock, timeout: Duration, stages: Vec<Stage>) -> Self {
        let inner = Arc::new(TimerInner {
            last_kick: AtomicU64::new(clock.now().as_millis() as u64),
            kicks: AtomicU64::new(0),
            expiries: AtomicU64::new(0),
            running: AtomicBool::new(true),
        });
        let thread_inner = Arc::clone(&inner);
        let stages = Mutex::new(stages);
        let timeout_ms = timeout.as_millis().max(1) as u64;
        let loop_clock = Arc::clone(&clock);
        let thread = wdog_base::clock::spawn_on(&clock, "wdt", move || {
            let clock = loop_clock;
            let mut fired: usize = 0;
            let mut last_seen_kick = thread_inner.last_kick.load(Ordering::Relaxed);
            while thread_inner.running.load(Ordering::Relaxed) {
                clock.sleep(Duration::from_millis((timeout_ms / 4).max(1)));
                let kick = thread_inner.last_kick.load(Ordering::Relaxed);
                if kick != last_seen_kick {
                    // Kicked since we last looked: reset the ladder.
                    last_seen_kick = kick;
                    fired = 0;
                    continue;
                }
                let now = clock.now().as_millis() as u64;
                let elapsed = now.saturating_sub(kick);
                let due = (elapsed / timeout_ms) as usize;
                let mut stages = stages.lock();
                while fired < due && fired < stages.len() {
                    (stages[fired])();
                    fired += 1;
                    thread_inner.expiries.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        Self {
            inner,
            thread: Some(thread),
        }
    }

    /// Resets the countdown; call from the monitored main loop.
    ///
    /// The timestamp must come from the same clock the timer runs on, so
    /// kick takes it implicitly by storing a monotonically bumped marker —
    /// the runner thread reads the wall offset itself.
    pub fn kick(&self, clock: &dyn wdog_base::clock::Clock) {
        self.inner
            .last_kick
            .store(clock.now().as_millis() as u64, Ordering::Relaxed);
        self.inner.kicks.fetch_add(1, Ordering::Relaxed);
    }

    /// Returns the kick / stage-firing counters so far.
    pub fn counters(&self) -> WdtCounters {
        WdtCounters {
            kicks: self.inner.kicks.load(Ordering::Relaxed),
            expiries: self.inner.expiries.load(Ordering::Relaxed),
        }
    }

    /// Stops the timer thread.
    pub fn stop(&mut self) {
        self.inner.running.store(false, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for WatchdogTimer {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for WatchdogTimer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = self.counters();
        f.debug_struct("WatchdogTimer")
            .field("kicks", &c.kicks)
            .field("expiries", &c.expiries)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdog_base::clock::RealClock;

    fn stage(flag: &Arc<AtomicU64>) -> Stage {
        let f = Arc::clone(flag);
        Box::new(move || {
            f.fetch_add(1, Ordering::Relaxed);
        })
    }

    #[test]
    fn kicked_timer_never_fires() {
        let clock = RealClock::shared();
        let fired = Arc::new(AtomicU64::new(0));
        let mut wdt = WatchdogTimer::start(
            Arc::clone(&clock),
            Duration::from_millis(50),
            vec![stage(&fired)],
        );
        for _ in 0..10 {
            wdt.kick(clock.as_ref());
            std::thread::sleep(Duration::from_millis(20));
        }
        wdt.stop();
        assert_eq!(fired.load(Ordering::Relaxed), 0);
        assert_eq!(wdt.counters().kicks, 10);
    }

    #[test]
    fn silent_program_escalates_through_stages_in_order() {
        let clock = RealClock::shared();
        let log = Arc::new(Mutex::new(Vec::new()));
        let s = |name: &'static str| -> Stage {
            let log = Arc::clone(&log);
            Box::new(move || log.lock().push(name))
        };
        let mut wdt = WatchdogTimer::start(
            Arc::clone(&clock),
            Duration::from_millis(40),
            vec![s("interrupt"), s("fail-safe"), s("reset")],
        );
        std::thread::sleep(Duration::from_millis(250));
        wdt.stop();
        assert_eq!(*log.lock(), vec!["interrupt", "fail-safe", "reset"]);
    }

    #[test]
    fn kick_resets_the_ladder() {
        let clock = RealClock::shared();
        let fired = Arc::new(AtomicU64::new(0));
        let mut wdt = WatchdogTimer::start(
            Arc::clone(&clock),
            Duration::from_millis(40),
            vec![stage(&fired), stage(&fired)],
        );
        // Let the first stage fire, then kick before the second.
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(fired.load(Ordering::Relaxed), 1);
        wdt.kick(clock.as_ref());
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(fired.load(Ordering::Relaxed), 1, "ladder did not reset");
        // Going silent again re-fires from stage one.
        std::thread::sleep(Duration::from_millis(80));
        wdt.stop();
        assert!(fired.load(Ordering::Relaxed) >= 2);
    }
}
