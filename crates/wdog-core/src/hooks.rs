//! Watchdog hooks: how the main program feeds state to checker contexts.
//!
//! Hooks are the instrumentation points AutoWatchdog inserts into the main
//! program (paper Figure 2, line 28: a `ContextFactory...args_setter` call
//! placed right before the vulnerable operation). When execution reaches a
//! hook, the current program state is published into the watchdog's
//! [`ContextTable`].
//!
//! Two properties matter:
//!
//! 1. **One-way**: hooks only write; nothing flows back into the main
//!    program, so hooks cannot alter main execution (§3.1).
//! 2. **Cheap**: when the watchdog is disabled a hook is one relaxed atomic
//!    load — [`HookSite::fire`] returns `None` and the field expressions are
//!    never evaluated. An enabled fire writes through a [`FireGuard`]
//!    straight into the site's context stripe: no closure, no `Vec`, no
//!    field-map allocation. Experiment E5 and `wdog-load` measure this.
//!
//! # The armed path
//!
//! With telemetry attached, each fire additionally costs one *uncontended*
//! relaxed `fetch_add` on a lane-striped fire buffer
//! ([`wdog_telemetry::FireLanes`]), and every 64th fire per lane times its
//! own publish. Nothing shared is touched per fire; the driver folds the
//! lane deltas into the registry's counters and histograms on an epoch tick
//! (and every snapshot flushes first), so `hook_fires_total`/`hook_fire_ns`
//! stay exact while the hot path stays allocation- and contention-free.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use wdog_base::lane::LaneCounter;
use wdog_telemetry::{FireLanes, LaneFlusher, TelemetryRegistry};

use crate::context::{ContextSlot, ContextTable, CtxValue, PublishGuard};
use crate::trace::TraceRecorder;

/// Fires between timed fires: every 64th enabled fire *per lane* measures
/// its own publish latency, so sampling overhead stays off the steady-state
/// path.
const FIRE_SAMPLE_MASK: u64 = 63;

/// Telemetry attachment shared by every site of one [`Hooks`] instance.
///
/// Hooks are created when the instrumented program boots — *before* any
/// watchdog (and its registry) exists — so attachment is post-hoc: the
/// `armed` flag is flipped only after the registry is stored, and the
/// un-armed fire path reads exactly one extra relaxed atomic.
#[derive(Default)]
struct HookTelemetry {
    armed: AtomicBool,
    registry: Mutex<Option<Arc<TelemetryRegistry>>>,
}

/// Trace attachment shared by every site of one [`Hooks`] instance.
///
/// Same post-hoc arming discipline as [`HookTelemetry`]: the recorder is a
/// test-time accessory, so the un-armed fire path pays one extra relaxed
/// atomic load and nothing else. Armed fires clone their fields into the
/// recorder's journal for `wdog-infer` to mine.
#[derive(Default)]
struct HookTrace {
    armed: AtomicBool,
    recorder: Mutex<Option<Arc<TraceRecorder>>>,
}

/// Per-site fire lanes, resolved lazily on the first armed fire. The
/// matching [`LaneFlusher`] is registered with the registry as an epoch
/// source at the same moment.
struct SiteStats {
    lanes: Arc<FireLanes>,
}

/// Shared hook infrastructure for one instrumented program.
///
/// Cloneable and cheap to pass around; all clones share the enable flag and
/// the context table.
#[derive(Clone)]
pub struct Hooks {
    table: Arc<ContextTable>,
    enabled: Arc<AtomicBool>,
    fired: Arc<LaneCounter>,
    telemetry: Arc<HookTelemetry>,
    trace: Arc<HookTrace>,
}

impl Hooks {
    /// Creates hook infrastructure publishing into `table`, initially enabled.
    pub fn new(table: Arc<ContextTable>) -> Self {
        Self {
            table,
            enabled: Arc::new(AtomicBool::new(true)),
            fired: Arc::new(LaneCounter::new()),
            telemetry: Arc::new(HookTelemetry::default()),
            trace: Arc::new(HookTrace::default()),
        }
    }

    /// Arms per-site fire counting and sampled fire-latency recording.
    ///
    /// Every site created from this instance (before or after this call)
    /// starts reporting `hook_fires_total` and `hook_fire_ns` into
    /// `registry`, keyed by its context key. Until this is called, firing a
    /// site costs one extra relaxed atomic load over the pre-telemetry path.
    pub fn attach_telemetry(&self, registry: Arc<TelemetryRegistry>) {
        *self.telemetry.registry.lock() = Some(registry);
        self.telemetry.armed.store(true, Ordering::Release);
    }

    /// Returns whether a telemetry registry is attached.
    pub fn telemetry_attached(&self) -> bool {
        self.telemetry.armed.load(Ordering::Relaxed)
    }

    /// Arms trace recording: every subsequent enabled fire from any site of
    /// this instance journals its key and fields into `recorder`.
    ///
    /// Recording is a test-time mode for `wdog-infer`; until this is called
    /// a fire costs one extra relaxed atomic load over the pre-trace path.
    pub fn attach_trace(&self, recorder: Arc<TraceRecorder>) {
        *self.trace.recorder.lock() = Some(recorder);
        self.trace.armed.store(true, Ordering::Release);
    }

    /// Disarms trace recording; the recorder keeps whatever it journaled.
    pub fn detach_trace(&self) {
        self.trace.armed.store(false, Ordering::Release);
        *self.trace.recorder.lock() = None;
    }

    /// Returns whether a trace recorder is attached.
    pub fn trace_attached(&self) -> bool {
        self.trace.armed.load(Ordering::Relaxed)
    }

    /// Enables or disables every hook site created from this instance.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Returns whether hooks are currently enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Returns how many hook firings actually published state.
    pub fn fired_count(&self) -> u64 {
        self.fired.sum()
    }

    /// Creates a hook site that publishes into the context slot `key`.
    ///
    /// The slot is registered and resolved here, once; firing the site never
    /// consults the table's key index again.
    pub fn site(&self, key: impl Into<String>) -> HookSite {
        let key = key.into();
        HookSite {
            slot: self.table.register(&key),
            hooks: self.clone(),
            stats: Arc::new(OnceLock::new()),
        }
    }

    /// Returns the context table hooks publish into.
    pub fn table(&self) -> &Arc<ContextTable> {
        &self.table
    }
}

impl std::fmt::Debug for Hooks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hooks")
            .field("enabled", &self.is_enabled())
            .field("fired", &self.fired_count())
            .finish()
    }
}

/// One instrumentation point in the main program.
///
/// # Examples
///
/// ```
/// use wdog_core::context::ContextTable;
/// use wdog_core::hooks::Hooks;
/// use wdog_base::clock::RealClock;
///
/// let table = ContextTable::new(RealClock::shared());
/// let hooks = Hooks::new(table.clone());
/// let site = hooks.site("serialize_snapshot");
///
/// // In the main program, just before the vulnerable operation:
/// if let Some(mut fire) = site.fire() {
///     fire.field("node_path", "/a/b");
/// }
///
/// assert!(table.is_ready("serialize_snapshot"));
/// ```
#[derive(Clone)]
pub struct HookSite {
    slot: Arc<ContextSlot>,
    hooks: Hooks,
    /// Lazily resolved fire lanes; shared by clones of this site.
    stats: Arc<OnceLock<SiteStats>>,
}

impl HookSite {
    /// Opens a fire, or returns `None` while hooks are disabled.
    ///
    /// `None` short-circuits field capture entirely — in the
    /// `if let Some(mut fire) = site.fire()` idiom (what [`wd_hook!`]
    /// expands to) the field expressions are never evaluated, so a disabled
    /// hook still costs one relaxed load. An open [`FireGuard`] writes each
    /// field straight into the site's context stripe and completes the
    /// publish when dropped.
    ///
    /// [`wd_hook!`]: crate::wd_hook
    #[inline]
    pub fn fire(&self) -> Option<FireGuard<'_>> {
        if !self.hooks.enabled.load(Ordering::Relaxed) {
            return None;
        }
        let mut timing = None;
        if self.hooks.telemetry.armed.load(Ordering::Relaxed) {
            if let Some(stats) = self.stats() {
                let n = stats.lanes.fire();
                if n & FIRE_SAMPLE_MASK == 0 {
                    timing = Some((std::time::Instant::now(), Arc::clone(&stats.lanes)));
                }
            }
        }
        let mut capture = None;
        if self.hooks.trace.armed.load(Ordering::Relaxed) {
            // Arming may win the race against the recorder store; fire
            // unrecorded until the recorder is visible.
            if let Some(recorder) = self.hooks.trace.recorder.lock().clone() {
                capture = Some(TraceCapture {
                    recorder,
                    key: self.slot.key().to_owned(),
                    fields: Vec::new(),
                });
            }
        }
        Some(FireGuard {
            publish: Some(self.slot.begin_publish()),
            fired: &self.hooks.fired,
            timing,
            capture,
        })
    }

    /// Fires with exactly one field: sugar for the single-field sites that
    /// dominate the instrumented programs.
    #[inline]
    pub fn fire_kv(&self, name: &str, value: impl Into<CtxValue>) {
        if let Some(mut fire) = self.fire() {
            fire.field(name, value);
        }
    }

    /// Resolves the per-site fire lanes, registering their epoch flusher
    /// with the attached registry on first use.
    fn stats(&self) -> Option<&SiteStats> {
        if let Some(stats) = self.stats.get() {
            return Some(stats);
        }
        // Armed flag may win the race against the registry store; fire
        // uninstrumented until the registry is visible.
        let registry = self.hooks.telemetry.registry.lock().clone()?;
        let lanes = Arc::new(FireLanes::new());
        let flusher = LaneFlusher::new(
            Arc::clone(&lanes),
            registry.counter("hook_fires_total", self.key()),
            registry.histogram("hook_fire_ns", self.key()),
        );
        if self.stats.set(SiteStats { lanes }).is_ok() {
            registry.register_epoch_source(Arc::new(flusher));
        }
        self.stats.get()
    }

    /// Returns the context key this site publishes to.
    pub fn key(&self) -> &str {
        self.slot.key()
    }

    /// Returns the cached slot handle this site publishes through.
    pub fn slot(&self) -> &Arc<ContextSlot> {
        &self.slot
    }
}

impl std::fmt::Debug for HookSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HookSite")
            .field("key", &self.key())
            .finish()
    }
}

/// Field capture for an armed trace: the clones a [`FireGuard`] accumulates
/// before handing them to the recorder on drop.
struct TraceCapture {
    recorder: Arc<TraceRecorder>,
    key: String,
    fields: Vec<(String, CtxValue)>,
}

/// An open hook fire: writes fields directly into the site's context stripe
/// and completes the publish (version bump, freshness stamp, fire
/// accounting) when dropped.
///
/// Created by [`HookSite::fire`]; the zero-alloc replacement for the old
/// closure-built `Vec<(String, CtxValue)>` fire shape.
pub struct FireGuard<'a> {
    /// `Some` until drop; taken there so the publish completes before the
    /// sampled timing is recorded (the sample covers the whole publish).
    publish: Option<PublishGuard<'a>>,
    fired: &'a LaneCounter,
    timing: Option<(std::time::Instant, Arc<FireLanes>)>,
    /// `Some` while a trace recorder is armed: field clones to journal.
    capture: Option<TraceCapture>,
}

impl FireGuard<'_> {
    /// Sets one context field, replacing a same-named field in place.
    #[inline]
    pub fn field(&mut self, name: &str, value: impl Into<CtxValue>) -> &mut Self {
        let value = value.into();
        if let Some(cap) = self.capture.as_mut() {
            cap.fields.push((name.to_owned(), value.clone()));
        }
        self.publish
            .as_mut()
            .expect("publish guard live until drop")
            .set(name, value);
        self
    }
}

impl Drop for FireGuard<'_> {
    fn drop(&mut self) {
        drop(self.publish.take());
        self.fired.add(1);
        if let Some((t0, lanes)) = self.timing.take() {
            lanes.record_ns(t0.elapsed().as_nanos() as u64);
        }
        // Journal after the publish completed so the event order matches
        // what a checker could actually have observed.
        if let Some(cap) = self.capture.take() {
            cap.recorder.record_publish(&cap.key, cap.fields);
        }
    }
}

impl std::fmt::Debug for FireGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FireGuard")
    }
}

/// Publishes fields through a [`HookSite`] with struct-literal syntax.
///
/// Expands to the [`HookSite::fire`] guard idiom: when hooks are disabled
/// the guard is `None` and none of the value expressions run.
///
/// # Examples
///
/// ```
/// use wdog_core::{context::ContextTable, hooks::Hooks, wd_hook};
/// use wdog_base::clock::RealClock;
///
/// let table = ContextTable::new(RealClock::shared());
/// let hooks = Hooks::new(table.clone());
/// let site = hooks.site("compact");
/// let level = 2u64;
/// wd_hook!(site, { "level" => level, "input" => "sst/5" });
/// assert_eq!(
///     table.read("compact").unwrap().get("level").unwrap().as_u64(),
///     Some(2),
/// );
/// ```
#[macro_export]
macro_rules! wd_hook {
    ($site:expr, { $($name:literal => $value:expr),* $(,)? }) => {
        if let Some(mut fire) = $site.fire() {
            $(fire.field($name, $crate::context::CtxValue::from($value));)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdog_base::clock::VirtualClock;

    fn setup() -> (Arc<ContextTable>, Hooks) {
        let table = ContextTable::new(VirtualClock::shared());
        let hooks = Hooks::new(Arc::clone(&table));
        (table, hooks)
    }

    #[test]
    fn fire_publishes_fields() {
        let (table, hooks) = setup();
        let site = hooks.site("k");
        if let Some(mut fire) = site.fire() {
            fire.field("a", 1u64);
        }
        assert_eq!(table.read("k").unwrap().get("a").unwrap().as_u64(), Some(1));
        assert_eq!(hooks.fired_count(), 1);
    }

    #[test]
    fn disabled_hooks_do_not_publish_or_evaluate() {
        let (table, hooks) = setup();
        let site = hooks.site("k");
        hooks.set_enabled(false);
        let mut evaluated = false;
        wd_hook!(site, { "a" => { evaluated = true; 1u64 } });
        assert!(!evaluated, "field expression ran while disabled");
        assert!(!table.is_ready("k"));
        assert_eq!(hooks.fired_count(), 0);
    }

    #[test]
    fn reenabling_restores_publishing() {
        let (table, hooks) = setup();
        let site = hooks.site("k");
        hooks.set_enabled(false);
        hooks.set_enabled(true);
        site.fire_kv("a", true);
        assert!(table.is_ready("k"));
    }

    #[test]
    fn sites_share_the_enable_flag() {
        let (_, hooks) = setup();
        let a = hooks.site("a");
        let b = hooks.site("b");
        hooks.set_enabled(false);
        a.fire();
        b.fire();
        assert_eq!(hooks.fired_count(), 0);
    }

    #[test]
    fn bare_fire_publishes_an_empty_context() {
        let (table, hooks) = setup();
        let site = hooks.site("k");
        site.fire();
        assert!(table.is_ready("k"), "a fire with no fields still publishes");
        assert_eq!(hooks.fired_count(), 1);
    }

    #[test]
    fn attached_telemetry_counts_fires_per_site() {
        let (table, hooks) = setup();
        let a = hooks.site("site_a");
        let b = hooks.site("site_b");
        // Fires before attachment are not counted.
        a.fire_kv("x", 0u64);
        let registry = TelemetryRegistry::shared();
        hooks.attach_telemetry(Arc::clone(&registry));
        assert!(hooks.telemetry_attached());
        for i in 0..70u64 {
            a.fire_kv("x", i);
        }
        b.fire_kv("y", true);
        // The snapshot flushes the epoch lanes first, so the shared cells
        // are exact without an explicit driver tick.
        let snap = registry.snapshot();
        assert_eq!(snap.counter("hook_fires_total", "site_a"), Some(70));
        assert_eq!(snap.counter("hook_fires_total", "site_b"), Some(1));
        // Lane fires 0 and 64 are sampled; the rest skip timing.
        let h = snap.histogram("hook_fire_ns", "site_a").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(hooks.fired_count(), 72);
        assert!(table.is_ready("site_a"));
    }

    #[test]
    fn sites_created_after_attachment_are_counted() {
        let (_, hooks) = setup();
        let registry = TelemetryRegistry::shared();
        hooks.attach_telemetry(Arc::clone(&registry));
        let late = hooks.site("late_site");
        late.fire();
        assert_eq!(
            registry.snapshot().counter("hook_fires_total", "late_site"),
            Some(1)
        );
    }

    #[test]
    fn disabled_hooks_stay_silent_with_telemetry() {
        let (_, hooks) = setup();
        let registry = TelemetryRegistry::shared();
        hooks.attach_telemetry(Arc::clone(&registry));
        let site = hooks.site("k");
        hooks.set_enabled(false);
        site.fire();
        assert_eq!(registry.snapshot().counter("hook_fires_total", "k"), None);
    }

    #[test]
    fn attached_trace_journals_publishes_with_fields() {
        let clock = VirtualClock::shared();
        let table = ContextTable::new(clock.clone());
        let hooks = Hooks::new(Arc::clone(&table));
        let site = hooks.site("flush");
        // Fires before attachment are not journaled.
        site.fire_kv("len", 1u64);
        let rec = crate::trace::TraceRecorder::new(clock.clone());
        hooks.attach_trace(Arc::clone(&rec));
        assert!(hooks.trace_attached());
        clock.advance(std::time::Duration::from_millis(5));
        wd_hook!(site, { "len" => 7u64, "path" => "wal/0" });
        let events = rec.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].key, "flush");
        assert_eq!(events[0].at_us, 5_000);
        assert_eq!(
            events[0].kind,
            crate::trace::TraceEventKind::Publish {
                fields: vec![
                    ("len".into(), CtxValue::U64(7)),
                    ("path".into(), CtxValue::Str("wal/0".into())),
                ]
            }
        );
        // The publish itself still landed in the context table.
        assert_eq!(
            table.read("flush").unwrap().get("len").unwrap().as_u64(),
            Some(7)
        );
    }

    #[test]
    fn detached_trace_stops_journaling() {
        let clock = VirtualClock::shared();
        let hooks = Hooks::new(ContextTable::new(clock.clone()));
        let site = hooks.site("k");
        let rec = crate::trace::TraceRecorder::new(clock);
        hooks.attach_trace(Arc::clone(&rec));
        site.fire_kv("a", 1u64);
        hooks.detach_trace();
        assert!(!hooks.trace_attached());
        site.fire_kv("a", 2u64);
        assert_eq!(rec.drain().len(), 1);
    }

    #[test]
    fn disabled_hooks_journal_nothing() {
        let clock = VirtualClock::shared();
        let hooks = Hooks::new(ContextTable::new(clock.clone()));
        let site = hooks.site("k");
        let rec = crate::trace::TraceRecorder::new(clock);
        hooks.attach_trace(Arc::clone(&rec));
        hooks.set_enabled(false);
        site.fire_kv("a", 1u64);
        assert!(rec.is_empty());
    }

    #[test]
    fn macro_builds_fields() {
        let (table, hooks) = setup();
        let site = hooks.site("m");
        let n: u64 = 9;
        wd_hook!(site, { "n" => n, "name" => "x" });
        let snap = table.read("m").unwrap();
        assert_eq!(snap.get("n").unwrap().as_u64(), Some(9));
        assert_eq!(snap.get("name").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn steady_state_refire_replaces_fields_in_place() {
        let (table, hooks) = setup();
        let site = hooks.site("k");
        for i in 0..10u64 {
            wd_hook!(site, { "i" => i, "tag" => "t" });
        }
        let snap = table.read("k").unwrap();
        assert_eq!(snap.version, 10);
        assert_eq!(snap.get("i").unwrap().as_u64(), Some(9));
        assert_eq!(snap.fields.len(), 2);
    }

    #[test]
    fn concurrent_fires_on_one_site_count_exactly() {
        let (table, hooks) = setup();
        let registry = TelemetryRegistry::shared();
        hooks.attach_telemetry(Arc::clone(&registry));
        let site = hooks.site("hot");
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let site = site.clone();
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        wd_hook!(site, { "v" => t * 100_000 + i });
                    }
                });
            }
        });
        assert_eq!(
            registry.snapshot().counter("hook_fires_total", "hot"),
            Some(40_000)
        );
        assert_eq!(hooks.fired_count(), 40_000);
        let snap = table.read("hot").unwrap();
        assert_eq!(snap.version, 40_000);
        assert!(snap.get("v").is_some());
    }
}
