//! Watchdog hooks: how the main program feeds state to checker contexts.
//!
//! Hooks are the instrumentation points AutoWatchdog inserts into the main
//! program (paper Figure 2, line 28: a `ContextFactory...args_setter` call
//! placed right before the vulnerable operation). When execution reaches a
//! hook, the current program state is published into the watchdog's
//! [`ContextTable`].
//!
//! Two properties matter:
//!
//! 1. **One-way**: hooks only write; nothing flows back into the main
//!    program, so hooks cannot alter main execution (§3.1).
//! 2. **Cheap**: when the watchdog is disabled a hook is one relaxed atomic
//!    load — the field-building closure is not even invoked. Experiment E5
//!    measures this.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use wdog_telemetry::{AtomicHistogram, Counter, TelemetryRegistry};

use crate::context::{ContextSlot, ContextTable, CtxValue};

/// Fires between timed fires: every 64th enabled fire measures its own
/// publish latency, so sampling overhead stays off the steady-state path.
const FIRE_SAMPLE_MASK: u64 = 63;

/// Telemetry attachment shared by every site of one [`Hooks`] instance.
///
/// Hooks are created when the instrumented program boots — *before* any
/// watchdog (and its registry) exists — so attachment is post-hoc: the
/// `armed` flag is flipped only after the registry is stored, and the
/// un-armed fire path reads exactly one extra relaxed atomic.
#[derive(Default)]
struct HookTelemetry {
    armed: AtomicBool,
    registry: Mutex<Option<Arc<TelemetryRegistry>>>,
}

/// Per-site metric handles, resolved lazily on the first armed fire.
struct SiteStats {
    fires: Counter,
    fire_ns: AtomicHistogram,
}

/// Shared hook infrastructure for one instrumented program.
///
/// Cloneable and cheap to pass around; all clones share the enable flag and
/// the context table.
#[derive(Clone)]
pub struct Hooks {
    table: Arc<ContextTable>,
    enabled: Arc<AtomicBool>,
    fired: Arc<AtomicU64>,
    telemetry: Arc<HookTelemetry>,
}

impl Hooks {
    /// Creates hook infrastructure publishing into `table`, initially enabled.
    pub fn new(table: Arc<ContextTable>) -> Self {
        Self {
            table,
            enabled: Arc::new(AtomicBool::new(true)),
            fired: Arc::new(AtomicU64::new(0)),
            telemetry: Arc::new(HookTelemetry::default()),
        }
    }

    /// Arms per-site fire counting and sampled fire-latency recording.
    ///
    /// Every site created from this instance (before or after this call)
    /// starts reporting `hook_fires_total` and `hook_fire_ns` into
    /// `registry`, keyed by its context key. Until this is called, firing a
    /// site costs one extra relaxed atomic load over the pre-telemetry path.
    pub fn attach_telemetry(&self, registry: Arc<TelemetryRegistry>) {
        *self.telemetry.registry.lock() = Some(registry);
        self.telemetry.armed.store(true, Ordering::Release);
    }

    /// Returns whether a telemetry registry is attached.
    pub fn telemetry_attached(&self) -> bool {
        self.telemetry.armed.load(Ordering::Relaxed)
    }

    /// Enables or disables every hook site created from this instance.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Returns whether hooks are currently enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Returns how many hook firings actually published state.
    pub fn fired_count(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }

    /// Creates a hook site that publishes into the context slot `key`.
    ///
    /// The slot is registered and resolved here, once; firing the site never
    /// consults the table's key index again.
    pub fn site(&self, key: impl Into<String>) -> HookSite {
        let key = key.into();
        HookSite {
            slot: self.table.register(&key),
            hooks: self.clone(),
            stats: Arc::new(OnceLock::new()),
        }
    }

    /// Returns the context table hooks publish into.
    pub fn table(&self) -> &Arc<ContextTable> {
        &self.table
    }
}

impl std::fmt::Debug for Hooks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hooks")
            .field("enabled", &self.is_enabled())
            .field("fired", &self.fired_count())
            .finish()
    }
}

/// One instrumentation point in the main program.
///
/// # Examples
///
/// ```
/// use wdog_core::context::{ContextTable, CtxValue};
/// use wdog_core::hooks::Hooks;
/// use wdog_base::clock::RealClock;
///
/// let table = ContextTable::new(RealClock::shared());
/// let hooks = Hooks::new(table.clone());
/// let site = hooks.site("serialize_snapshot");
///
/// // In the main program, just before the vulnerable operation:
/// site.fire(|| vec![("node_path".into(), CtxValue::Str("/a/b".into()))]);
///
/// assert!(table.is_ready("serialize_snapshot"));
/// ```
#[derive(Clone)]
pub struct HookSite {
    slot: Arc<ContextSlot>,
    hooks: Hooks,
    /// Lazily resolved metric handles; shared by clones of this site.
    stats: Arc<OnceLock<SiteStats>>,
}

impl HookSite {
    /// Publishes state built by `fields` if hooks are enabled.
    ///
    /// The closure runs only when enabled, so argument capture costs nothing
    /// when the watchdog is off. The site holds its slot handle, so an
    /// enabled fire locks only this slot — no key hashing, no table lock.
    /// With no telemetry attached the only addition over that path is the
    /// `armed` load below; the instrumented variant lives out of line.
    pub fn fire<F>(&self, fields: F)
    where
        F: FnOnce() -> Vec<(String, CtxValue)>,
    {
        if !self.hooks.enabled.load(Ordering::Relaxed) {
            return;
        }
        if self.hooks.telemetry.armed.load(Ordering::Relaxed) {
            self.fire_instrumented(fields);
            return;
        }
        self.slot.publish(fields());
        self.hooks.fired.fetch_add(1, Ordering::Relaxed);
    }

    /// The armed fire path: counts every fire, times every 64th.
    fn fire_instrumented<F>(&self, fields: F)
    where
        F: FnOnce() -> Vec<(String, CtxValue)>,
    {
        let stats = match self.stats.get() {
            Some(s) => s,
            None => {
                let Some(registry) = self.hooks.telemetry.registry.lock().clone() else {
                    // Armed flag won the race against the registry store;
                    // publish uninstrumented and resolve on a later fire.
                    self.slot.publish(fields());
                    self.hooks.fired.fetch_add(1, Ordering::Relaxed);
                    return;
                };
                let _ = self.stats.set(SiteStats {
                    fires: registry.counter("hook_fires_total", self.key()),
                    fire_ns: registry.histogram("hook_fire_ns", self.key()),
                });
                self.stats.get().expect("just set")
            }
        };
        let n = stats.fires.inc_and_fetch_prev();
        if n & FIRE_SAMPLE_MASK == 0 {
            let t0 = std::time::Instant::now();
            self.slot.publish(fields());
            stats.fire_ns.record(t0.elapsed().as_nanos() as u64);
        } else {
            self.slot.publish(fields());
        }
        self.hooks.fired.fetch_add(1, Ordering::Relaxed);
    }

    /// Returns the context key this site publishes to.
    pub fn key(&self) -> &str {
        self.slot.key()
    }

    /// Returns the cached slot handle this site publishes through.
    pub fn slot(&self) -> &Arc<ContextSlot> {
        &self.slot
    }
}

impl std::fmt::Debug for HookSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HookSite")
            .field("key", &self.key())
            .finish()
    }
}

/// Publishes fields through a [`HookSite`] with struct-literal syntax.
///
/// # Examples
///
/// ```
/// use wdog_core::{context::ContextTable, hooks::Hooks, wd_hook};
/// use wdog_base::clock::RealClock;
///
/// let table = ContextTable::new(RealClock::shared());
/// let hooks = Hooks::new(table.clone());
/// let site = hooks.site("compact");
/// let level = 2u64;
/// wd_hook!(site, { "level" => level, "input" => "sst/5" });
/// assert_eq!(
///     table.read("compact").unwrap().get("level").unwrap().as_u64(),
///     Some(2),
/// );
/// ```
#[macro_export]
macro_rules! wd_hook {
    ($site:expr, { $($name:literal => $value:expr),* $(,)? }) => {
        $site.fire(|| vec![
            $(($name.to_string(), $crate::context::CtxValue::from($value))),*
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdog_base::clock::VirtualClock;

    fn setup() -> (Arc<ContextTable>, Hooks) {
        let table = ContextTable::new(VirtualClock::shared());
        let hooks = Hooks::new(Arc::clone(&table));
        (table, hooks)
    }

    #[test]
    fn fire_publishes_fields() {
        let (table, hooks) = setup();
        let site = hooks.site("k");
        site.fire(|| vec![("a".into(), CtxValue::U64(1))]);
        assert_eq!(table.read("k").unwrap().get("a").unwrap().as_u64(), Some(1));
        assert_eq!(hooks.fired_count(), 1);
    }

    #[test]
    fn disabled_hooks_do_not_publish_or_evaluate() {
        let (table, hooks) = setup();
        let site = hooks.site("k");
        hooks.set_enabled(false);
        let mut evaluated = false;
        site.fire(|| {
            evaluated = true;
            vec![("a".into(), CtxValue::U64(1))]
        });
        assert!(!evaluated, "field closure ran while disabled");
        assert!(!table.is_ready("k"));
        assert_eq!(hooks.fired_count(), 0);
    }

    #[test]
    fn reenabling_restores_publishing() {
        let (table, hooks) = setup();
        let site = hooks.site("k");
        hooks.set_enabled(false);
        hooks.set_enabled(true);
        site.fire(|| vec![("a".into(), CtxValue::Bool(true))]);
        assert!(table.is_ready("k"));
    }

    #[test]
    fn sites_share_the_enable_flag() {
        let (_, hooks) = setup();
        let a = hooks.site("a");
        let b = hooks.site("b");
        hooks.set_enabled(false);
        a.fire(Vec::new);
        b.fire(Vec::new);
        assert_eq!(hooks.fired_count(), 0);
    }

    #[test]
    fn attached_telemetry_counts_fires_per_site() {
        let (table, hooks) = setup();
        let a = hooks.site("site_a");
        let b = hooks.site("site_b");
        // Fires before attachment are not counted.
        a.fire(|| vec![("x".into(), CtxValue::U64(0))]);
        let registry = TelemetryRegistry::shared();
        hooks.attach_telemetry(Arc::clone(&registry));
        assert!(hooks.telemetry_attached());
        for i in 0..70u64 {
            a.fire(|| vec![("x".into(), CtxValue::U64(i))]);
        }
        b.fire(|| vec![("y".into(), CtxValue::Bool(true))]);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("hook_fires_total", "site_a"), Some(70));
        assert_eq!(snap.counter("hook_fires_total", "site_b"), Some(1));
        // Fire 0 and fire 64 are sampled; the rest skip timing.
        let h = snap.histogram("hook_fire_ns", "site_a").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(hooks.fired_count(), 72);
        assert!(table.is_ready("site_a"));
    }

    #[test]
    fn sites_created_after_attachment_are_counted() {
        let (_, hooks) = setup();
        let registry = TelemetryRegistry::shared();
        hooks.attach_telemetry(Arc::clone(&registry));
        let late = hooks.site("late_site");
        late.fire(Vec::new);
        assert_eq!(
            registry.snapshot().counter("hook_fires_total", "late_site"),
            Some(1)
        );
    }

    #[test]
    fn disabled_hooks_stay_silent_with_telemetry() {
        let (_, hooks) = setup();
        let registry = TelemetryRegistry::shared();
        hooks.attach_telemetry(Arc::clone(&registry));
        let site = hooks.site("k");
        hooks.set_enabled(false);
        site.fire(Vec::new);
        assert_eq!(registry.snapshot().counter("hook_fires_total", "k"), None);
    }

    #[test]
    fn macro_builds_fields() {
        let (table, hooks) = setup();
        let site = hooks.site("m");
        let n: u64 = 9;
        wd_hook!(site, { "n" => n, "name" => "x" });
        let snap = table.read("m").unwrap();
        assert_eq!(snap.get("n").unwrap().as_u64(), Some(9));
        assert_eq!(snap.get("name").unwrap().as_str(), Some("x"));
    }
}
