//! The watchdog driver: checker scheduling, execution, and failure handling.
//!
//! The driver is the paper's runtime core (§3.1): it "manages checker
//! scheduling and execution. When a checker executes, it might get stuck,
//! crash, or trigger an error. The watchdog driver catches failure signatures
//! from checkers, aborts or restarts their executions and applies an action
//! to the main program accordingly."
//!
//! # Execution model
//!
//! Every registered checker gets a **dedicated executor thread**. The
//! scheduler thread dispatches rounds at the configured
//! [`SchedulePolicy`] interval and watches for
//! three failure signatures:
//!
//! - a **failed check** — the checker returned
//!   [`CheckStatus::Fail`];
//! - a **hung checker** — the executor did not report back within the
//!   checker's timeout. Because mimic checkers share the fate of the code
//!   they copy (§3.3), a hung checker *is* a detection: the driver emits a
//!   [`FailureKind::Stuck`] report
//!   pinpointed at the operation the checker's
//!   [`ExecutionProbe`] last entered;
//! - a **panicked checker** — caught with `catch_unwind` on the executor
//!   thread and reported as
//!   [`FailureKind::CheckerPanic`];
//!   the main program is never affected (isolation, §3.2).
//!
//! A checker still busy when the next round begins is simply not
//! re-dispatched; other checkers proceed independently, so one wedged
//! component never blinds the watchdog to the rest of the process.
//!
//! # Driver self-healing
//!
//! A wedged checker permanently consumes its executor thread: the thread is
//! parked inside the hung operation and cannot be killed. For checkers
//! registered through [`DriverBuilder::respawnable`] the driver
//! *abandons* such an executor once the checker has been stuck for twice its
//! timeout and spawns a fresh executor (and fresh checker instance) in its
//! place, so coverage of that component resumes while the old thread drains
//! whenever the underlying operation completes. Respawns are bounded
//! ([`MAX_EXECUTOR_RESPAWNS`]) and counted in
//! [`DriverStats::executor_respawns`]. Similarly, failure reports are handed
//! to actions through a bounded queue serviced by a dedicated thread, so a
//! slow action (say, a recovery attempt) can never wedge the scheduler;
//! overflow is counted in [`DriverStats::reports_dropped`] rather than
//! blocking detection.
//!
//! For the in-place ablation (experiment E6), [`WatchdogDriver::run_inline_round`]
//! executes every checker synchronously on the caller's thread — the design
//! the paper argues *against* — without spawning anything.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, Sender};

use wdog_base::clock::{spawn_on, SharedClock, Waiter};
use wdog_base::error::{BaseError, BaseResult};
use wdog_base::ids::{CheckerId, ComponentId};
use wdog_telemetry::{AtomicHistogram, Counter, TelemetryRegistry};

use crate::action::{Action, LogAction};
use crate::checker::{CheckStatus, Checker, ExecutionProbe};
use crate::policy::SchedulePolicy;
use crate::report::{FailureKind, FailureReport, FaultLocation};
use crate::status::HealthBoard;

/// Driver-wide configuration.
#[derive(Debug, Clone)]
pub struct WatchdogConfig {
    /// Scheduling policy for checking rounds.
    pub policy: SchedulePolicy,
    /// Execution timeout applied to checkers that do not set their own.
    pub default_timeout: Duration,
    /// How long failure evidence keeps a component unhealthy.
    pub health_window: Duration,
    /// When set, executors spawn in a seed-derived permutation of
    /// registration order instead of registration order itself. Verdicts
    /// must not depend on spawn order; campaign determinism tests sweep
    /// this seed to prove it.
    pub spawn_order_seed: Option<u64>,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self {
            policy: SchedulePolicy::default(),
            default_timeout: Duration::from_secs(5),
            health_window: Duration::from_secs(30),
            spawn_order_seed: None,
        }
    }
}

/// Counters describing everything the driver has done so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriverStats {
    /// Completed scheduling rounds.
    pub rounds: u64,
    /// Checker executions dispatched.
    pub runs: u64,
    /// Executions that returned `Pass`.
    pub passes: u64,
    /// Executions that returned `Fail` (excluding timeouts).
    pub failures: u64,
    /// Executions skipped or returned `NotReady`.
    pub not_ready: u64,
    /// Stuck-checker detections (timeout expiries).
    pub timeouts: u64,
    /// Checker panics caught.
    pub panics: u64,
    /// Wedged executor threads abandoned and replaced.
    pub executor_respawns: u64,
    /// Failure reports dropped because the action queue was full.
    pub reports_dropped: u64,
    /// Reports evicted from the driver's built-in ring log to honour its
    /// capacity (folded in from [`LogAction`]).
    pub log_evictions: u64,
}

#[derive(Default)]
struct StatsInner {
    rounds: AtomicU64,
    runs: AtomicU64,
    passes: AtomicU64,
    failures: AtomicU64,
    not_ready: AtomicU64,
    timeouts: AtomicU64,
    panics: AtomicU64,
    executor_respawns: AtomicU64,
    reports_dropped: AtomicU64,
}

impl StatsInner {
    fn snapshot(&self) -> DriverStats {
        DriverStats {
            rounds: self.rounds.load(Ordering::Relaxed),
            runs: self.runs.load(Ordering::Relaxed),
            passes: self.passes.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            not_ready: self.not_ready.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            executor_respawns: self.executor_respawns.load(Ordering::Relaxed),
            reports_dropped: self.reports_dropped.load(Ordering::Relaxed),
            log_evictions: 0,
        }
    }
}

/// Builds a fresh checker instance for executor respawning.
pub type CheckerFactory = Arc<dyn Fn() -> Box<dyn Checker> + Send + Sync>;

/// Per-checker telemetry handles, resolved once at `start` so the scheduler
/// loop records through lock-free atomics only.
#[derive(Clone)]
struct SlotTelemetry {
    wall_ms: AtomicHistogram,
    dispatch_delay_ms: AtomicHistogram,
    passes: Counter,
    failures: Counter,
    not_ready: Counter,
    timeouts: Counter,
    panics: Counter,
    respawns: Counter,
}

impl SlotTelemetry {
    fn resolve(registry: &TelemetryRegistry, checker: &CheckerId) -> Self {
        let id = checker.as_str();
        Self {
            wall_ms: registry.histogram("checker_wall_ms", id),
            dispatch_delay_ms: registry.histogram("checker_dispatch_delay_ms", id),
            passes: registry.counter("checker_pass_total", id),
            failures: registry.counter("checker_fail_total", id),
            not_ready: registry.counter("checker_not_ready_total", id),
            timeouts: registry.counter("checker_timeout_total", id),
            panics: registry.counter("checker_panic_total", id),
            respawns: registry.counter("executor_respawn_total", id),
        }
    }
}

/// A checker not yet started: still owned by the driver.
struct Pending {
    checker: Box<dyn Checker>,
    probe: ExecutionProbe,
    factory: Option<CheckerFactory>,
}

/// Scheduler→executor dispatch signal.
///
/// Replaces a bounded crossbeam channel with a clock-provided [`Waiter`] so
/// executor threads block *on the clock*: under a real clock this is a plain
/// condvar, under the simulated clock the wait is visible to the
/// discrete-event core and virtual time can advance past it.
///
/// Dispatch is **batched**: every executor of one driver parks on a single
/// shared waiter, the scheduler arms the run flags of all due slots with
/// plain stores, and then issues *one* `notify_all` for the whole batch —
/// one wakeup drains a slice of due checkers instead of one syscall-grade
/// notify per checker per round. Executors woken without a run token simply
/// re-park; the busy-slot gate in [`SchedulerCtx::dispatch_due`] guarantees
/// at most one outstanding run per executor.
struct ExecSignal {
    waiter: Arc<dyn Waiter>,
    run: AtomicBool,
    closed: AtomicBool,
}

impl ExecSignal {
    fn new(waiter: Arc<dyn Waiter>) -> Arc<Self> {
        Arc::new(Self {
            waiter,
            run: AtomicBool::new(false),
            closed: AtomicBool::new(false),
        })
    }

    /// Scheduler side: hand the executor one run token *without* waking it.
    /// The scheduler wakes the whole batch with one `notify_all` on the
    /// shared waiter after arming every due slot.
    fn arm(&self) {
        self.run.store(true, Ordering::Release);
    }

    /// Scheduler side: release the executor thread for good.
    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.waiter.notify_all();
    }

    /// Executor side: block until the next run token; `false` means closed.
    fn next_run(&self) -> bool {
        loop {
            if self.closed.load(Ordering::Acquire) {
                return false;
            }
            if self.run.swap(false, Ordering::AcqRel) {
                return true;
            }
            self.waiter.wait();
        }
    }
}

/// Driver-side view of a running checker's executor.
struct ExecSlot {
    id: CheckerId,
    component: ComponentId,
    timeout: Duration,
    probe: ExecutionProbe,
    signal: Arc<ExecSignal>,
    result_rx: Receiver<CheckStatus>,
    busy_since: Option<Duration>,
    reported_stuck: bool,
    /// Rebuilds the checker when its executor must be abandoned; `None`
    /// keeps the legacy skip-while-busy behaviour.
    factory: Option<CheckerFactory>,
    /// Executors abandoned so far for this checker.
    respawns: u64,
    /// Dispatch offset within each round (anti-thundering-herd phase).
    phase: Duration,
    /// Whether this checker has had its dispatch chance this round.
    dispatched: bool,
    /// Pre-resolved metric handles; `None` when no registry is attached.
    telem: Option<SlotTelemetry>,
}

/// How often the scheduler polls results and timeouts while sleeping.
const POLL_QUANTUM: Duration = Duration::from_millis(2);

/// Upper bound on executor replacements per checker: a checker that wedges
/// repeatedly is leaking a thread per respawn, so after this many the driver
/// stops replacing it and falls back to skip-while-busy.
pub const MAX_EXECUTOR_RESPAWNS: u64 = 3;

/// Capacity of the bounded scheduler→action queue.
const ACTION_QUEUE_CAP: usize = 256;

/// The watchdog driver. See module docs for the execution model.
pub struct WatchdogDriver {
    config: WatchdogConfig,
    clock: SharedClock,
    pending: Vec<Pending>,
    actions: Vec<Arc<dyn Action>>,
    board: Arc<HealthBoard>,
    log: Arc<LogAction>,
    stats: Arc<StatsInner>,
    telemetry: Option<Arc<TelemetryRegistry>>,
    shutdown: Arc<AtomicBool>,
    scheduler: Option<std::thread::JoinHandle<()>>,
    action_worker: Option<std::thread::JoinHandle<()>>,
}

impl WatchdogDriver {
    /// Creates a driver with the given configuration and clock. Internal:
    /// [`DriverBuilder::build`] is the only entry point, so every driver is
    /// validated exactly once before it can start.
    fn new(config: WatchdogConfig, clock: SharedClock) -> Self {
        let board = HealthBoard::new(Arc::clone(&clock), config.health_window);
        Self {
            config,
            clock,
            pending: Vec::new(),
            actions: Vec::new(),
            board,
            log: LogAction::new(),
            stats: Arc::new(StatsInner::default()),
            telemetry: None,
            shutdown: Arc::new(AtomicBool::new(false)),
            scheduler: None,
            action_worker: None,
        }
    }

    /// Returns a [`DriverBuilder`], the preferred way to assemble a driver.
    pub fn builder() -> DriverBuilder {
        DriverBuilder::new()
    }

    /// Attaches a telemetry registry (builder-internal; see
    /// [`DriverBuilder::telemetry`]). Per-checker timing, outcome counters,
    /// and report/detection observation flow into it from then on.
    fn set_telemetry(&mut self, registry: Arc<TelemetryRegistry>) -> BaseResult<()> {
        if self.scheduler.is_some() {
            return Err(BaseError::InvalidState(
                "cannot attach telemetry after start".into(),
            ));
        }
        // Rebuild the built-in ring log so its evictions report through the
        // registry; attach telemetry before taking `log()` handles.
        self.log = LogAction::telemetered(crate::action::DEFAULT_LOG_CAP, &registry);
        self.telemetry = Some(registry);
        Ok(())
    }

    /// Returns the attached telemetry registry, if any.
    pub fn telemetry(&self) -> Option<Arc<TelemetryRegistry>> {
        self.telemetry.clone()
    }

    /// Registers a checker (builder-internal; see [`DriverBuilder::checker`]).
    ///
    /// The checker's [`ExecutionProbe`] is attached here.
    fn register(&mut self, mut checker: Box<dyn Checker>) -> BaseResult<()> {
        if self.scheduler.is_some() {
            return Err(BaseError::InvalidState(
                "cannot register checkers after start".into(),
            ));
        }
        let probe = ExecutionProbe::new();
        checker.attach_probe(probe.clone());
        self.pending.push(Pending {
            checker,
            probe,
            factory: None,
        });
        Ok(())
    }

    /// Registers a checker through a factory, enabling executor replacement
    /// (builder-internal; see [`DriverBuilder::respawnable`]).
    ///
    /// When this checker wedges past twice its timeout, the driver abandons
    /// the executor thread and builds a fresh checker via `factory` (bounded
    /// by [`MAX_EXECUTOR_RESPAWNS`]), so a single hung probe never
    /// permanently shrinks watchdog coverage.
    fn register_respawnable(&mut self, factory: CheckerFactory) -> BaseResult<()> {
        if self.scheduler.is_some() {
            return Err(BaseError::InvalidState(
                "cannot register checkers after start".into(),
            ));
        }
        let mut checker = factory();
        let probe = ExecutionProbe::new();
        checker.attach_probe(probe.clone());
        self.pending.push(Pending {
            checker,
            probe,
            factory: Some(factory),
        });
        Ok(())
    }

    /// Adds an action invoked for every failure report (builder-internal;
    /// see [`DriverBuilder::action`]).
    fn add_action(&mut self, action: Arc<dyn Action>) {
        self.actions.push(action);
    }

    /// Returns the health board fed by this driver.
    pub fn board(&self) -> Arc<HealthBoard> {
        Arc::clone(&self.board)
    }

    /// Returns the built-in report log.
    pub fn log(&self) -> Arc<LogAction> {
        Arc::clone(&self.log)
    }

    /// Returns a snapshot of the driver counters.
    pub fn stats(&self) -> DriverStats {
        let mut stats = self.stats.snapshot();
        stats.log_evictions = self.log.eviction_count();
        stats
    }

    /// Returns the ids of all registered checkers, in registration order.
    pub fn checker_ids(&self) -> Vec<CheckerId> {
        self.pending.iter().map(|p| p.checker.id()).collect()
    }

    /// Runs every registered checker once, synchronously, on this thread.
    ///
    /// This is the **in-place** execution mode the paper argues against
    /// (§3.1) — heavy checks delay the caller and a hung check hangs the
    /// caller — kept for the E6 ablation. Only valid before `start`.
    pub fn run_inline_round(&mut self) -> BaseResult<Vec<FailureReport>> {
        if self.scheduler.is_some() {
            return Err(BaseError::InvalidState(
                "inline rounds are unavailable after start".into(),
            ));
        }
        let mut reports = Vec::new();
        let now_ms = self.clock.now_millis();
        for p in &mut self.pending {
            self.stats.runs.fetch_add(1, Ordering::Relaxed);
            match p.checker.check() {
                CheckStatus::Pass => {
                    self.stats.passes.fetch_add(1, Ordering::Relaxed);
                }
                CheckStatus::NotReady => {
                    self.stats.not_ready.fetch_add(1, Ordering::Relaxed);
                }
                CheckStatus::Fail(f) => {
                    self.stats.failures.fetch_add(1, Ordering::Relaxed);
                    let report = FailureReport {
                        checker: p.checker.id(),
                        kind: f.kind,
                        location: f.location,
                        detail: f.detail,
                        payload: f.payload,
                        observed_latency_ms: f.observed_latency_ms,
                        at_ms: now_ms,
                    };
                    self.board.record(&report);
                    self.log.on_failure(&report);
                    if let Some(t) = &self.telemetry {
                        t.observe_report(report.checker.as_str(), report.kind.label(), now_ms);
                    }
                    for a in &self.actions {
                        a.on_failure(&report);
                    }
                    reports.push(report);
                }
            }
        }
        self.stats.rounds.fetch_add(1, Ordering::Relaxed);
        Ok(reports)
    }

    /// Starts the concurrent watchdog: spawns one executor thread per
    /// checker plus the scheduler thread.
    pub fn start(&mut self) -> BaseResult<()> {
        if self.scheduler.is_some() {
            return Err(BaseError::InvalidState("driver already started".into()));
        }
        if let Some(seed) = self.config.spawn_order_seed {
            // Deterministic Fisher–Yates over a splitmix64 stream: the same
            // seed always yields the same spawn order, and `None` keeps
            // registration order exactly.
            let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut next = move || {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            for i in (1..self.pending.len()).rev() {
                let j = (next() % (i as u64 + 1)) as usize;
                self.pending.swap(i, j);
            }
        }
        // One waiter shared by every executor: dispatch arms run flags and
        // wakes the whole batch with a single notify_all.
        let dispatch_waiter = self.clock.waiter();
        let mut slots = Vec::with_capacity(self.pending.len());
        for p in self.pending.drain(..) {
            let mut slot = spawn_executor(
                p,
                self.config.default_timeout,
                &self.clock,
                Arc::clone(&dispatch_waiter),
            );
            slot.phase = self.config.policy.phase_offset(slot.id.as_str());
            slot.telem = self
                .telemetry
                .as_deref()
                .map(|reg| SlotTelemetry::resolve(reg, &slot.id));
            slots.push(slot);
        }

        // Actions run on their own thread behind a bounded queue: a slow or
        // blocking action (a recovery attempt, say) must never stall
        // detection, and a failure storm overflows into a counter instead of
        // unbounded memory.
        let (action_tx, action_rx) = bounded::<FailureReport>(ACTION_QUEUE_CAP);
        let actions = self.actions.clone();
        self.action_worker = Some(
            std::thread::Builder::new()
                .name("wdog-actions".into())
                .spawn(move || {
                    while let Ok(report) = action_rx.recv() {
                        for a in &actions {
                            a.on_failure(&report);
                        }
                    }
                })
                .expect("spawn wdog-actions"),
        );

        let ctx = SchedulerCtx {
            slots,
            dispatch_waiter,
            action_tx,
            board: Arc::clone(&self.board),
            log: Arc::clone(&self.log),
            stats: Arc::clone(&self.stats),
            clock: Arc::clone(&self.clock),
            policy: self.config.policy.clone(),
            default_timeout: self.config.default_timeout,
            telemetry: self.telemetry.clone(),
            shutdown: Arc::clone(&self.shutdown),
        };
        self.scheduler = Some(spawn_on(&self.clock, "wdog-scheduler", move || {
            scheduler_loop(ctx)
        }));
        Ok(())
    }

    /// Requests shutdown without blocking: the scheduler exits at its next
    /// poll and closes every executor. Under a simulated clock this lets a
    /// harness land the stop flag at an exact virtual instant and only then
    /// perform the (wall-time) joins via [`WatchdogDriver::stop`].
    pub fn request_stop(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    /// Stops the scheduler and releases idle executor threads.
    ///
    /// Executor threads currently wedged inside a hung check cannot be
    /// forcibly killed; they exit on their own if the underlying operation
    /// ever completes. This mirrors the paper's observation that the driver
    /// can only *abort scheduling* a stuck checker, not unwind it.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
        // The scheduler owned the only sender; once it is gone the action
        // worker drains whatever is queued and exits.
        if let Some(handle) = self.action_worker.take() {
            let _ = handle.join();
        }
    }

    /// Returns `true` once [`WatchdogDriver::start`] has run.
    pub fn is_started(&self) -> bool {
        self.scheduler.is_some()
    }
}

impl Drop for WatchdogDriver {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for WatchdogDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WatchdogDriver")
            .field("started", &self.is_started())
            .field("stats", &self.stats())
            .finish()
    }
}

/// One-shot assembly of a [`WatchdogDriver`] — the only way to build one.
///
/// Replaces the old `new` + `register`/`register_respawnable` + `add_action`
/// dance (those methods are now private) with a fluent builder that
/// validates the whole configuration once at [`DriverBuilder::build`]:
/// duplicate checker ids and a zero scheduling interval are rejected there
/// instead of surfacing as confusing runtime behaviour, and a started driver
/// can never grow checkers or actions.
///
/// # Examples
///
/// ```
/// use wdog_core::prelude::*;
/// use std::time::Duration;
///
/// let driver = WatchdogDriver::builder()
///     .config(WatchdogConfig {
///         policy: SchedulePolicy::every(Duration::from_millis(50)),
///         ..WatchdogConfig::default()
///     })
///     .checker(Box::new(FnChecker::new("ok", "comp", || CheckStatus::Pass)))
///     .build()
///     .unwrap();
/// assert_eq!(driver.checker_ids().len(), 1);
/// ```
#[derive(Default)]
pub struct DriverBuilder {
    config: WatchdogConfig,
    clock: Option<SharedClock>,
    checkers: Vec<Box<dyn Checker>>,
    factories: Vec<CheckerFactory>,
    actions: Vec<Arc<dyn Action>>,
    telemetry: Option<Arc<TelemetryRegistry>>,
}

impl DriverBuilder {
    /// Creates a builder with the default [`WatchdogConfig`] and real clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the driver configuration (policy, default timeout, health window).
    pub fn config(mut self, config: WatchdogConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the clock; defaults to the process-wide real clock.
    pub fn clock(mut self, clock: SharedClock) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Adds one checker.
    pub fn checker(mut self, checker: Box<dyn Checker>) -> Self {
        self.checkers.push(checker);
        self
    }

    /// Adds every checker from an iterator.
    pub fn checkers(mut self, checkers: impl IntoIterator<Item = Box<dyn Checker>>) -> Self {
        self.checkers.extend(checkers);
        self
    }

    /// Adds a respawnable checker via its factory (see
    /// [`WatchdogDriver::register_respawnable`]).
    pub fn respawnable(mut self, factory: CheckerFactory) -> Self {
        self.factories.push(factory);
        self
    }

    /// Adds an action invoked for every failure report.
    pub fn action(mut self, action: Arc<dyn Action>) -> Self {
        self.actions.push(action);
        self
    }

    /// Attaches a telemetry registry.
    pub fn telemetry(mut self, registry: Arc<TelemetryRegistry>) -> Self {
        self.telemetry = Some(registry);
        self
    }

    /// Validates the assembled configuration and returns the driver.
    ///
    /// Errors on a zero scheduling interval or duplicate checker ids
    /// (respawnable factories are instantiated here, so their ids count).
    pub fn build(self) -> BaseResult<WatchdogDriver> {
        if self.config.policy.interval.is_zero() {
            return Err(BaseError::InvalidState(
                "scheduling interval must be non-zero".into(),
            ));
        }
        let clock = self
            .clock
            .unwrap_or_else(wdog_base::clock::RealClock::shared);
        let mut driver = WatchdogDriver::new(self.config, clock);
        if let Some(registry) = self.telemetry {
            driver.set_telemetry(registry)?;
        }
        for checker in self.checkers {
            driver.register(checker)?;
        }
        for factory in self.factories {
            driver.register_respawnable(factory)?;
        }
        let mut seen = std::collections::HashSet::new();
        for id in driver.checker_ids() {
            if !seen.insert(id.clone()) {
                return Err(BaseError::InvalidState(format!(
                    "duplicate checker id: {id}"
                )));
            }
        }
        for action in self.actions {
            driver.add_action(action);
        }
        Ok(driver)
    }
}

impl std::fmt::Debug for DriverBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DriverBuilder")
            .field("checkers", &self.checkers.len())
            .field("factories", &self.factories.len())
            .field("actions", &self.actions.len())
            .field("telemetry", &self.telemetry.is_some())
            .finish()
    }
}

fn spawn_executor(
    p: Pending,
    default_timeout: Duration,
    clock: &SharedClock,
    waiter: Arc<dyn Waiter>,
) -> ExecSlot {
    let Pending {
        mut checker,
        probe,
        factory,
    } = p;
    let id = checker.id();
    let component = checker.component();
    let timeout = checker.timeout().unwrap_or(default_timeout);
    let signal = ExecSignal::new(waiter);
    let (result_tx, result_rx) = bounded::<CheckStatus>(1);
    let thread_signal = Arc::clone(&signal);
    let thread_probe = probe.clone();
    let thread_component = component.clone();
    let thread_id = id.clone();
    spawn_on(clock, &format!("wdog-exec-{id}"), move || {
        while thread_signal.next_run() {
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| checker.check()));
            let status = match outcome {
                Ok(s) => s,
                Err(payload) => {
                    let msg = panic_message(payload.as_ref());
                    let location = thread_probe.current().unwrap_or_else(|| {
                        FaultLocation::new(
                            thread_component.clone(),
                            format!("<checker {thread_id}>"),
                        )
                    });
                    CheckStatus::Fail(crate::checker::CheckFailure::new(
                        FailureKind::CheckerPanic,
                        location,
                        msg,
                    ))
                }
            };
            thread_probe.exit();
            if result_tx.send(status).is_err() {
                break;
            }
        }
    });
    ExecSlot {
        id,
        component,
        timeout,
        probe,
        signal,
        result_rx,
        busy_since: None,
        reported_stuck: false,
        factory,
        respawns: 0,
        phase: Duration::ZERO,
        dispatched: false,
        telem: None,
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("checker panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("checker panicked: {s}")
    } else {
        "checker panicked".to_owned()
    }
}

struct SchedulerCtx {
    slots: Vec<ExecSlot>,
    /// The one waiter all executors park on; see [`ExecSignal`].
    dispatch_waiter: Arc<dyn Waiter>,
    action_tx: Sender<FailureReport>,
    board: Arc<HealthBoard>,
    log: Arc<LogAction>,
    stats: Arc<StatsInner>,
    clock: SharedClock,
    policy: SchedulePolicy,
    default_timeout: Duration,
    telemetry: Option<Arc<TelemetryRegistry>>,
    shutdown: Arc<AtomicBool>,
}

impl SchedulerCtx {
    fn emit(&self, report: FailureReport) {
        self.board.record(&report);
        self.log.on_failure(&report);
        if let Some(t) = &self.telemetry {
            t.observe_report(report.checker.as_str(), report.kind.label(), report.at_ms);
            t.flight(
                report.at_ms,
                "report",
                &format!(
                    "{} {} @ {}",
                    report.checker,
                    report.kind.label(),
                    report.location.component
                ),
            );
        }
        // Actions run on the wdog-actions thread; if its queue is full the
        // report is counted as dropped rather than blocking the scheduler.
        if self.action_tx.try_send(report).is_err() {
            self.stats.reports_dropped.fetch_add(1, Ordering::Relaxed);
            if let Some(t) = &self.telemetry {
                t.counter("reports_dropped_total", "").inc();
            }
        }
    }

    /// Drains completed executions and counts their outcomes.
    fn collect_results(&mut self) {
        let now_ms = self.clock.now_millis();
        let now = self.clock.now();
        // Gather finished statuses first to avoid borrowing `self` twice.
        let mut finished: Vec<(usize, CheckStatus, Option<u64>)> = Vec::new();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if slot.busy_since.is_none() {
                continue;
            }
            if let Ok(status) = slot.result_rx.try_recv() {
                let elapsed_ms = slot
                    .busy_since
                    .map(|s| now.saturating_sub(s).as_millis() as u64);
                slot.busy_since = None;
                slot.reported_stuck = false;
                finished.push((i, status, elapsed_ms));
            }
        }
        for (i, status, elapsed_ms) in finished {
            if let (Some(t), Some(ms)) = (&self.slots[i].telem, elapsed_ms) {
                t.wall_ms.record(ms);
            }
            match status {
                CheckStatus::Pass => {
                    self.stats.passes.fetch_add(1, Ordering::Relaxed);
                    if let Some(t) = &self.slots[i].telem {
                        t.passes.inc();
                    }
                }
                CheckStatus::NotReady => {
                    self.stats.not_ready.fetch_add(1, Ordering::Relaxed);
                    if let Some(t) = &self.slots[i].telem {
                        t.not_ready.inc();
                    }
                }
                CheckStatus::Fail(f) => {
                    if f.kind == FailureKind::CheckerPanic {
                        self.stats.panics.fetch_add(1, Ordering::Relaxed);
                        if let Some(t) = &self.slots[i].telem {
                            t.panics.inc();
                        }
                    } else {
                        self.stats.failures.fetch_add(1, Ordering::Relaxed);
                        if let Some(t) = &self.slots[i].telem {
                            t.failures.inc();
                        }
                    }
                    let slot = &self.slots[i];
                    let report = FailureReport {
                        checker: slot.id.clone(),
                        kind: f.kind,
                        location: f.location,
                        detail: f.detail,
                        payload: f.payload,
                        observed_latency_ms: f.observed_latency_ms.or(elapsed_ms),
                        at_ms: now_ms,
                    };
                    self.emit(report);
                }
            }
        }
    }

    /// Reports checkers that have exceeded their execution timeout and
    /// replaces executors wedged past recovery.
    fn detect_stuck(&mut self) {
        let now = self.clock.now();
        let now_ms = self.clock.now_millis();
        let mut reports = Vec::new();
        let mut respawned = 0u64;
        for slot in &mut self.slots {
            let Some(since) = slot.busy_since else {
                continue;
            };
            let elapsed = now.saturating_sub(since);
            if elapsed <= slot.timeout {
                continue;
            }
            if !slot.reported_stuck {
                slot.reported_stuck = true;
                self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                if let Some(t) = &slot.telem {
                    t.timeouts.inc();
                }
                if let Some(t) = &self.telemetry {
                    t.flight(
                        now_ms,
                        "timeout",
                        &format!("{} stuck past {}ms", slot.id, slot.timeout.as_millis()),
                    );
                }
                let location = slot.probe.current().unwrap_or_else(|| {
                    FaultLocation::new(slot.component.clone(), format!("<checker {}>", slot.id))
                });
                reports.push(FailureReport {
                    checker: slot.id.clone(),
                    kind: FailureKind::Stuck,
                    location,
                    detail: format!(
                        "checker execution exceeded timeout of {} ms",
                        slot.timeout.as_millis()
                    ),
                    payload: Vec::new(),
                    observed_latency_ms: Some(elapsed.as_millis() as u64),
                    at_ms: now_ms,
                });
                continue;
            }
            // Already reported: once the checker has overstayed twice its
            // timeout, abandon the wedged executor and spawn a fresh one so
            // this component's coverage resumes. The old thread exits on its
            // own when the hung operation completes (its result channel is
            // gone by then).
            if elapsed > slot.timeout * 2
                && slot.factory.is_some()
                && slot.respawns < MAX_EXECUTOR_RESPAWNS
            {
                respawn_slot(
                    slot,
                    self.default_timeout,
                    &self.clock,
                    Arc::clone(&self.dispatch_waiter),
                );
                respawned += 1;
                if let Some(t) = &slot.telem {
                    t.respawns.inc();
                }
                if let Some(t) = &self.telemetry {
                    t.flight(
                        now_ms,
                        "respawn",
                        &format!("{} executor abandoned ({} so far)", slot.id, slot.respawns),
                    );
                }
            }
        }
        if respawned > 0 {
            self.stats
                .executor_respawns
                .fetch_add(respawned, Ordering::Relaxed);
        }
        for r in reports {
            self.emit(r);
        }
    }

    /// Resets per-round dispatch flags at the top of a round.
    fn begin_round(&mut self) {
        for slot in &mut self.slots {
            slot.dispatched = false;
        }
    }

    /// Dispatches each checker whose phase offset has elapsed this round:
    /// arms every due slot's run flag, then wakes the executor pool once.
    ///
    /// With `phase_frac == 0` every phase is zero and this behaves exactly
    /// like the old dispatch-everything-at-round-start. A checker still busy
    /// at its phase time is skipped for the round, as before.
    fn dispatch_due(&mut self, round_start: Duration) {
        let now = self.clock.now();
        let mut armed = 0usize;
        for slot in &mut self.slots {
            if slot.dispatched || now < round_start + slot.phase {
                continue;
            }
            slot.dispatched = true;
            if slot.busy_since.is_some() {
                continue; // Still running (possibly stuck); skip this round.
            }
            slot.signal.arm();
            armed += 1;
            slot.busy_since = Some(now);
            self.stats.runs.fetch_add(1, Ordering::Relaxed);
            if let Some(t) = &slot.telem {
                // How late past its scheduled (round start + phase) slot
                // this dispatch actually left, i.e. scheduler lag.
                let due = round_start + slot.phase;
                t.dispatch_delay_ms
                    .record(now.saturating_sub(due).as_millis() as u64);
            }
        }
        if armed > 0 {
            self.dispatch_waiter.notify_all();
        }
    }

    fn any_pending_dispatch(&self) -> bool {
        self.slots.iter().any(|s| !s.dispatched)
    }
}

/// Abandons a wedged executor and installs a fresh checker in its slot,
/// preserving identity, phase, and the respawn budget already spent.
fn respawn_slot(
    slot: &mut ExecSlot,
    default_timeout: Duration,
    clock: &SharedClock,
    waiter: Arc<dyn Waiter>,
) {
    let Some(factory) = slot.factory.clone() else {
        return;
    };
    // Release the wedged thread for good: when its hung operation ever
    // completes it sees the closed signal (or the dropped result channel)
    // and exits instead of waiting for a dispatch that will never come.
    slot.signal.close();
    let mut checker = factory();
    let probe = ExecutionProbe::new();
    checker.attach_probe(probe.clone());
    let mut fresh = spawn_executor(
        Pending {
            checker,
            probe,
            factory: Some(factory),
        },
        default_timeout,
        clock,
        waiter,
    );
    fresh.phase = slot.phase;
    fresh.respawns = slot.respawns + 1;
    fresh.dispatched = slot.dispatched;
    fresh.telem = slot.telem.clone();
    *slot = fresh;
}

/// Sleep chunk while no checker is running: long enough to keep the idle
/// scheduler off the CPU, short enough to stay responsive to shutdown.
const IDLE_QUANTUM: Duration = Duration::from_millis(25);

fn scheduler_loop(mut ctx: SchedulerCtx) {
    let clock = Arc::clone(&ctx.clock);
    if !ctx.policy.initial_delay.is_zero() {
        clock.sleep(ctx.policy.initial_delay);
    }
    let mut round: u64 = 0;
    while !ctx.shutdown.load(Ordering::Relaxed) {
        ctx.collect_results();
        let round_start = clock.now();
        ctx.begin_round();
        ctx.dispatch_due(round_start);
        let deadline = round_start + ctx.policy.round_sleep(round);
        while !ctx.shutdown.load(Ordering::Relaxed) {
            let now = clock.now();
            if now >= deadline {
                break;
            }
            // Poll fast while checkers are in flight or phase-delayed
            // dispatches are still owed; once every executor is idle the
            // scheduler sleeps in coarse chunks so a quiescent watchdog
            // costs (almost) nothing (experiment E5).
            let any_busy = ctx.slots.iter().any(|s| s.busy_since.is_some());
            let quantum = if any_busy || ctx.any_pending_dispatch() {
                POLL_QUANTUM
            } else {
                IDLE_QUANTUM
            };
            clock.sleep(quantum.min(deadline.saturating_sub(now)));
            ctx.collect_results();
            ctx.dispatch_due(round_start);
            ctx.detect_stuck();
        }
        ctx.stats.rounds.fetch_add(1, Ordering::Relaxed);
        round += 1;
        // Epoch tick: fold lane-buffered hook-fire deltas into the shared
        // registry cells once per round, so exported metrics lag the
        // zero-contention hot path by at most one scheduling interval.
        if let Some(t) = &ctx.telemetry {
            t.flush_epoch();
        }
    }
    // Release every executor thread: a waiter wait is not woken by channel
    // drop, so shutdown must close the signals explicitly.
    for slot in &ctx.slots {
        slot.signal.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{CheckFailure, FnChecker};
    use std::sync::atomic::AtomicU64;
    use wdog_base::clock::RealClock;

    fn fast_config(interval_ms: u64, timeout_ms: u64) -> WatchdogConfig {
        WatchdogConfig {
            policy: SchedulePolicy::every(Duration::from_millis(interval_ms)),
            default_timeout: Duration::from_millis(timeout_ms),
            health_window: Duration::from_secs(10),
            spawn_order_seed: None,
        }
    }

    fn wait_until(pred: impl Fn() -> bool, timeout: Duration) -> bool {
        let start = std::time::Instant::now();
        while start.elapsed() < timeout {
            if pred() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        pred()
    }

    #[test]
    fn passing_checkers_produce_no_reports() {
        let mut d = WatchdogDriver::builder()
            .config(fast_config(10, 500))
            .checker(Box::new(FnChecker::new("ok", "comp", || CheckStatus::Pass)))
            .build()
            .unwrap();
        d.start().unwrap();
        assert!(wait_until(|| d.stats().passes >= 3, Duration::from_secs(5)));
        d.stop();
        assert!(d.log().is_empty());
        assert_eq!(d.stats().failures, 0);
    }

    #[test]
    fn failing_checker_produces_reports_and_unhealthy_board() {
        let mut d = WatchdogDriver::builder()
            .config(fast_config(10, 500))
            .checker(Box::new(FnChecker::new("bad", "kvs.wal", || {
                CheckStatus::Fail(CheckFailure::new(
                    FailureKind::Error,
                    FaultLocation::new("kvs.wal", "append"),
                    "disk error",
                ))
            })))
            .build()
            .unwrap();
        d.start().unwrap();
        assert!(wait_until(|| d.log().len() >= 2, Duration::from_secs(5)));
        d.stop();
        let report = &d.log().reports()[0];
        assert_eq!(report.kind, FailureKind::Error);
        assert_eq!(report.location.function, "append");
        assert_eq!(
            d.board().component(&ComponentId::new("kvs.wal")),
            crate::status::ComponentHealth::Failing
        );
    }

    #[test]
    fn hung_checker_is_reported_stuck_at_probe_location() {
        let gate = Arc::new(AtomicBool::new(true));
        let gate2 = Arc::clone(&gate);
        struct Hanging {
            gate: Arc<AtomicBool>,
            probe: Option<ExecutionProbe>,
        }
        impl Checker for Hanging {
            fn id(&self) -> CheckerId {
                CheckerId::new("hang")
            }
            fn component(&self) -> ComponentId {
                ComponentId::new("zk.sync")
            }
            fn attach_probe(&mut self, probe: ExecutionProbe) {
                self.probe = Some(probe);
            }
            fn check(&mut self) -> CheckStatus {
                self.probe
                    .as_ref()
                    .unwrap()
                    .enter(FaultLocation::new("zk.sync", "serialize_node").with_op("net::send"));
                while self.gate.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(2));
                }
                self.probe.as_ref().unwrap().exit();
                CheckStatus::Pass
            }
        }
        let mut d = WatchdogDriver::builder()
            .config(fast_config(10, 50))
            .checker(Box::new(Hanging {
                gate: gate2,
                probe: None,
            }))
            .build()
            .unwrap();
        d.start().unwrap();
        assert!(wait_until(
            || d.stats().timeouts >= 1,
            Duration::from_secs(5)
        ));
        let reports = d.log().reports();
        let stuck = reports
            .iter()
            .find(|r| r.kind == FailureKind::Stuck)
            .unwrap();
        assert_eq!(stuck.location.function, "serialize_node");
        assert_eq!(
            stuck.location.operation.as_ref().unwrap().as_str(),
            "net::send"
        );
        // Releasing the gate lets the checker finish; it should be
        // dispatched again afterwards.
        let runs_before = d.stats().runs;
        gate.store(false, Ordering::Relaxed);
        assert!(wait_until(
            || d.stats().runs > runs_before,
            Duration::from_secs(5)
        ));
        d.stop();
    }

    #[test]
    fn stuck_reported_once_per_episode() {
        let mut d = WatchdogDriver::builder()
            .config(fast_config(10, 30))
            .checker(Box::new(
                FnChecker::new("hang", "comp", || {
                    std::thread::sleep(Duration::from_millis(400));
                    CheckStatus::Pass
                })
                .with_timeout(Duration::from_millis(30)),
            ))
            .build()
            .unwrap();
        d.start().unwrap();
        assert!(wait_until(
            || d.stats().timeouts >= 1,
            Duration::from_secs(5)
        ));
        std::thread::sleep(Duration::from_millis(100));
        d.stop();
        // One episode lasting ~400ms must yield exactly one stuck report.
        let stucks = d
            .log()
            .reports()
            .iter()
            .filter(|r| r.kind == FailureKind::Stuck)
            .count();
        assert_eq!(stucks, 1);
    }

    #[test]
    fn panicking_checker_is_caught_and_reported() {
        let mut d = WatchdogDriver::builder()
            .config(fast_config(10, 500))
            .checker(Box::new(FnChecker::new("boom", "comp", || {
                panic!("checker exploded")
            })))
            .build()
            .unwrap();
        d.start().unwrap();
        assert!(wait_until(|| d.stats().panics >= 1, Duration::from_secs(5)));
        d.stop();
        let reports = d.log().reports();
        let r = reports
            .iter()
            .find(|r| r.kind == FailureKind::CheckerPanic)
            .unwrap();
        assert!(r.detail.contains("checker exploded"));
    }

    #[test]
    fn one_stuck_checker_does_not_block_others() {
        let mut d = WatchdogDriver::builder()
            .config(fast_config(10, 100))
            .checker(Box::new(FnChecker::new("hang", "a", || loop {
                std::thread::sleep(Duration::from_millis(50));
            })))
            .checker(Box::new(FnChecker::new("ok", "b", || CheckStatus::Pass)))
            .build()
            .unwrap();
        d.start().unwrap();
        assert!(wait_until(|| d.stats().passes >= 5, Duration::from_secs(5)));
        d.stop();
    }

    #[test]
    fn actions_fire_per_report() {
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        let mut d = WatchdogDriver::builder()
            .config(fast_config(10, 500))
            .action(Arc::new(crate::action::CallbackAction::new(move |_r| {
                h.fetch_add(1, Ordering::Relaxed);
            })))
            .checker(Box::new(FnChecker::new("bad", "c", || {
                CheckStatus::Fail(CheckFailure::new(
                    FailureKind::Corruption,
                    FaultLocation::new("c", "f"),
                    "crc mismatch",
                ))
            })))
            .build()
            .unwrap();
        d.start().unwrap();
        assert!(wait_until(
            || hits.load(Ordering::Relaxed) >= 2,
            Duration::from_secs(5)
        ));
        d.stop();
    }

    #[test]
    fn double_start_rejected() {
        let mut d = WatchdogDriver::builder()
            .config(fast_config(50, 500))
            .build()
            .unwrap();
        d.start().unwrap();
        assert!(d.start().is_err(), "double start must fail");
        d.stop();
    }

    #[test]
    fn inline_round_runs_synchronously() {
        let mut d = WatchdogDriver::builder()
            .config(fast_config(50, 500))
            .checker(Box::new(FnChecker::new("a", "c", || CheckStatus::Pass)))
            .checker(Box::new(FnChecker::new("b", "c", || {
                CheckStatus::Fail(CheckFailure::new(
                    FailureKind::Error,
                    FaultLocation::new("c", "g"),
                    "bad",
                ))
            })))
            .build()
            .unwrap();
        let reports = d.run_inline_round().unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(d.stats().passes, 1);
        assert_eq!(d.stats().failures, 1);
        assert_eq!(d.stats().rounds, 1);
        d.start().unwrap();
        assert!(d.run_inline_round().is_err());
        d.stop();
    }

    #[test]
    fn not_ready_checkers_are_counted_not_reported() {
        let mut d = WatchdogDriver::builder()
            .config(fast_config(10, 500))
            .checker(Box::new(FnChecker::new("nr", "c", || {
                CheckStatus::NotReady
            })))
            .build()
            .unwrap();
        d.start().unwrap();
        assert!(wait_until(
            || d.stats().not_ready >= 3,
            Duration::from_secs(5)
        ));
        d.stop();
        assert!(d.log().is_empty());
    }

    #[test]
    fn wedged_executor_is_abandoned_and_replaced() {
        // First instance wedges forever; every later instance passes and
        // bumps a counter so we can see the replacement actually running.
        let instances = Arc::new(AtomicU64::new(0));
        let fresh_passes = Arc::new(AtomicU64::new(0));
        let inst2 = Arc::clone(&instances);
        let fresh2 = Arc::clone(&fresh_passes);
        let mut d = WatchdogDriver::builder()
            .config(fast_config(10, 40))
            .respawnable(Arc::new(move || {
                let n = inst2.fetch_add(1, Ordering::Relaxed);
                if n == 0 {
                    Box::new(FnChecker::new("wedge", "kvs.compaction", || loop {
                        std::thread::sleep(Duration::from_millis(20));
                    })) as Box<dyn Checker>
                } else {
                    let f = Arc::clone(&fresh2);
                    Box::new(FnChecker::new("wedge", "kvs.compaction", move || {
                        f.fetch_add(1, Ordering::Relaxed);
                        CheckStatus::Pass
                    }))
                }
            }))
            .checker(Box::new(FnChecker::new("ok", "b", || CheckStatus::Pass)))
            .build()
            .unwrap();
        d.start().unwrap();
        // The wedge is detected (Stuck report), the executor is replaced,
        // and the replacement gets dispatched and passes — while the healthy
        // checker keeps running throughout.
        assert!(wait_until(
            || d.stats().timeouts >= 1,
            Duration::from_secs(5)
        ));
        assert!(wait_until(
            || d.stats().executor_respawns >= 1,
            Duration::from_secs(5)
        ));
        assert!(wait_until(
            || fresh_passes.load(Ordering::Relaxed) >= 3,
            Duration::from_secs(5)
        ));
        let healthy_passes = d.stats().passes;
        assert!(wait_until(
            || d.stats().passes > healthy_passes,
            Duration::from_secs(5)
        ));
        d.stop();
        assert!(d
            .log()
            .reports()
            .iter()
            .any(|r| r.kind == FailureKind::Stuck));
        assert!(instances.load(Ordering::Relaxed) >= 2);
    }

    #[test]
    fn executor_respawns_are_bounded() {
        // Every instance wedges: the driver must give up after the cap
        // instead of leaking threads forever.
        let mut d = WatchdogDriver::builder()
            .config(fast_config(10, 25))
            .respawnable(Arc::new(|| {
                Box::new(FnChecker::new("always-wedged", "c", || loop {
                    std::thread::sleep(Duration::from_millis(10));
                })) as Box<dyn Checker>
            }))
            .build()
            .unwrap();
        d.start().unwrap();
        assert!(wait_until(
            || d.stats().executor_respawns >= MAX_EXECUTOR_RESPAWNS,
            Duration::from_secs(10)
        ));
        // Give it time to (incorrectly) overshoot, then check the bound.
        std::thread::sleep(Duration::from_millis(300));
        d.stop();
        assert_eq!(d.stats().executor_respawns, MAX_EXECUTOR_RESPAWNS);
    }

    #[test]
    fn phase_spread_checkers_all_run() {
        let config = WatchdogConfig {
            policy: SchedulePolicy::every(Duration::from_millis(40)).with_phase_spread(0.5),
            default_timeout: Duration::from_millis(500),
            health_window: Duration::from_secs(10),
            spawn_order_seed: None,
        };
        let mut builder = WatchdogDriver::builder().config(config);
        for name in ["a", "b", "c", "d"] {
            builder = builder.checker(Box::new(FnChecker::new(name, "comp", || CheckStatus::Pass)));
        }
        let mut d = builder.build().unwrap();
        d.start().unwrap();
        // 4 checkers staggered across the round must each still run every
        // round: 3 rounds → at least 12 passes.
        assert!(wait_until(
            || d.stats().passes >= 12,
            Duration::from_secs(5)
        ));
        d.stop();
        assert!(d.log().is_empty());
    }

    #[test]
    fn builder_assembles_and_validates() {
        let driver = WatchdogDriver::builder()
            .config(fast_config(10, 500))
            .clock(RealClock::shared())
            .checker(Box::new(FnChecker::new("a", "c", || CheckStatus::Pass)))
            .checkers(vec![
                Box::new(FnChecker::new("b", "c", || CheckStatus::Pass)) as Box<dyn Checker>,
            ])
            .respawnable(Arc::new(|| {
                Box::new(FnChecker::new("r", "c", || CheckStatus::Pass)) as Box<dyn Checker>
            }))
            .action(Arc::new(crate::action::CallbackAction::new(|_| {})))
            .build()
            .unwrap();
        assert_eq!(
            driver.checker_ids(),
            vec![
                CheckerId::new("a"),
                CheckerId::new("b"),
                CheckerId::new("r")
            ]
        );
    }

    #[test]
    fn builder_rejects_duplicate_checker_ids() {
        let err = WatchdogDriver::builder()
            .config(fast_config(10, 500))
            .checker(Box::new(FnChecker::new("dup", "c", || CheckStatus::Pass)))
            .checker(Box::new(FnChecker::new("dup", "c", || CheckStatus::Pass)))
            .build()
            .unwrap_err();
        assert!(matches!(err, BaseError::InvalidState(_)), "{err:?}");
    }

    #[test]
    fn builder_rejects_zero_interval() {
        let config = WatchdogConfig {
            policy: SchedulePolicy::every(Duration::ZERO),
            ..WatchdogConfig::default()
        };
        assert!(WatchdogDriver::builder().config(config).build().is_err());
    }

    #[test]
    fn telemetry_records_outcomes_and_detection() {
        let registry = TelemetryRegistry::shared();
        let clock = RealClock::shared();
        // Arm before the failure so the first report closes a sample.
        registry.arm_fault("test-fault", clock.now_millis());
        let mut d = WatchdogDriver::builder()
            .config(fast_config(10, 500))
            .clock(clock)
            .telemetry(Arc::clone(&registry))
            .checker(Box::new(FnChecker::new("ok", "a", || CheckStatus::Pass)))
            .checker(Box::new(FnChecker::new("bad", "b", || {
                CheckStatus::Fail(CheckFailure::new(
                    FailureKind::Error,
                    FaultLocation::new("b", "f"),
                    "bad",
                ))
            })))
            .build()
            .unwrap();
        d.start().unwrap();
        assert!(wait_until(
            || d.stats().passes >= 2 && d.stats().failures >= 2,
            Duration::from_secs(5)
        ));
        d.stop();
        let snap = registry.snapshot();
        assert!(snap.counter("checker_pass_total", "ok").unwrap() >= 2);
        assert!(snap.counter("checker_fail_total", "bad").unwrap() >= 2);
        assert!(snap.histogram("checker_wall_ms", "ok").unwrap().count >= 2);
        assert!(
            snap.histogram("checker_dispatch_delay_ms", "ok")
                .unwrap()
                .count
                >= 2
        );
        assert_eq!(snap.detections.len(), 1);
        assert_eq!(snap.detections[0].checker, "bad");
        assert!(snap.flight.iter().any(|e| e.kind == "report"));
    }

    #[test]
    fn telemetry_counts_timeouts() {
        let registry = TelemetryRegistry::shared();
        let mut d = WatchdogDriver::builder()
            .config(fast_config(10, 30))
            .telemetry(Arc::clone(&registry))
            .checker(Box::new(
                FnChecker::new("hang", "c", || {
                    std::thread::sleep(Duration::from_millis(300));
                    CheckStatus::Pass
                })
                .with_timeout(Duration::from_millis(30)),
            ))
            .build()
            .unwrap();
        d.start().unwrap();
        assert!(wait_until(
            || d.stats().timeouts >= 1,
            Duration::from_secs(5)
        ));
        d.stop();
        let snap = registry.snapshot();
        assert!(snap.counter("checker_timeout_total", "hang").unwrap() >= 1);
        assert!(snap.flight.iter().any(|e| e.kind == "timeout"));
    }

    #[test]
    fn checker_ids_listed_in_order() {
        let d = WatchdogDriver::builder()
            .config(fast_config(50, 500))
            .checker(Box::new(FnChecker::new("one", "c", || CheckStatus::Pass)))
            .checker(Box::new(FnChecker::new("two", "c", || CheckStatus::Pass)))
            .build()
            .unwrap();
        assert_eq!(
            d.checker_ids(),
            vec![CheckerId::new("one"), CheckerId::new("two")]
        );
    }
}
