//! The watchdog's definitive health assessment.
//!
//! Unlike a heartbeat detector's binary alive/dead verdict, a watchdog is
//! "tasked to monitor overall software health and give a definitive
//! assessment as to whether the software is still functioning properly"
//! (paper §2). The [`HealthBoard`] aggregates failure reports into a
//! per-component verdict with time decay: a component is [`Failing`] while
//! hard failures are fresh, [`Degraded`] while only slowness is fresh, and
//! recovers to [`Healthy`] once reports age out of the window.
//!
//! [`Failing`]: ComponentHealth::Failing
//! [`Degraded`]: ComponentHealth::Degraded
//! [`Healthy`]: ComponentHealth::Healthy

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use wdog_base::clock::SharedClock;
use wdog_base::ids::ComponentId;

use crate::report::{FailureKind, FailureReport};

/// The health verdict for one component (or the whole process).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ComponentHealth {
    /// No fresh failure evidence.
    Healthy,
    /// Fresh slowness evidence only.
    Degraded,
    /// Fresh hard-failure evidence (stuck, error, corruption, assert, panic).
    Failing,
}

impl std::fmt::Display for ComponentHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ComponentHealth::Healthy => "healthy",
            ComponentHealth::Degraded => "degraded",
            ComponentHealth::Failing => "failing",
        })
    }
}

#[derive(Debug, Clone)]
struct Evidence {
    kind: FailureKind,
    at: Duration,
}

/// Aggregates failure reports into per-component health with time decay.
pub struct HealthBoard {
    clock: SharedClock,
    window: Duration,
    evidence: RwLock<HashMap<ComponentId, Vec<Evidence>>>,
}

impl HealthBoard {
    /// Creates a board where evidence stays relevant for `window`.
    pub fn new(clock: SharedClock, window: Duration) -> Arc<Self> {
        Arc::new(Self {
            clock,
            window,
            evidence: RwLock::new(HashMap::new()),
        })
    }

    /// Records a failure report as evidence.
    pub fn record(&self, report: &FailureReport) {
        let now = self.clock.now();
        let mut map = self.evidence.write();
        let v = map.entry(report.location.component.clone()).or_default();
        v.push(Evidence {
            kind: report.kind,
            at: now,
        });
        // Trim anything already out of the window to bound memory.
        let window = self.window;
        v.retain(|e| now.saturating_sub(e.at) <= window);
    }

    /// Returns the verdict for one component.
    pub fn component(&self, c: &ComponentId) -> ComponentHealth {
        let now = self.clock.now();
        let map = self.evidence.read();
        let Some(v) = map.get(c) else {
            return ComponentHealth::Healthy;
        };
        let mut verdict = ComponentHealth::Healthy;
        for e in v {
            if now.saturating_sub(e.at) > self.window {
                continue;
            }
            let level = match e.kind {
                FailureKind::Slow => ComponentHealth::Degraded,
                _ => ComponentHealth::Failing,
            };
            verdict = verdict.max(level);
        }
        verdict
    }

    /// Returns the worst verdict across all components.
    pub fn overall(&self) -> ComponentHealth {
        let components: Vec<ComponentId> = self.evidence.read().keys().cloned().collect();
        components
            .iter()
            .map(|c| self.component(c))
            .max()
            .unwrap_or(ComponentHealth::Healthy)
    }

    /// Returns every component with a non-healthy verdict, sorted by name.
    pub fn problems(&self) -> Vec<(ComponentId, ComponentHealth)> {
        let components: Vec<ComponentId> = self.evidence.read().keys().cloned().collect();
        let mut v: Vec<(ComponentId, ComponentHealth)> = components
            .into_iter()
            .filter_map(|c| {
                let h = self.component(&c);
                (h != ComponentHealth::Healthy).then_some((c, h))
            })
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }
}

impl std::fmt::Debug for HealthBoard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HealthBoard")
            .field("overall", &self.overall())
            .field("problems", &self.problems())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::FaultLocation;
    use wdog_base::clock::VirtualClock;
    use wdog_base::ids::CheckerId;

    fn report(component: &str, kind: FailureKind) -> FailureReport {
        FailureReport {
            checker: CheckerId::new("c"),
            kind,
            location: FaultLocation::new(component, "f"),
            detail: String::new(),
            payload: vec![],
            observed_latency_ms: None,
            at_ms: 0,
        }
    }

    #[test]
    fn empty_board_is_healthy() {
        let board = HealthBoard::new(VirtualClock::shared(), Duration::from_secs(10));
        assert_eq!(board.overall(), ComponentHealth::Healthy);
        assert_eq!(
            board.component(&ComponentId::new("x")),
            ComponentHealth::Healthy
        );
        assert!(board.problems().is_empty());
    }

    #[test]
    fn hard_failure_marks_failing() {
        let board = HealthBoard::new(VirtualClock::shared(), Duration::from_secs(10));
        board.record(&report("kvs.wal", FailureKind::Stuck));
        assert_eq!(
            board.component(&ComponentId::new("kvs.wal")),
            ComponentHealth::Failing
        );
        assert_eq!(board.overall(), ComponentHealth::Failing);
    }

    #[test]
    fn slow_only_marks_degraded() {
        let board = HealthBoard::new(VirtualClock::shared(), Duration::from_secs(10));
        board.record(&report("kvs.disk", FailureKind::Slow));
        assert_eq!(
            board.component(&ComponentId::new("kvs.disk")),
            ComponentHealth::Degraded
        );
    }

    #[test]
    fn evidence_decays_after_window() {
        let clock = VirtualClock::shared();
        let board = HealthBoard::new(clock.clone(), Duration::from_secs(10));
        board.record(&report("a", FailureKind::Error));
        clock.advance(Duration::from_secs(11));
        assert_eq!(
            board.component(&ComponentId::new("a")),
            ComponentHealth::Healthy
        );
        assert_eq!(board.overall(), ComponentHealth::Healthy);
    }

    #[test]
    fn components_are_independent() {
        let board = HealthBoard::new(VirtualClock::shared(), Duration::from_secs(10));
        board.record(&report("a", FailureKind::Slow));
        board.record(&report("b", FailureKind::Corruption));
        assert_eq!(
            board.component(&ComponentId::new("a")),
            ComponentHealth::Degraded
        );
        assert_eq!(
            board.component(&ComponentId::new("b")),
            ComponentHealth::Failing
        );
        let problems = board.problems();
        assert_eq!(problems.len(), 2);
        assert_eq!(problems[0].0, ComponentId::new("a"));
    }

    #[test]
    fn failing_dominates_degraded_for_same_component() {
        let board = HealthBoard::new(VirtualClock::shared(), Duration::from_secs(10));
        board.record(&report("a", FailureKind::Slow));
        board.record(&report("a", FailureKind::Stuck));
        assert_eq!(
            board.component(&ComponentId::new("a")),
            ComponentHealth::Failing
        );
    }
}
