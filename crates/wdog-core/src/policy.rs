//! Checker scheduling policy.
//!
//! The paper leaves scheduling to the watchdog driver ("a watchdog driver
//! will manage checker scheduling and execution", §3.1). The policy here is
//! deliberately simple — a fixed interval with optional jitter and an initial
//! delay — because experiment E6 sweeps the interval to show the latency
//! trade-off, and anything fancier would obscure that relationship.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// When and how often checkers run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulePolicy {
    /// Time between the starts of consecutive checking rounds.
    pub interval: Duration,
    /// Fraction of the interval used as deterministic per-round jitter
    /// (`0.0` disables). Jitter staggers rounds so checkers do not
    /// synchronize with periodic main-program work.
    pub jitter_frac: f64,
    /// Delay before the first round, letting initialization-phase state
    /// settle (the paper excludes initialization code from checking).
    pub initial_delay: Duration,
    /// Context slots older than this make a mimic checker report
    /// `NotReady` instead of running with stale arguments; `None` disables
    /// the staleness test.
    pub max_context_age: Option<Duration>,
    /// Fraction of the interval over which per-checker dispatch phases are
    /// spread (`0.0` fires every checker at the top of the round). Spreading
    /// phases avoids a thundering herd on shared substrates (disk, network)
    /// when many checkers would otherwise probe in lock-step.
    #[serde(default)]
    pub phase_frac: f64,
}

impl SchedulePolicy {
    /// A policy checking every `interval` with no jitter and no delay.
    pub fn every(interval: Duration) -> Self {
        Self {
            interval,
            jitter_frac: 0.0,
            initial_delay: Duration::ZERO,
            max_context_age: None,
            phase_frac: 0.0,
        }
    }

    /// Sets the jitter fraction, clamped to `[0, 0.5]`.
    pub fn with_jitter(mut self, frac: f64) -> Self {
        self.jitter_frac = frac.clamp(0.0, 0.5);
        self
    }

    /// Sets the initial delay.
    pub fn with_initial_delay(mut self, d: Duration) -> Self {
        self.initial_delay = d;
        self
    }

    /// Sets the maximum tolerated context age.
    pub fn with_max_context_age(mut self, d: Duration) -> Self {
        self.max_context_age = Some(d);
        self
    }

    /// Sets the phase-spread fraction, clamped to `[0, 0.9]`.
    pub fn with_phase_spread(mut self, frac: f64) -> Self {
        self.phase_frac = frac.clamp(0.0, 0.9);
        self
    }

    /// Returns the dispatch offset for a checker within each round.
    ///
    /// The offset is a pure function of the checker id (FNV-1a hashed to a
    /// fraction of `interval * phase_frac`), so schedules are stable across
    /// runs and independent of registration order — the anti-thundering-herd
    /// stagger costs nothing in reproducibility.
    pub fn phase_offset(&self, key: &str) -> Duration {
        if self.phase_frac <= 0.0 {
            return Duration::ZERO;
        }
        let h = wdog_base::rng::derive_seed(0x9e37_79b9_7f4a_7c15, key);
        // Top 53 bits → uniform fraction in [0, 1).
        let frac = (h >> 11) as f64 / (1u64 << 53) as f64;
        self.interval.mul_f64(self.phase_frac * frac)
    }

    /// Returns the sleep before round `round` (0-based), including jitter.
    ///
    /// Jitter is deterministic in the round number so runs are reproducible:
    /// round *n* is offset by `interval * jitter_frac * frac(n * φ)` where φ
    /// is the golden-ratio conjugate, giving a low-discrepancy stagger.
    pub fn round_sleep(&self, round: u64) -> Duration {
        if self.jitter_frac <= 0.0 {
            return self.interval;
        }
        const PHI: f64 = 0.618_033_988_749_894_9;
        let frac = (round as f64 * PHI).fract();
        let jitter = self.interval.mul_f64(self.jitter_frac * frac);
        self.interval + jitter
    }
}

impl Default for SchedulePolicy {
    fn default() -> Self {
        Self::every(Duration::from_secs(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_sets_interval_only() {
        let p = SchedulePolicy::every(Duration::from_millis(100));
        assert_eq!(p.interval, Duration::from_millis(100));
        assert_eq!(p.jitter_frac, 0.0);
        assert_eq!(p.initial_delay, Duration::ZERO);
        assert!(p.max_context_age.is_none());
    }

    #[test]
    fn no_jitter_means_constant_sleep() {
        let p = SchedulePolicy::every(Duration::from_millis(100));
        for r in 0..8 {
            assert_eq!(p.round_sleep(r), Duration::from_millis(100));
        }
    }

    #[test]
    fn jitter_bounded_and_deterministic() {
        let p = SchedulePolicy::every(Duration::from_millis(100)).with_jitter(0.2);
        for r in 0..64 {
            let s = p.round_sleep(r);
            assert!(s >= Duration::from_millis(100));
            assert!(s <= Duration::from_millis(120));
            assert_eq!(s, p.round_sleep(r), "non-deterministic jitter");
        }
    }

    #[test]
    fn jitter_clamped() {
        let p = SchedulePolicy::every(Duration::from_secs(1)).with_jitter(9.0);
        assert_eq!(p.jitter_frac, 0.5);
    }

    #[test]
    fn zero_phase_spread_means_no_offset() {
        let p = SchedulePolicy::every(Duration::from_millis(100));
        assert_eq!(p.phase_offset("kvs.probe.set_get"), Duration::ZERO);
    }

    #[test]
    fn phase_offsets_are_stable_bounded_and_spread() {
        let p = SchedulePolicy::every(Duration::from_millis(100)).with_phase_spread(0.5);
        let ids = [
            "kvs.wal_write_record_checker",
            "kvs.flush_once_checker",
            "kvs.compact_once_checker",
            "kvs.probe.set_get",
            "kvs.signal.memory",
        ];
        let offsets: Vec<Duration> = ids.iter().map(|id| p.phase_offset(id)).collect();
        for (id, off) in ids.iter().zip(&offsets) {
            assert!(*off < Duration::from_millis(50), "{id}: {off:?}");
            // Seed-stable: same id, same offset, every time.
            assert_eq!(*off, p.phase_offset(id));
        }
        // Distinct checkers should not all collapse onto one phase.
        let distinct: std::collections::BTreeSet<Duration> = offsets.iter().copied().collect();
        assert!(distinct.len() >= 4, "phases collapsed: {offsets:?}");
    }

    #[test]
    fn phase_spread_clamped() {
        let p = SchedulePolicy::every(Duration::from_secs(1)).with_phase_spread(7.0);
        assert_eq!(p.phase_frac, 0.9);
    }

    #[test]
    fn policy_deserializes_without_phase_field() {
        // Configs written before phase spreading existed must still load.
        let json = r#"{
            "interval": {"secs": 1, "nanos": 0},
            "jitter_frac": 0.0,
            "initial_delay": {"secs": 0, "nanos": 0},
            "max_context_age": null
        }"#;
        let p: SchedulePolicy = serde_json::from_str(json).unwrap();
        assert_eq!(p.phase_frac, 0.0);
    }

    #[test]
    fn builder_chains() {
        let p = SchedulePolicy::every(Duration::from_secs(2))
            .with_initial_delay(Duration::from_secs(5))
            .with_max_context_age(Duration::from_secs(30));
        assert_eq!(p.initial_delay, Duration::from_secs(5));
        assert_eq!(p.max_context_age, Some(Duration::from_secs(30)));
    }
}
