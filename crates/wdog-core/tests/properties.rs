//! Property tests for the sharded context table (paper §3.1 / §5.1).
//!
//! Three invariants the watchdog's correctness rests on, checked over
//! random operation sequences rather than hand-picked cases:
//!
//! 1. **Version monotonicity** — a slot's version equals the number of
//!    publishes it received, never decreases across interleaved reads, and
//!    stays 0 until the first publish.
//! 2. **One-way flow / snapshot isolation** — a checker mutating its
//!    [`ContextSnapshot`] (a deep copy) can never alter what the table or
//!    any later reader sees.
//! 3. **Baseline equivalence** — the sharded table is observationally
//!    identical to the pre-sharding single-lock [`baseline`] table on any
//!    sequential publish/read sequence.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;

use wdog_base::clock::VirtualClock;
use wdog_core::context::{baseline::BaselineContextTable, ContextTable, CtxValue};

const KEYS: [&str; 4] = ["flush", "compact", "replicate", "scan"];
const FIELDS: [&str; 3] = ["path", "len", "seq"];

/// One randomly generated table operation.
#[derive(Debug, Clone)]
enum Op {
    /// Publish `(field, value)` into `KEYS[key]`.
    Publish {
        key: usize,
        field: usize,
        value: u64,
    },
    /// Read `KEYS[key]` and check it against the model.
    Read { key: usize },
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    vec(
        prop_oneof![
            (0..KEYS.len(), 0..FIELDS.len(), any::<u64>())
                .prop_map(|(key, field, value)| Op::Publish { key, field, value }),
            (0..KEYS.len()).prop_map(|key| Op::Read { key }),
        ],
        1..80,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn versions_are_monotonic_and_count_publishes(ops in ops()) {
        let table = ContextTable::new(VirtualClock::shared());
        // Model: per-key publish count and last version seen by a read.
        let mut published: HashMap<usize, u64> = HashMap::new();
        let mut last_seen: HashMap<usize, u64> = HashMap::new();
        for op in &ops {
            match *op {
                Op::Publish { key, field, value } => {
                    table.publish(
                        KEYS[key],
                        vec![(FIELDS[field].to_owned(), CtxValue::U64(value))],
                    );
                    *published.entry(key).or_default() += 1;
                }
                Op::Read { key } => {
                    let count = published.get(&key).copied().unwrap_or(0);
                    match table.read(KEYS[key]) {
                        None => prop_assert_eq!(count, 0, "slot readable before any publish"),
                        Some(snap) => {
                            prop_assert_eq!(snap.version, count);
                            let floor = last_seen.get(&key).copied().unwrap_or(0);
                            prop_assert!(snap.version >= floor, "version went backwards");
                            last_seen.insert(key, snap.version);
                        }
                    }
                }
            }
        }
        for (key, count) in &published {
            prop_assert_eq!(table.read(KEYS[*key]).unwrap().version, *count);
        }
    }

    #[test]
    fn snapshot_mutation_never_flows_back(ops in ops(), victim in 0..KEYS.len()) {
        let table = ContextTable::new(VirtualClock::shared());
        for op in &ops {
            if let Op::Publish { key, field, value } = *op {
                table.publish(
                    KEYS[key],
                    vec![(FIELDS[field].to_owned(), CtxValue::U64(value))],
                );
            }
        }
        let reader = table.reader();
        // Skip cases where nothing was published into the victim slot.
        if let Some(mut snap) = reader.read(KEYS[victim]) {
            let before = reader.read(KEYS[victim]).unwrap();
            // A buggy checker scribbling all over its snapshot...
            snap.fields.clear();
            snap.fields
                .insert("injected".into(), CtxValue::Bytes(vec![0xde, 0xad]));
            snap.version = u64::MAX;
            // ...must be invisible to the table and every later reader.
            let after = reader.read(KEYS[victim]).unwrap();
            prop_assert_eq!(after.version, before.version);
            prop_assert_eq!(&after.fields, &before.fields);
            prop_assert!(!after.fields.contains_key("injected"));
        }
    }

    #[test]
    fn sharded_table_is_observationally_equal_to_baseline(ops in ops()) {
        let sharded = ContextTable::new(VirtualClock::shared());
        let base = BaselineContextTable::new(VirtualClock::shared());
        for op in &ops {
            match *op {
                Op::Publish { key, field, value } => {
                    let fields =
                        vec![(FIELDS[field].to_owned(), CtxValue::U64(value))];
                    sharded.publish(KEYS[key], fields.clone());
                    base.publish(KEYS[key], fields);
                }
                Op::Read { key } => {
                    let (s, b) = (sharded.read(KEYS[key]), base.read(KEYS[key]));
                    prop_assert_eq!(s.is_some(), b.is_some());
                    if let (Some(s), Some(b)) = (s, b) {
                        prop_assert_eq!(s.version, b.version);
                        prop_assert_eq!(s.fields, b.fields);
                    }
                    prop_assert_eq!(
                        sharded.is_ready(KEYS[key]),
                        base.is_ready(KEYS[key])
                    );
                }
            }
        }
    }

    #[test]
    fn concurrent_publishes_keep_per_slot_counts(
        per_thread in 1..200usize,
        threads in 1..4usize,
    ) {
        // Every (thread, slot) pair publishes `per_thread` times; slots are
        // disjoint per thread, so each slot's final version must equal
        // exactly its own publish count — no lost updates across shards.
        let table = ContextTable::new(VirtualClock::shared());
        let slots: Vec<_> = (0..threads)
            .map(|t| table.register(&format!("slot-{t}")))
            .collect();
        std::thread::scope(|scope| {
            for slot in &slots {
                let slot = Arc::clone(slot);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        slot.publish(vec![("i".into(), CtxValue::U64(i as u64))]);
                    }
                });
            }
        });
        for slot in &slots {
            let snap = slot.snapshot().unwrap();
            prop_assert_eq!(snap.version, per_thread as u64);
            prop_assert_eq!(
                snap.get("i").unwrap().as_u64(),
                Some(per_thread as u64 - 1)
            );
        }
    }
}
