//! API-surface golden test: snapshots every identifier `wdog_core::prelude`
//! exports so accidental drift (a rename, a dropped re-export) fails CI
//! instead of rippling through targets and harness.
//!
//! Rust has no runtime reflection over module exports, so the test parses
//! the `pub use` lines of `src/prelude.rs` — which is exactly the artifact
//! the contract is about.

/// Every identifier the prelude is expected to export, sorted.
///
/// To change the supported API surface, update BOTH `src/prelude.rs` and
/// this list in the same commit — that is the point.
const GOLDEN: &[&str] = &[
    "Action",
    "AtomicHistogram",
    "BaseError",
    "BaseResult",
    "Budget",
    "CallbackAction",
    "CheckFailure",
    "CheckStatus",
    "Checker",
    "CheckerFactory",
    "CheckerId",
    "Clock",
    "ComponentHealth",
    "ComponentId",
    "ContextReader",
    "ContextSlot",
    "ContextSnapshot",
    "ContextTable",
    "Counter",
    "CtxValue",
    "Degradable",
    "DetectionSample",
    "DriverBuilder",
    "DriverStats",
    "EscalatingAction",
    "ExecutionProbe",
    "FailureKind",
    "FailureReport",
    "FaultLocation",
    "FireGuard",
    "FlightEvent",
    "FnChecker",
    "Gauge",
    "GateCounters",
    "HealthBoard",
    "HistogramSummary",
    "HookSite",
    "Hooks",
    "ImpactGatedAction",
    "IoRedirect",
    "LogAction",
    "PublishGuard",
    "RealClock",
    "RestartAction",
    "RestartCounters",
    "Restartable",
    "SchedulePolicy",
    "SharedClock",
    "TelemetryRegistry",
    "TelemetrySnapshot",
    "TraceEvent",
    "TraceEventKind",
    "TraceRecorder",
    "VirtualClock",
    "WatchdogConfig",
    "WatchdogDriver",
    "WatchdogTimer",
    "WdtCounters",
    "wd_hook",
];

/// Extracts the identifiers re-exported by `pub use` statements.
///
/// Handles both brace groups (`pub use x::{A, B};`) and single imports
/// (`pub use x::C;`), which is the entire grammar prelude.rs uses.
fn exported_identifiers(source: &str) -> Vec<String> {
    let mut out = Vec::new();
    // Strip comments, then scan statement-by-statement (they end with ';').
    let code: String = source
        .lines()
        .map(|l| l.split("//").next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n");
    for stmt in code.split(';') {
        let stmt = stmt.trim();
        let Some(rest) = stmt.strip_prefix("pub use ") else {
            continue;
        };
        if let (Some(open), Some(close)) = (rest.find('{'), rest.rfind('}')) {
            for item in rest[open + 1..close].split(',') {
                let item = item.trim();
                if !item.is_empty() {
                    out.push(item.to_string());
                }
            }
        } else if let Some(last) = rest.rsplit("::").next() {
            let last = last.trim();
            if !last.is_empty() {
                out.push(last.to_string());
            }
        }
    }
    out.sort();
    out
}

#[test]
fn prelude_exports_match_golden_list() {
    let exported = exported_identifiers(include_str!("../src/prelude.rs"));
    let golden: Vec<String> = {
        let mut g: Vec<String> = GOLDEN.iter().map(|s| s.to_string()).collect();
        g.sort();
        g
    };
    let missing: Vec<_> = golden.iter().filter(|g| !exported.contains(g)).collect();
    let extra: Vec<_> = exported.iter().filter(|e| !golden.contains(e)).collect();
    assert!(
        missing.is_empty() && extra.is_empty(),
        "prelude drifted from the golden API surface.\n\
         missing from prelude: {missing:?}\n\
         unexpected in prelude: {extra:?}\n\
         If this change is intentional, update GOLDEN in {}.",
        file!()
    );
}

/// The golden list is not just text: every type name in it must actually
/// resolve through the prelude. A sample of load-bearing ones, used the way
/// callers use them, so a `pub use` pointing at a renamed item cannot pass.
#[test]
fn prelude_identifiers_resolve() {
    use wdog_core::prelude::*;

    let registry: std::sync::Arc<TelemetryRegistry> = TelemetryRegistry::shared();
    let driver: WatchdogDriver = WatchdogDriver::builder()
        .config(WatchdogConfig::default())
        .clock(RealClock::shared())
        .telemetry(registry.clone())
        .checker(Box::new(FnChecker::new("ok", "comp", || CheckStatus::Pass)))
        .build()
        .expect("builder");
    let _: DriverStats = driver.stats();
    let _: Vec<CheckerId> = driver.checker_ids();
    let snap: TelemetrySnapshot = registry.snapshot();
    assert!(snap.detections.is_empty());
    let table = ContextTable::new(RealClock::shared());
    let hooks = Hooks::new(table);
    let site: HookSite = hooks.site("k");
    wd_hook!(site, { "n" => 1u64 });
    let _: GateCounters = GateCounters::default();
    let _: RestartCounters = RestartCounters::default();
    let _: WdtCounters = WdtCounters::default();
}
