//! The shared watchdog options type.
//!
//! Every target used to carry its own near-identical options struct
//! (`kvs::wd::WdOptions`, `minizk::wd::ZkWdOptions`,
//! `miniblock::wd::DnWdOptions`). They are unified here: one tuning surface
//! plus a [`Families`] toggle set; targets express their historical defaults
//! through [`WatchdogTarget::default_options`](crate::WatchdogTarget) and
//! re-export the old names as aliases.

use std::sync::Arc;
use std::time::Duration;

use wdog_checkers::InferredSpec;
use wdog_core::{Action, TraceRecorder};
use wdog_telemetry::TelemetryRegistry;

/// Which checker families the assembled watchdog includes.
///
/// What counts as a family member is the target's call: generated mimics are
/// always `mimics`; hand-written checkers that exercise a resource or the
/// public API (kvs's API probes, miniblock's disk checkers) are `probes`;
/// health-indicator monitors (queue depths, memory watermarks) are
/// `signals`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Families {
    /// Include generated mimic checkers.
    pub mimics: bool,
    /// Include probe checkers.
    pub probes: bool,
    /// Include signal checkers.
    pub signals: bool,
    /// Include trace-inferred checkers (only effective when
    /// [`WdOptions::inferred`] carries mined specs).
    pub inferred: bool,
}

impl Families {
    /// Every family enabled.
    pub fn all() -> Self {
        Self {
            mimics: true,
            probes: true,
            signals: true,
            inferred: true,
        }
    }

    /// Exactly one family enabled, by name
    /// (`mimic`/`probe`/`signal`/`inferred`).
    pub fn only(family: &str) -> Self {
        Self {
            mimics: family == "mimic",
            probes: family == "probe",
            signals: family == "signal",
            inferred: family == "inferred",
        }
    }
}

impl Default for Families {
    fn default() -> Self {
        Self::all()
    }
}

/// Tunables for an assembled watchdog, shared by every target.
#[derive(Clone)]
pub struct WdOptions {
    /// Checking round interval.
    pub interval: Duration,
    /// Per-checker execution timeout (the stuck-detection threshold).
    pub checker_timeout: Duration,
    /// Latency above which mimicked I/O and communication ops report
    /// `Slow`. Lock/compute ops are exempt (waiting on a held lock is
    /// contention, not slowness).
    pub slow_threshold: Duration,
    /// Latency above which a successful *probe* (full API round trip)
    /// reports `Slow`; separate from the mimic threshold because a probe
    /// includes queueing delay that is normal under load.
    pub probe_slow_threshold: Duration,
    /// Maximum tolerated context age.
    pub max_context_age: Option<Duration>,
    /// Memory watermark for the signal checker, in bytes.
    pub memory_watermark: u64,
    /// Queue-depth threshold for the signal checkers.
    pub queue_threshold: usize,
    /// Which checker families to include.
    pub families: Families,
    /// Telemetry registry threaded through the assembled watchdog: the
    /// driver records per-checker timing/outcomes, the target's hooks are
    /// armed for per-site fire accounting, and fault-injection campaigns
    /// measure end-to-end detection latency against it. `None` (the
    /// default) costs one relaxed atomic load per hook fire.
    pub telemetry: Option<Arc<TelemetryRegistry>>,
    /// When set, checker executors spawn in a seed-derived permutation of
    /// registration order. Reports must be identical for every value —
    /// determinism tests sweep this to prove verdicts don't depend on
    /// spawn order.
    pub spawn_order_seed: Option<u64>,
    /// Actions invoked for every failure report, threaded into the
    /// assembled driver at build time. This is how a recovery coordinator
    /// (or any custom reaction) rides along now that drivers are sealed at
    /// [`DriverBuilder::build`](wdog_core::DriverBuilder::build) — there is
    /// no post-hoc `add_action`.
    pub actions: Vec<Arc<dyn Action>>,
    /// Mined invariant specs to register as inferred checkers (when the
    /// `inferred` family is enabled). Default campaigns carry none; the
    /// `wdog-infer` pipeline and its tests inject a mined corpus here.
    pub inferred: Vec<InferredSpec>,
    /// When set, the target's hooks and mimic checkers journal publishes
    /// and op executions into this recorder — the `wdog-infer` record mode.
    pub trace: Option<Arc<TraceRecorder>>,
}

impl Default for WdOptions {
    fn default() -> Self {
        Self {
            interval: Duration::from_millis(500),
            checker_timeout: Duration::from_secs(2),
            slow_threshold: Duration::from_millis(300),
            probe_slow_threshold: Duration::from_millis(500),
            max_context_age: None,
            memory_watermark: 64 << 20,
            queue_threshold: 512,
            families: Families::all(),
            telemetry: None,
            spawn_order_seed: None,
            actions: Vec::new(),
            inferred: Vec::new(),
            trace: None,
        }
    }
}

impl std::fmt::Debug for WdOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WdOptions")
            .field("interval", &self.interval)
            .field("checker_timeout", &self.checker_timeout)
            .field("slow_threshold", &self.slow_threshold)
            .field("probe_slow_threshold", &self.probe_slow_threshold)
            .field("max_context_age", &self.max_context_age)
            .field("memory_watermark", &self.memory_watermark)
            .field("queue_threshold", &self.queue_threshold)
            .field("families", &self.families)
            .field("telemetry", &self.telemetry.is_some())
            .field("spawn_order_seed", &self.spawn_order_seed)
            .field("actions", &self.actions.len())
            .field("inferred", &self.inferred.len())
            .field("trace", &self.trace.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_only_selects_one() {
        assert_eq!(
            Families::only("mimic"),
            Families {
                mimics: true,
                probes: false,
                signals: false,
                inferred: false
            }
        );
        assert_eq!(
            Families::only("signal"),
            Families {
                mimics: false,
                probes: false,
                signals: true,
                inferred: false
            }
        );
        assert_eq!(
            Families::only("inferred"),
            Families {
                mimics: false,
                probes: false,
                signals: false,
                inferred: true
            }
        );
        assert_eq!(Families::default(), Families::all());
    }

    #[test]
    fn default_options_enable_everything() {
        let o = WdOptions::default();
        assert!(o.families.mimics && o.families.probes && o.families.signals);
        assert!(o.checker_timeout > o.interval);
    }
}
