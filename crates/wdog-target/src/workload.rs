//! The generic steady-workload driver.
//!
//! Campaign runs need background load so hooks fire, contexts stay fresh,
//! and observer-style baselines have outcomes to watch. The request *mix*
//! is target-specific, but the thread pool, pacing, seeding, and outcome
//! accounting are not — so targets implement one request closure and
//! [`spawn_workload`] does the rest.
//!
//! Randomness is pre-drawn into a [`WorkloadTicket`] so request closures
//! stay deterministic given the ticket and need no RNG of their own.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rand::Rng;

use wdog_base::clock::{spawn_on, SharedClock};
use wdog_base::error::BaseResult;
use wdog_base::rng::{derive_seed, seeded};

use crate::WorkloadObserver;

/// Shape of the steady workload, shared by every target.
#[derive(Debug, Clone)]
pub struct WorkloadProfile {
    /// Number of client threads.
    pub threads: usize,
    /// Pause between requests per thread.
    pub period: Duration,
    /// Key-space size.
    pub keys: usize,
    /// Fraction of requests that are writes.
    pub write_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadProfile {
    fn default() -> Self {
        Self {
            threads: 2,
            period: Duration::from_millis(10),
            keys: 256,
            write_fraction: 0.5,
            seed: 7,
        }
    }
}

/// One pre-drawn request: the target's closure turns it into a real call.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadTicket {
    /// Key index in `[0, profile.keys)`.
    pub key: usize,
    /// Whether this request is a write.
    pub write: bool,
    /// Uniform roll in `[0, 10)` for sub-op selection (e.g. SET vs DEL).
    pub roll: u32,
    /// A random value payload discriminator.
    pub value: u32,
}

/// The per-request closure a target supplies.
pub type RequestFn = Arc<dyn Fn(&WorkloadTicket) -> BaseResult<()> + Send + Sync>;

/// A running workload; stops (and joins) on [`WorkloadHandle::stop`] or drop.
pub struct WorkloadHandle {
    ok: Arc<AtomicU64>,
    failed: Arc<AtomicU64>,
    running: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl WorkloadHandle {
    /// Returns `(ok, failed)` counters so far.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.ok.load(Ordering::Relaxed),
            self.failed.load(Ordering::Relaxed),
        )
    }

    /// Raises the stop flag without joining; loops exit at their next
    /// pacing check. Used by simulation harnesses to land the stop at an
    /// exact virtual instant before performing the blocking joins.
    pub fn request_stop(&self) {
        self.running.store(false, Ordering::Relaxed);
    }

    /// Stops and joins the workload threads.
    pub fn stop(&mut self) {
        self.running.store(false, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for WorkloadHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for WorkloadHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkloadHandle")
            .field("counters", &self.counters())
            .finish()
    }
}

/// Starts `profile.threads` request loops on the real clock. See
/// [`spawn_workload_on`].
pub fn spawn_workload(
    profile: &WorkloadProfile,
    observer: Option<WorkloadObserver>,
    request: RequestFn,
) -> WorkloadHandle {
    spawn_workload_on(
        &wdog_base::clock::RealClock::shared(),
        profile,
        observer,
        request,
    )
}

/// Starts `profile.threads` request loops, each calling `request` with a
/// deterministically drawn ticket, pacing by `profile.period` on `clock`,
/// counting outcomes, and reporting each to `observer` when one is
/// attached. Each loop registers as a clock actor, so under a simulated
/// clock the request cadence is exact virtual time.
pub fn spawn_workload_on(
    clock: &SharedClock,
    profile: &WorkloadProfile,
    observer: Option<WorkloadObserver>,
    request: RequestFn,
) -> WorkloadHandle {
    let ok = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let running = Arc::new(AtomicBool::new(true));
    let mut threads = Vec::new();
    for t in 0..profile.threads.max(1) {
        let ok = Arc::clone(&ok);
        let failed = Arc::clone(&failed);
        let running = Arc::clone(&running);
        let observer = observer.clone();
        let request = Arc::clone(&request);
        let profile = profile.clone();
        let loop_clock = Arc::clone(clock);
        threads.push(spawn_on(clock, &format!("workload-{t}"), move || {
            let mut rng = seeded(derive_seed(profile.seed, &format!("wl-{t}")));
            while running.load(Ordering::Relaxed) {
                let ticket = WorkloadTicket {
                    key: rng.gen_range(0..profile.keys.max(1)),
                    write: rng.gen_bool(profile.write_fraction),
                    roll: rng.gen_range(0..10u32),
                    value: rng.gen(),
                };
                let success = request(&ticket).is_ok();
                if success {
                    ok.fetch_add(1, Ordering::Relaxed);
                } else {
                    failed.fetch_add(1, Ordering::Relaxed);
                }
                if let Some(obs) = &observer {
                    obs(success);
                }
                loop_clock.sleep(profile.period);
            }
        }));
    }
    WorkloadHandle {
        ok,
        failed,
        running,
        threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn workload_counts_and_observes() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let observer: WorkloadObserver = Arc::new(move |ok| seen2.lock().unwrap().push(ok));
        let mut handle = spawn_workload(
            &WorkloadProfile {
                threads: 2,
                period: Duration::from_millis(1),
                ..WorkloadProfile::default()
            },
            Some(observer),
            Arc::new(|ticket| {
                if ticket.key % 7 == 0 {
                    Err(wdog_base::error::BaseError::Corruption("x".into()))
                } else {
                    Ok(())
                }
            }),
        );
        std::thread::sleep(Duration::from_millis(100));
        handle.stop();
        let (ok, failed) = handle.counters();
        assert!(ok > 0, "no successes recorded");
        assert!(failed > 0, "key%7 failures never happened");
        assert_eq!(seen.lock().unwrap().len() as u64, ok + failed);
    }

    #[test]
    fn tickets_stay_in_bounds() {
        let mut handle = spawn_workload(
            &WorkloadProfile {
                threads: 1,
                period: Duration::from_millis(1),
                keys: 16,
                ..WorkloadProfile::default()
            },
            None,
            Arc::new(|ticket| {
                assert!(ticket.key < 16);
                assert!(ticket.roll < 10);
                Ok(())
            }),
        );
        std::thread::sleep(Duration::from_millis(50));
        handle.stop();
    }
}
