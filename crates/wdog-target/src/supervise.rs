//! Generation-flag supervision for restartable background components.
//!
//! The paper's §5.2 recovery story requires background loops that can be
//! *individually* retired and replaced: each supervised component owns a
//! generation flag its loop polls alongside the process-wide running flag.
//! Restarting swaps in a fresh flag (the old thread exits at its next poll,
//! or whenever an armed fault releases it) and the caller spawns a
//! replacement; degrading retires the generation with no replacement.
//!
//! Targets keep one [`Supervised`] per restartable component and expose
//! component-name-keyed restart/degrade entry points the recovery
//! coordinator drives through [`RecoverySurface`](crate::RecoverySurface).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// One restartable background component's supervision state.
pub struct Supervised {
    /// The current generation's liveness flag; swapped on restart.
    alive: Mutex<Arc<AtomicBool>>,
    restarts: AtomicU64,
    degraded: AtomicBool,
}

impl Default for Supervised {
    fn default() -> Self {
        Self::new()
    }
}

impl Supervised {
    /// Creates supervision state with a live first generation.
    pub fn new() -> Self {
        Self {
            alive: Mutex::new(Arc::new(AtomicBool::new(true))),
            restarts: AtomicU64::new(0),
            degraded: AtomicBool::new(false),
        }
    }

    /// The flag the current generation's loop must poll.
    pub fn flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.alive.lock())
    }

    /// Retires the current generation and returns the fresh flag the
    /// replacement loop must poll.
    pub fn next_generation(&self) -> Arc<AtomicBool> {
        let mut cur = self.alive.lock();
        cur.store(false, Ordering::Relaxed);
        let fresh = Arc::new(AtomicBool::new(true));
        *cur = Arc::clone(&fresh);
        self.restarts.fetch_add(1, Ordering::Relaxed);
        self.degraded.store(false, Ordering::Relaxed);
        fresh
    }

    /// Retires the current generation with no replacement (degrade).
    pub fn shed(&self) {
        self.alive.lock().store(false, Ordering::Relaxed);
        self.degraded.store(true, Ordering::Relaxed);
    }

    /// Generations retired by restart so far.
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    /// Whether the component is currently shed.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generations_retire_and_replace() {
        let s = Supervised::new();
        let g0 = s.flag();
        assert!(g0.load(Ordering::Relaxed));
        let g1 = s.next_generation();
        assert!(!g0.load(Ordering::Relaxed), "old generation retired");
        assert!(g1.load(Ordering::Relaxed));
        assert_eq!(s.restarts(), 1);
        assert!(!s.is_degraded());
    }

    #[test]
    fn shed_marks_degraded_until_next_generation() {
        let s = Supervised::new();
        let g0 = s.flag();
        s.shed();
        assert!(!g0.load(Ordering::Relaxed));
        assert!(s.is_degraded());
        // A later restart revives the component.
        let g1 = s.next_generation();
        assert!(g1.load(Ordering::Relaxed));
        assert!(!s.is_degraded());
    }
}
