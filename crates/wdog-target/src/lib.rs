//! The `WatchdogTarget` trait layer.
//!
//! Every instrumented system — the LSM store (`kvs`), the coordination
//! service (`minizk`), the block store (`miniblock`) — provides the same
//! ingredients to AutoWatchdog and to the experiment harness: an IR
//! self-description, real-operation implementations behind the generated
//! plan, hand-written probe/signal checkers, a fault-application surface,
//! and a steady workload. This crate names that contract so the harness can
//! run one generic campaign over `&dyn WatchdogTarget` instead of one
//! hand-rolled runner per system.
//!
//! The split is two-level:
//!
//! - [`WatchdogTarget`] is the *static* side: what the system is
//!   (name, IR, tuned options, fault catalogue) and how to boot one
//!   instance of it.
//! - [`TargetInstance`] is one *booted* testbed: simulated disk/net wired
//!   up, replicas spawned, ready to build a watchdog, take faults, and
//!   serve workload.

use std::sync::Arc;

use wdog_base::clock::SharedClock;
use wdog_base::error::BaseResult;

use wdog_core::prelude::*;
use wdog_gen::ir::ProgramIr;
use wdog_gen::plan::WatchdogPlan;

use faults::catalog::{gray_failure_catalog, Scenario, TargetProfile};
use faults::injector::Injector;
use faults::spec::FaultKind;

pub mod options;
pub mod supervise;
pub mod workload;

pub use options::{Families, WdOptions};
pub use supervise::Supervised;
pub use workload::{
    spawn_workload, spawn_workload_on, RequestFn, WorkloadHandle, WorkloadProfile, WorkloadTicket,
};

/// Re-exported so targets and campaign runners share one recovery contract
/// without depending on `wdog-recover` directly.
pub use wdog_recover::{RecoverySurface, VerifierFactory};

/// Instantiates the inferred checker family from the mined specs riding in
/// `opts.inferred`.
///
/// Shared by every target's `build_watchdog`: specs carry their own identity
/// (id, blamed component, context key), so instantiation is uniform — the
/// target only contributes the context reader the checkers evaluate
/// against. Returns an empty vector when the family is disabled or no specs
/// were supplied (the default for every campaign that has not run
/// `wdog-infer`).
pub fn inferred_checkers(opts: &WdOptions, reader: &ContextReader) -> Vec<Box<dyn Checker>> {
    if !opts.families.inferred {
        return Vec::new();
    }
    opts.inferred
        .iter()
        .map(|spec| {
            Box::new(wdog_checkers::InferredChecker::new(
                spec.clone(),
                reader.clone(),
            )) as Box<dyn Checker>
        })
        .collect()
}

/// A full API round trip against the target, for the external-probe
/// baseline detector (matches `detectors::probe_client::ProbeFn`).
pub type ApiProbe = Arc<dyn Fn() -> BaseResult<()> + Send + Sync>;

/// A cheap is-the-process-alive check, for the heartbeat baseline detector
/// (matches `detectors::heartbeat::BeatFn`).
pub type LivenessProbe = Arc<dyn Fn() -> bool + Send + Sync>;

/// Receives each workload request outcome (`true` = success); campaign
/// runners wire this to the client-complaint baseline.
pub type WorkloadObserver = Arc<dyn Fn(bool) + Send + Sync>;

/// Invoked when a `ProcessCrash` fault fires so the instance can stop its
/// process-level activity.
pub type CrashSignal = Arc<dyn Fn() + Send + Sync>;

/// Which fault classes a target's testbed can physically apply.
///
/// Used to filter the shared gray-failure catalogue down to scenarios a
/// target can actually run: filtering is by *injectability* only —
/// whether a detector catches the fault stays an experimental outcome,
/// never a reason to drop a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSurface {
    /// Simulated-disk faults (stuck/slow/error/corrupt) can land.
    pub disk: bool,
    /// Simulated-network faults (block/drop/slow) can land.
    pub net: bool,
    /// The process stall point (runtime-pause analog) is wired.
    pub stall: bool,
    /// Cooperative fault toggles (task-stuck, busy-loop, logic-corruption,
    /// memory-leak) are polled by the target's code.
    pub toggles: bool,
    /// A crash hook stops the process.
    pub crash: bool,
}

impl FaultSurface {
    /// Everything wired — the `kvs` reference target.
    pub const FULL: Self = Self {
        disk: true,
        net: true,
        stall: true,
        toggles: true,
        crash: true,
    };

    /// Substrate faults plus crash only — targets without cooperative
    /// toggles or a stall point.
    pub const SUBSTRATE: Self = Self {
        disk: true,
        net: true,
        stall: false,
        toggles: false,
        crash: true,
    };

    /// Whether `kind` can be applied on this surface.
    pub fn supports(&self, kind: &FaultKind) -> bool {
        match kind {
            FaultKind::ProcessCrash => self.crash,
            FaultKind::DiskStuck { .. }
            | FaultKind::DiskSlow { .. }
            | FaultKind::DiskError { .. }
            | FaultKind::DiskCorruptWrites { .. } => self.disk,
            FaultKind::NetBlockSend { .. }
            | FaultKind::NetDrop { .. }
            | FaultKind::NetSlow { .. } => self.net,
            FaultKind::RuntimePause { .. } => self.stall,
            FaultKind::TaskStuck { .. }
            | FaultKind::TaskBusyLoop { .. }
            | FaultKind::LogicCorruption { .. }
            | FaultKind::MemoryLeak { .. } => self.toggles,
        }
    }
}

/// The shared gray-failure catalogue specialized to a target: scenario
/// locations come from `profile`, and scenarios whose fault class the
/// target's `surface` cannot apply are dropped.
pub fn catalog_for(profile: &TargetProfile, surface: FaultSurface) -> Vec<Scenario> {
    gray_failure_catalog(profile)
        .into_iter()
        .filter(|s| surface.supports(&s.kind))
        .collect()
}

/// A system that AutoWatchdog can instrument and the harness can campaign
/// against.
pub trait WatchdogTarget: Send + Sync {
    /// Stable short name (`kvs`, `minizk`, `miniblock`) used in table file
    /// names and `--target` selectors.
    fn name(&self) -> &'static str;

    /// The program self-description consumed by program logic reduction.
    fn describe_ir(&self) -> ProgramIr;

    /// The options tuned for this target's latency envelope — what the
    /// target's historical per-system options struct defaulted to.
    fn default_options(&self) -> WdOptions;

    /// The gray-failure scenarios this target can run, with locations
    /// (path prefixes, link addresses, toggles, blame hints) mapped onto
    /// this target's layout.
    fn catalog(&self) -> Vec<Scenario>;

    /// The canonical blameable components of this target, as substrings a
    /// report location can be matched against. Chaos campaigns use this
    /// for *wrong-component* pinpoint accounting: a report that blames a
    /// known component which no active fault implicates is a mislocated
    /// detection, not background noise. The default derives the list from
    /// the catalogue's blame hints; targets override it to name components
    /// the shared catalogue never hints at.
    fn components(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .catalog()
            .into_iter()
            .map(|s| s.expected.component_hint)
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// The cluster → process → component kill hierarchy for this target's
    /// testbed. The default is the canonical single-process shape: the sole
    /// process hosts the in-process watchdog, so its guard vetoes process-
    /// and cluster-level kills while component kills stay available to
    /// fault schedules. Campaign composition consults this instead of
    /// hard-coding which fault classes are in scope.
    fn kill_hierarchy(&self) -> simio::KillHierarchy {
        simio::KillHierarchy::single_process(self.name(), &self.components())
    }

    /// Boots one isolated testbed instance seeded with `seed` on the real
    /// clock. Prefer [`WatchdogTarget::start_on`] when the caller owns the
    /// clock (simulation, virtual-time tests).
    fn start(&self, seed: u64) -> BaseResult<Box<dyn TargetInstance>> {
        self.start_on(seed, wdog_base::clock::RealClock::shared())
    }

    /// Boots one isolated testbed instance seeded with `seed`, with every
    /// background loop, latency model, and substrate paced by `clock`.
    fn start_on(&self, seed: u64, clock: SharedClock) -> BaseResult<Box<dyn TargetInstance>>;
}

/// One booted testbed of a [`WatchdogTarget`].
pub trait TargetInstance: Send {
    /// The instance's clock (shared with its simulated I/O).
    fn clock(&self) -> SharedClock;

    /// Assembles the full in-process watchdog — generated plan reduced from
    /// the IR, instantiated over the real-op table, plus the hand-written
    /// families `opts.families` enables — and starts its driver.
    fn build_watchdog(&self, opts: &WdOptions) -> BaseResult<(WatchdogDriver, WatchdogPlan)>;

    /// A fault injector wired to every surface this instance supports;
    /// `on_crash` fires when a `ProcessCrash` fault arms.
    fn injector(&self, on_crash: CrashSignal) -> Injector;

    /// Starts the steady workload; request outcomes go to `observer`.
    fn start_workload(&mut self, profile: &WorkloadProfile, observer: Option<WorkloadObserver>);

    /// The hot client request path for the open-loop load plane
    /// (`harness::load` / `wdog-load`): the same request mix as the steady
    /// workload, but returned as a bare closure so the load generator owns
    /// pacing, threading, and latency accounting. Implementations prepare
    /// a key space of `keys` entries so every ticket in `[0, keys)` hits a
    /// real object. `None` when the instance serves no high-rate client
    /// surface.
    fn load_surface(&self, _keys: usize) -> Option<RequestFn> {
        None
    }

    /// Arms or disarms every hook site on the instance — the load plane's
    /// disarmed baseline flips this off to measure the bare request path.
    /// The default does nothing (no hooks to toggle).
    fn set_hooks_enabled(&self, _enabled: bool) {}

    /// Arms trace recording on the instance's hooks: every context publish
    /// is journaled into `recorder` for `wdog-infer` to mine. Returns
    /// whether the instance supports tracing; the default does nothing and
    /// reports `false` (no hooks to trace).
    fn attach_trace(&self, _recorder: &std::sync::Arc<wdog_core::TraceRecorder>) -> bool {
        false
    }

    /// Fires auxiliary code paths the steady workload never reaches
    /// (follower snapshot syncs, scrub passes, ...), without blocking —
    /// work is kicked onto the instance's own threads. Trace recording
    /// calls this mid-run so inferred invariants cover those loops too.
    /// Returns whether anything was driven; the default has nothing to
    /// drive and reports `false`.
    fn exercise_auxiliary(&self) -> bool {
        false
    }

    /// `(ok, failed)` workload request counts so far.
    fn workload_counters(&self) -> (u64, u64);

    /// Stops and joins the workload threads.
    fn stop_workload(&mut self);

    /// Raises every stop flag — workload and background loops — without
    /// joining anything. Under a simulated clock a harness calls this while
    /// virtual time is frozen so all loops observe the same stop instant;
    /// the blocking joins ([`TargetInstance::stop_workload`],
    /// [`TargetInstance::teardown`]) follow after the caller deregisters
    /// from the clock. The default does nothing.
    fn request_stop(&self) {}

    /// A full client round trip for the external-probe baseline.
    fn api_probe(&self) -> ApiProbe;

    /// A process-liveness check for the heartbeat baseline.
    fn liveness_probe(&self) -> LivenessProbe;

    /// How many errors the target's own error handling has absorbed —
    /// campaign scoring uses this to detect silently-masked faults.
    fn errors_handled(&self) -> u64;

    /// The component-scoped recovery surface — restart/degrade handles plus
    /// verification re-checks — for the closed-loop recovery coordinator.
    /// `None` means the instance supports detection only.
    fn recovery_surface(&self) -> Option<RecoverySurface> {
        None
    }

    /// Per-op call/fault counter tables from the instance's simulated
    /// substrates, `(disk, net)` — the turso-style `nr_*_calls` /
    /// `nr_*_faults` accounting that campaign telemetry exports as the
    /// `sim_io_*` families. `None` when the instance runs on no simulated
    /// I/O.
    fn io_stats(&self) -> Option<(simio::disk::DiskOpStats, simio::net::NetOpStats)> {
        None
    }

    /// Clears every armed fault on the instance's surfaces (used at
    /// teardown so background threads can drain).
    fn clear_faults(&self);

    /// Stops the system's own threads (replicas, pipelines, servers).
    fn teardown(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surfaces_gate_fault_kinds() {
        assert!(FaultSurface::FULL.supports(&FaultKind::RuntimePause { millis: 1 }));
        assert!(!FaultSurface::SUBSTRATE.supports(&FaultKind::RuntimePause { millis: 1 }));
        assert!(!FaultSurface::SUBSTRATE.supports(&FaultKind::TaskStuck { toggle: "t".into() }));
        assert!(FaultSurface::SUBSTRATE.supports(&FaultKind::ProcessCrash));
        assert!(FaultSurface::SUBSTRATE.supports(&FaultKind::DiskStuck {
            path_prefix: String::new()
        }));
    }

    #[test]
    fn substrate_catalog_is_a_strict_subset() {
        let p = TargetProfile::default();
        let full = catalog_for(&p, FaultSurface::FULL);
        let sub = catalog_for(&p, FaultSurface::SUBSTRATE);
        assert_eq!(full.len(), gray_failure_catalog(&p).len());
        assert!(sub.len() < full.len());
        for s in &sub {
            assert!(full.iter().any(|f| f.id == s.id));
        }
        // The crash baseline must survive substrate filtering.
        assert!(sub.iter().any(|s| s.id == "process-crash"));
    }
}
