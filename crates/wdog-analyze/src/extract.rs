//! IR extraction: from lexed source to `wdog_gen::ProgramIr`.
//!
//! This is the paper's §4.1 front end (Soot over bytecode, there) rebuilt
//! over the token model:
//!
//! 1. **Entry discovery** — `spawn(move || ...)` sites become
//!    continuously-executed entry functions: named spawn targets
//!    (`spawn(move || worker_loop(..))`) mark the target; inline closures
//!    become synthetic entries named after the hook context key they bind
//!    (or a `// wdog: region <name>` annotation). Functions that fire a
//!    hook key but are reachable from no entry are promoted to entries —
//!    they run on caller threads (e.g. a request-path `write_block`).
//! 2. **Operation classification** — every call site is matched against
//!    the shared [`wdog_gen::patterns`] rule table; resources come from
//!    string-literal arguments, crate consts, `// wdog: resource` function
//!    defaults, or the receiver chain (locks).
//! 3. **Call graph** — unresolved calls are edges when the callee name is
//!    unique in the crate (the extractor's stand-in for devirtualization;
//!    ambiguous names — trait methods with several impls — are skipped,
//!    which is exactly where `// wdog: vulnerable` annotations step in).
//! 4. **Loop tracking** — `loop`/`while`/`for` bodies set `in_loop`.
//!
//! Annotations (`// wdog: <directive>` on the line above, or up to two
//! lines above, the item they govern):
//!
//! | directive | meaning |
//! |---|---|
//! | `vulnerable [name=N] [kind=K] [resource=R]` | next call becomes an op; without `kind=`, a custom (annotated) op |
//! | `resource R` | above an `fn`: default resource for its resource-less ops |
//! | `region NAME` | next `spawn` closure becomes entry `NAME` |
//! | `ignore` | next `spawn` closure or call is invisible to extraction |

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use wdog_gen::drift::SourceRef;
use wdog_gen::ir::{Function, OpKind, Operation, ProgramIr};
use wdog_gen::patterns::{classify_callee, kind_for_label, resource_family};

use crate::lexer::{Tok, Token};
use crate::model::{matching_brace, matching_paren, CrateModel, SourceFile};

/// Scope configuration for one target crate.
#[derive(Debug, Clone)]
pub struct TargetConfig {
    /// Program name, matching the target's `describe_ir()` name.
    pub name: &'static str,
    /// Source directory, workspace-relative.
    pub src_dir: &'static str,
    /// File names excluded from function analysis (still scanned for
    /// consts). Watchdog integration (`wd.rs`, `target.rs`), peer
    /// processes, and state-manager internals below the op granularity
    /// the IR models.
    pub exclude: &'static [&'static str],
}

/// The three reproduction targets.
pub const TARGETS: &[TargetConfig] = &[
    TargetConfig {
        name: "kvs",
        src_dir: "crates/kvs/src",
        exclude: &["wd.rs", "target.rs", "index.rs", "partition.rs"],
    },
    TargetConfig {
        name: "minizk",
        src_dir: "crates/minizk/src",
        exclude: &["wd.rs", "target.rs", "heartbeat.rs", "bug2201.rs"],
    },
    TargetConfig {
        name: "miniblock",
        src_dir: "crates/miniblock/src",
        exclude: &["wd.rs", "target.rs", "namenode.rs", "disk_checker.rs"],
    },
];

/// Looks up a builtin target by name.
pub fn target_named(name: &str) -> Option<&'static TargetConfig> {
    TARGETS.iter().find(|t| t.name == name)
}

/// The workspace root, resolved from this crate's manifest location.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Extraction output: the IR plus everything drift linting needs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExtractedProgram {
    /// The extracted IR.
    pub ir: ProgramIr,
    /// Source site per op id (`function#op`).
    pub sites: BTreeMap<String, SourceRef>,
    /// Context keys fired at runtime, with the field names they publish.
    pub regions_fired: BTreeMap<String, BTreeSet<String>>,
    /// Non-fatal diagnostics from extraction.
    pub notes: Vec<String>,
}

/// Reads and extracts a builtin or custom target from disk.
pub fn extract_target(cfg: &TargetConfig) -> std::io::Result<ExtractedProgram> {
    let dir = workspace_root().join(cfg.src_dir);
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    paths.sort();
    let mut files = Vec::new();
    for path in paths {
        let fname = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_owned();
        let src = std::fs::read_to_string(&path)?;
        let excluded = cfg.exclude.contains(&fname.as_str());
        files.push(SourceFile::parse(
            format!("{}/{}", cfg.src_dir, fname),
            &src,
            excluded,
        ));
    }
    Ok(extract_model(cfg.name, CrateModel::build(files)))
}

/// Restricts `ir` to the regions rooted at `entries` (reachable closure).
/// Used to compare against a description that deliberately covers fewer
/// regions — undescribed regions are lint findings, not noise.
pub fn restrict_to_regions(ir: &ProgramIr, entries: &BTreeSet<String>) -> ProgramIr {
    let mut keep: BTreeSet<String> = BTreeSet::new();
    let mut stack: Vec<String> = Vec::new();
    for f in ir.functions.values() {
        if f.long_running && entries.contains(&f.name) {
            stack.push(f.name.clone());
        }
    }
    while let Some(name) = stack.pop() {
        if !keep.insert(name.clone()) {
            continue;
        }
        if let Some(f) = ir.functions.get(&name) {
            for callee in f.callees() {
                stack.push(callee.to_owned());
            }
        }
    }
    ProgramIr {
        name: ir.name.clone(),
        functions: ir
            .functions
            .iter()
            .filter(|(n, _)| keep.contains(*n))
            .map(|(n, f)| (n.clone(), f.clone()))
            .collect(),
    }
}

/// A parsed `// wdog:` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Directive {
    Vulnerable {
        name: Option<String>,
        kind: Option<OpKind>,
        resource: Option<String>,
    },
    Resource(String),
    Region(String),
    Ignore,
}

fn parse_directive(body: &str) -> Option<Directive> {
    let mut words = body.split_whitespace();
    match words.next()? {
        "ignore" => Some(Directive::Ignore),
        "resource" => Some(Directive::Resource(words.next()?.to_owned())),
        "region" => Some(Directive::Region(words.next()?.to_owned())),
        "vulnerable" => {
            let mut name = None;
            let mut kind = None;
            let mut resource = None;
            for word in words {
                if let Some(v) = word.strip_prefix("name=") {
                    name = Some(v.to_owned());
                } else if let Some(v) = word.strip_prefix("kind=") {
                    kind = kind_for_label(v);
                } else if let Some(v) = word.strip_prefix("resource=") {
                    resource = Some(v.to_owned());
                }
            }
            Some(Directive::Vulnerable {
                name,
                kind,
                resource,
            })
        }
        _ => None,
    }
}

/// One analysis unit: a declared function or a synthetic spawn closure.
#[derive(Debug)]
struct Unit {
    name: String,
    file: usize,
    sig_line: u32,
    body: std::ops::Range<usize>,
    /// Token ranges inside `body` to skip (spawn argument groups).
    skip: Vec<std::ops::Range<usize>>,
    entry: bool,
    synthetic: bool,
    /// Original declared name before any entry rename (for resolution).
    decl_name: String,
}

#[derive(Debug, Default)]
struct UnitFacts {
    ops: Vec<Operation>,
    /// Line per op, parallel to `ops`.
    op_lines: Vec<u32>,
    /// Context keys this unit fires, with published field names.
    fires: BTreeMap<String, BTreeSet<String>>,
}

struct Extractor {
    program: String,
    model: CrateModel,
    units: Vec<Unit>,
    /// Struct-field hook sites: field name -> context key.
    field_sites: BTreeMap<String, String>,
    /// Per-file consumed-annotation flags.
    used_ann: Vec<Vec<bool>>,
    notes: Vec<String>,
}

/// Extracts a program from an in-memory crate model (fs-free; tests use
/// this directly).
pub fn extract_model(program: &str, model: CrateModel) -> ExtractedProgram {
    let used_ann = model
        .files
        .iter()
        .map(|f| vec![false; f.annotations.len()])
        .collect();
    let mut ex = Extractor {
        program: program.to_owned(),
        model,
        units: Vec::new(),
        field_sites: BTreeMap::new(),
        used_ann,
        notes: Vec::new(),
    };
    ex.collect_field_sites();
    ex.collect_units();
    ex.assemble()
}

impl Extractor {
    fn tokens(&self, file: usize) -> &[Token] {
        &self.model.files[file].tokens
    }

    /// Finds and consumes an unconsumed directive of the shape `want`
    /// within `window` lines above (or on) `line` in `file`.
    fn take_directive(
        &mut self,
        file: usize,
        line: u32,
        window: u32,
        want: fn(&Directive) -> bool,
    ) -> Option<Directive> {
        let anns = &self.model.files[file].annotations;
        for (i, ann) in anns.iter().enumerate() {
            if self.used_ann[file][i] || ann.line > line || line - ann.line > window {
                continue;
            }
            if let Some(d) = parse_directive(&ann.body) {
                if want(&d) {
                    self.used_ann[file][i] = true;
                    return Some(d);
                }
            }
        }
        None
    }

    /// Pre-pass: `field: hooks.site("key")` struct-field bindings, found
    /// anywhere in any included file.
    fn collect_field_sites(&mut self) {
        let mut found = Vec::new();
        for file in self.model.files.iter().filter(|f| !f.excluded) {
            let toks = &file.tokens;
            for i in 0..toks.len() {
                if toks[i].ident() != Some("site") {
                    continue;
                }
                let Some((key, _)) = site_call_key(toks, i) else {
                    continue;
                };
                if let Some(Binding::Field(name)) = site_binding(toks, i) {
                    found.push((name, key));
                }
            }
        }
        for (name, key) in found {
            self.field_sites.insert(name, key);
        }
    }

    /// Discovers units: declared fns, spawn-target entries, and synthetic
    /// closure entries; computes skip ranges for spawn argument groups.
    fn collect_units(&mut self) {
        for decl in self.model.fns.clone() {
            self.units.push(Unit {
                name: decl.name.clone(),
                decl_name: decl.name,
                file: decl.file,
                sig_line: decl.sig_line,
                body: decl.body,
                skip: Vec::new(),
                entry: false,
                synthetic: false,
            });
        }
        let mut named_entries: BTreeSet<String> = BTreeSet::new();
        let mut synthetics: Vec<Unit> = Vec::new();
        for u in 0..self.units.len() {
            let (file, body) = (self.units[u].file, self.units[u].body.clone());
            let mut i = body.start;
            while i < body.end {
                // `spawn_on(clock, name, closure)` is the clock-registered
                // wrapper over `thread::spawn` — same entry semantics.
                let is_spawn = matches!(self.tokens(file)[i].ident(), Some("spawn" | "spawn_on"))
                    && self
                        .tokens(file)
                        .get(i + 1)
                        .is_some_and(|t| t.is_punct('('));
                if !is_spawn {
                    i += 1;
                    continue;
                }
                let open = i + 1;
                let Some(close) = matching_paren(self.tokens(file), open) else {
                    i += 1;
                    continue;
                };
                let Some(closure) = closure_body(self.tokens(file), open, close) else {
                    i += 1; // e.g. `Follower::spawn(net, addr)` — a plain call
                    continue;
                };
                // The whole spawn argument group is invisible to the
                // parent's own walk; spawned work is its own unit.
                self.units[u].skip.push(open..close + 1);
                let spawn_line = self.tokens(file)[i].line;
                if self
                    .take_directive(file, spawn_line, 3, |d| matches!(d, Directive::Ignore))
                    .is_some()
                {
                    self.notes
                        .push(format!("ignored spawn at line {spawn_line}"));
                    i = close + 1;
                    continue;
                }
                let region =
                    self.take_directive(file, spawn_line, 3, |d| matches!(d, Directive::Region(_)));
                let entry_name = if let Some(Directive::Region(name)) = region {
                    Some(name)
                } else {
                    self.closure_site_key(file, closure.clone())
                };
                if let Some(name) = entry_name {
                    synthetics.push(Unit {
                        name: name.clone(),
                        decl_name: name,
                        file,
                        sig_line: spawn_line,
                        body: closure.clone(),
                        skip: Vec::new(),
                        entry: true,
                        synthetic: true,
                    });
                } else if let Some(target) = self.closure_named_target(file, closure.clone()) {
                    named_entries.insert(target);
                } else {
                    let name = format!("{}_spawn{}", self.units[u].name, synthetics.len());
                    self.notes.push(format!(
                        "spawn at line {spawn_line} has no site, region annotation, \
                         or named target; synthesized entry `{name}`"
                    ));
                    synthetics.push(Unit {
                        name: name.clone(),
                        decl_name: name,
                        file,
                        sig_line: spawn_line,
                        body: closure.clone(),
                        skip: Vec::new(),
                        entry: true,
                        synthetic: true,
                    });
                }
                i = close + 1;
            }
        }
        for u in &mut self.units {
            if named_entries.contains(&u.name) {
                u.entry = true;
            }
        }
        self.units.extend(synthetics);
    }

    /// First `.site("key")` local binding inside a closure body: its key
    /// names the synthetic entry.
    fn closure_site_key(&self, file: usize, range: std::ops::Range<usize>) -> Option<String> {
        let toks = self.tokens(file);
        for i in range.clone() {
            if toks[i].ident() == Some("site") {
                if let Some((key, _)) = site_call_key(toks, i) {
                    return Some(key);
                }
            }
        }
        None
    }

    /// First free/path call inside a closure resolving to a unique
    /// declared fn — the `spawn(move || worker_loop(..))` form.
    fn closure_named_target(&self, file: usize, range: std::ops::Range<usize>) -> Option<String> {
        let toks = self.tokens(file);
        for i in range.clone() {
            let Some(name) = toks[i].ident() else {
                continue;
            };
            if !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                continue;
            }
            if i > 0 && toks[i - 1].is_punct('.') {
                continue; // method call
            }
            if self.model.by_name.get(name).is_some_and(|c| c.len() == 1) {
                return Some(name.to_owned());
            }
        }
        None
    }

    /// Walks one unit's body, producing its ops and fires.
    fn walk_unit(&mut self, u: usize) -> UnitFacts {
        let file = self.units[u].file;
        let body = self.units[u].body.clone();
        let skip = self.units[u].skip.clone();
        let decl_name = self.units[u].decl_name.clone();
        let fn_default: Option<String> = if self.units[u].synthetic {
            None
        } else {
            match self.take_directive(file, self.units[u].sig_line, 3, |d| {
                matches!(d, Directive::Resource(_))
            }) {
                Some(Directive::Resource(r)) => Some(r),
                _ => None,
            }
        };

        let mut facts = UnitFacts::default();
        let mut local_sites: BTreeMap<String, String> = BTreeMap::new();
        let mut guard_sites: BTreeMap<String, String> = BTreeMap::new();
        let mut depth = 0usize;
        let mut loop_stack: Vec<usize> = Vec::new();
        let mut pending_loop = false;
        let mut i = body.start;
        'walk: while i < body.end {
            for r in &skip {
                if r.contains(&i) {
                    i = r.end;
                    continue 'walk;
                }
            }
            let toks = self.tokens(file);
            let t = &toks[i];
            match &t.tok {
                Tok::Punct('{') => {
                    depth += 1;
                    if pending_loop {
                        loop_stack.push(depth);
                        pending_loop = false;
                    }
                }
                Tok::Punct('}') => {
                    if loop_stack.last() == Some(&depth) {
                        loop_stack.pop();
                    }
                    depth = depth.saturating_sub(1);
                }
                Tok::Ident(name) if name == "loop" || name == "while" || name == "for" => {
                    pending_loop = true;
                }
                Tok::Ident(_) if toks.get(i + 1).is_some_and(|t| t.is_punct('!')) => {
                    // Macro invocation: skip its delimited group.
                    if let Some(open) = (i + 2..(i + 3).min(toks.len())).next() {
                        if toks.get(open).is_some_and(|t| t.is_punct('(')) {
                            if let Some(close) = matching_paren(toks, open) {
                                i = close + 1;
                                continue 'walk;
                            }
                        } else if toks.get(open).is_some_and(|t| t.is_punct('[')) {
                            if let Some(close) = matching_square(toks, open) {
                                i = close + 1;
                                continue 'walk;
                            }
                        } else if toks.get(open).is_some_and(|t| t.is_punct('{')) {
                            if let Some(close) = matching_brace(toks, open) {
                                i = close + 1;
                                continue 'walk;
                            }
                        }
                    }
                }
                Tok::Ident(name) if toks.get(i + 1).is_some_and(|t| t.is_punct('(')) => {
                    let name = name.clone();
                    let next = self.handle_call(
                        u,
                        &decl_name,
                        &name,
                        i,
                        fn_default.as_deref(),
                        !loop_stack.is_empty(),
                        &mut local_sites,
                        &mut guard_sites,
                        &mut facts,
                    );
                    if let Some(next) = next {
                        i = next;
                        continue 'walk;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        facts
    }

    /// Handles one call site at token `i` (name followed by `(`).
    /// Returns `Some(next_index)` to jump, `None` to advance normally.
    #[allow(clippy::too_many_arguments)]
    fn handle_call(
        &mut self,
        unit: usize,
        decl_name: &str,
        name: &str,
        i: usize,
        fn_default: Option<&str>,
        in_loop: bool,
        local_sites: &mut BTreeMap<String, String>,
        guard_sites: &mut BTreeMap<String, String>,
        facts: &mut UnitFacts,
    ) -> Option<usize> {
        let file = self.units[unit].file;
        let toks = self.tokens(file);
        let line = toks[i].line;
        let open = i + 1;
        let close = matching_paren(toks, open)?;
        let is_method = i > 0 && toks[i - 1].is_punct('.');
        let chain = if is_method {
            receiver_chain(toks, i)
        } else {
            Vec::new()
        };

        // Hook-site bookkeeping first: sites and fires are instrumentation,
        // not operations.
        if name == "site" {
            if let Some((key, _)) = site_call_key(toks, i) {
                if let Some(Binding::Local(var)) = site_binding(toks, i) {
                    local_sites.insert(var, key);
                }
            }
            return None;
        }
        if (name == "fire" || name == "fire_kv") && is_method {
            if let Some(owner) = chain.last() {
                let key = local_sites
                    .get(owner)
                    .or_else(|| self.field_sites.get(owner))
                    .cloned();
                if let Some(key) = key {
                    let mut fields = fired_fields(toks, open, close);
                    if name == "fire_kv" {
                        // `site.fire_kv("name", value)`: one field, named by
                        // the first argument.
                        if let Some(Tok::Str(s)) = toks.get(open + 1).map(|t| &t.tok) {
                            fields.insert(s.clone());
                        }
                    } else if let Some(guard) = fire_guard_binding(toks, i) {
                        // Zero-alloc guard form: `if let Some(mut g) =
                        // site.fire()` publishes through `g.field(..)` calls
                        // seen later in the walk; remember the binding.
                        guard_sites.insert(guard, key.clone());
                    }
                    facts.fires.entry(key).or_default().extend(fields);
                } else {
                    self.notes.push(format!(
                        "unresolvable hook fire via `{owner}` at line {line}"
                    ));
                }
            }
            return None;
        }
        if name == "field" && is_method {
            // `g.field("name", value)` (possibly chained) on a fire guard:
            // instrumentation, not an operation.
            if let Some(key) = chain.first().and_then(|g| guard_sites.get(g)).cloned() {
                if let Some(Tok::Str(s)) = toks.get(open + 1).map(|t| &t.tok) {
                    facts.fires.entry(key).or_default().insert(s.clone());
                }
                return None;
            }
        }

        // Annotation directives override everything at a call site.
        if self
            .take_directive(file, line, 2, |d| matches!(d, Directive::Ignore))
            .is_some()
        {
            return Some(close + 1);
        }
        if let Some(Directive::Vulnerable {
            name: ann_name,
            kind,
            resource,
        }) = self.take_directive(file, line, 2, |d| matches!(d, Directive::Vulnerable { .. }))
        {
            let annotated = kind.is_none();
            let op_name = ann_name.unwrap_or_else(|| format!("{name}_l{line}"));
            push_op(
                facts,
                Operation {
                    name: op_name,
                    kind: kind.unwrap_or(OpKind::Compute),
                    args: Vec::new(),
                    resource: resource
                        .or_else(|| fn_default.map(str::to_owned))
                        .map(|r| resource_family(&r).to_owned()),
                    in_loop,
                    annotated_vulnerable: annotated,
                },
                line,
            );
            return None;
        }

        // Rule-table classification.
        if let Some(rule) = classify_callee(name, &chain) {
            let resource = match rule.kind {
                OpKind::LockAcquire | OpKind::CondWait => fn_default
                    .map(str::to_owned)
                    .or_else(|| lock_resource(&chain)),
                OpKind::NetSend => self
                    .nth_arg_resource(file, open, close, 1)
                    .or_else(|| fn_default.map(str::to_owned)),
                _ => self
                    .first_arg_resource(file, open, close)
                    .or_else(|| fn_default.map(str::to_owned)),
            };
            push_op(
                facts,
                Operation {
                    name: format!("{name}_l{line}"),
                    kind: rule.kind.clone(),
                    args: Vec::new(),
                    resource: resource.map(|r| resource_family(&r).to_owned()),
                    in_loop,
                    annotated_vulnerable: false,
                },
                line,
            );
            return None;
        }

        // Call-graph edge: unique-name resolution (ambiguity = skip; the
        // trait-method soundness limit documented in DESIGN.md §2).
        let candidates = self.model.by_name.get(name).cloned().unwrap_or_default();
        let resolved = if is_method {
            let others: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&c| {
                    self.model.fns[c].name == name && decl_name != name || {
                        // exclude only the caller's own decl
                        let d = &self.model.fns[c];
                        !(d.name == decl_name && d.file == self.units[unit].file)
                    }
                })
                .collect();
            (others.len() == 1).then(|| name.to_owned())
        } else {
            (candidates.len() == 1).then(|| name.to_owned())
        };
        if let Some(callee) = resolved {
            let already = facts.ops.iter().any(|o| match &o.kind {
                OpKind::Call { callee: c } => c == &callee,
                _ => false,
            });
            if !already {
                push_op(
                    facts,
                    Operation {
                        name: format!("call_{callee}"),
                        kind: OpKind::Call { callee },
                        args: Vec::new(),
                        resource: None,
                        in_loop,
                        annotated_vulnerable: false,
                    },
                    line,
                );
            }
        }
        None
    }

    /// First string literal, else first const-resolving ident, anywhere in
    /// the argument group.
    fn first_arg_resource(&self, file: usize, open: usize, close: usize) -> Option<String> {
        let toks = self.tokens(file);
        for t in &toks[open + 1..close] {
            if let Tok::Str(s) = &t.tok {
                return Some(s.clone());
            }
        }
        for t in &toks[open + 1..close] {
            if let Some(id) = t.ident() {
                if let Some(v) = self.model.const_str(id) {
                    return Some(v.to_owned());
                }
            }
        }
        None
    }

    /// Resource from the `n`-th top-level argument (0-based): for
    /// `net.send(src, dst, payload)` the peer is argument 1.
    fn nth_arg_resource(&self, file: usize, open: usize, close: usize, n: usize) -> Option<String> {
        let toks = self.tokens(file);
        let mut arg = 0usize;
        let mut depth = 0usize;
        let mut j = open + 1;
        while j < close {
            let t = &toks[j];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && t.is_punct(',') {
                arg += 1;
            } else if depth == 0 && arg == n {
                if let Tok::Str(s) = &t.tok {
                    return Some(s.clone());
                }
                if let Some(id) = t.ident() {
                    if let Some(v) = self.model.const_str(id) {
                        return Some(v.to_owned());
                    }
                }
            }
            j += 1;
        }
        None
    }

    /// Final assembly: walk units, resolve entries/reachability, rename
    /// entries to their context keys, and build the IR.
    fn assemble(mut self) -> ExtractedProgram {
        let mut facts: Vec<UnitFacts> = Vec::new();
        for u in 0..self.units.len() {
            let f = self.walk_unit(u);
            facts.push(f);
        }

        // Name -> unit index for edge resolution. Owned keys: the map
        // outlives renames of `self.units` below, and edges resolve against
        // declared names regardless. Resolution is caller-aware: a facade
        // delegating to a same-named store method (`DataNode::write_block`
        // -> `BlockStore::write_block`) resolves by excluding the caller,
        // then by preferring a candidate declared in the caller's file.
        let mut by_unit_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, u) in self.units.iter().enumerate() {
            by_unit_name.entry(u.name.clone()).or_default().push(i);
        }
        let unit_files: Vec<usize> = self.units.iter().map(|u| u.file).collect();
        let resolve_unit = move |caller: usize, name: &str| -> Option<usize> {
            let v = by_unit_name.get(name)?;
            let mut c: Vec<usize> = v.iter().copied().filter(|&i| i != caller).collect();
            if c.len() > 1 {
                c.retain(|&i| unit_files[i] == unit_files[caller]);
            }
            (c.len() == 1).then(|| c[0])
        };

        let facts_ref = &facts;
        let reach_from = |roots: &[usize]| -> BTreeSet<usize> {
            let mut seen: BTreeSet<usize> = BTreeSet::new();
            let mut stack: Vec<usize> = roots.to_vec();
            while let Some(u) = stack.pop() {
                if !seen.insert(u) {
                    continue;
                }
                for op in &facts_ref[u].ops {
                    if let OpKind::Call { callee } = &op.kind {
                        if let Some(v) = resolve_unit(u, callee) {
                            stack.push(v);
                        }
                    }
                }
            }
            seen
        };

        let entries: Vec<usize> = (0..self.units.len())
            .filter(|&u| self.units[u].entry)
            .collect();
        let mut reachable = reach_from(&entries);
        // Promote unreachable firing functions: they publish into a hook
        // key, so they run (on caller threads) — e.g. a request-path
        // ingest function.
        let mut promoted = Vec::new();
        for (u, unit_facts) in facts.iter().enumerate() {
            if !reachable.contains(&u) && !unit_facts.fires.is_empty() {
                self.units[u].entry = true;
                promoted.push(u);
                self.notes.push(format!(
                    "promoted `{}` to entry: fires {:?} but is reachable from no spawn",
                    self.units[u].name,
                    unit_facts.fires.keys().collect::<Vec<_>>()
                ));
            }
        }
        if !promoted.is_empty() {
            let all: Vec<usize> = (0..self.units.len())
                .filter(|&u| self.units[u].entry)
                .collect();
            reachable = reach_from(&all);
        }

        // Rename each entry to its region's context key when unambiguous.
        let keep: Vec<usize> = (0..self.units.len())
            .filter(|&u| reachable.contains(&u))
            .collect();
        let entry_units: Vec<usize> = keep
            .iter()
            .copied()
            .filter(|&u| self.units[u].entry)
            .collect();
        for u in entry_units {
            let closure = reach_from(&[u]);
            let keys: BTreeSet<&String> = closure
                .iter()
                .flat_map(|&v| facts[v].fires.keys())
                .collect();
            if keys.len() == 1 {
                let key = (*keys.iter().next().unwrap()).clone();
                if key != self.units[u].name {
                    let taken =
                        self.units.iter().enumerate().any(|(v, other)| {
                            v != u && reachable.contains(&v) && other.name == key
                        });
                    if taken {
                        self.notes.push(format!(
                            "entry `{}` fires key `{key}` but that name is taken",
                            self.units[u].name
                        ));
                    } else {
                        self.units[u].name = key;
                    }
                }
            }
        }

        // Kept units can still collide on name (two reachable same-named
        // functions): suffix later ones so IR keys stay unique, then point
        // every resolved call edge at its callee's final name.
        let mut name_uses: BTreeMap<String, usize> = BTreeMap::new();
        for &u in &keep {
            let n = name_uses.entry(self.units[u].name.clone()).or_insert(0);
            *n += 1;
            if *n > 1 {
                let fresh = format!("{}_{}", self.units[u].name, *n);
                self.notes.push(format!(
                    "renamed duplicate function `{}` ({}) to `{fresh}`",
                    self.units[u].name, self.model.files[self.units[u].file].rel_path
                ));
                self.units[u].name = fresh;
            }
        }
        for &u in &keep {
            for op in &mut facts[u].ops {
                if let OpKind::Call { callee } = &mut op.kind {
                    if let Some(v) = resolve_unit(u, callee) {
                        if self.units[v].name != *callee {
                            *callee = self.units[v].name.clone();
                        }
                    }
                }
            }
        }

        let mut ir_functions: BTreeMap<String, Function> = BTreeMap::new();
        let mut sites: BTreeMap<String, SourceRef> = BTreeMap::new();
        let mut regions_fired: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for &u in &keep {
            let unit = &self.units[u];
            let file = &self.model.files[unit.file];
            for (op, line) in facts[u].ops.iter().zip(&facts[u].op_lines) {
                sites.insert(
                    format!("{}#{}", unit.name, op.name),
                    SourceRef {
                        file: file.rel_path.clone(),
                        line: *line,
                    },
                );
            }
            for (key, fields) in &facts[u].fires {
                regions_fired
                    .entry(key.clone())
                    .or_default()
                    .extend(fields.iter().cloned());
            }
            ir_functions.insert(
                unit.name.clone(),
                Function {
                    name: unit.name.clone(),
                    ops: facts[u].ops.clone(),
                    long_running: unit.entry,
                    init_only: false,
                },
            );
        }

        ExtractedProgram {
            ir: ProgramIr {
                name: self.program,
                functions: ir_functions,
            },
            sites,
            regions_fired,
            notes: self.notes,
        }
    }
}

fn push_op(facts: &mut UnitFacts, mut op: Operation, line: u32) {
    // Keep op names unique within the function.
    if facts.ops.iter().any(|o| o.name == op.name) {
        let mut k = 2;
        while facts
            .ops
            .iter()
            .any(|o| o.name == format!("{}_{k}", op.name))
        {
            k += 1;
        }
        op.name = format!("{}_{k}", op.name);
    }
    facts.ops.push(op);
    facts.op_lines.push(line);
}

fn matching_square(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// For a method call at `i` (`recv . name (`), collects the dotted
/// receiver chain, skipping call parens: `shared.wal.lock().append(..)`
/// gives `["shared", "wal", "lock"]` for `append`.
fn receiver_chain(tokens: &[Token], i: usize) -> Vec<String> {
    let mut chain = Vec::new();
    let mut j = i as isize - 1; // the '.'
    while j > 0 && tokens[j as usize].is_punct('.') {
        let mut k = j - 1;
        // Skip a call's argument group: `.lock()` in mid-chain.
        if k >= 0 && tokens[k as usize].is_punct(')') {
            let mut depth = 0isize;
            while k >= 0 {
                if tokens[k as usize].is_punct(')') {
                    depth += 1;
                } else if tokens[k as usize].is_punct('(') {
                    depth -= 1;
                    if depth == 0 {
                        k -= 1;
                        break;
                    }
                }
                k -= 1;
            }
        }
        match tokens.get(k as usize).map(|t| &t.tok) {
            Some(Tok::Ident(name)) => {
                chain.push(name.clone());
                j = k - 1;
            }
            _ => break,
        }
    }
    chain.reverse();
    chain
}

/// Chain-derived lock resource: strip `self`-like heads, join the rest.
fn lock_resource(chain: &[String]) -> Option<String> {
    let segs: Vec<&str> = chain
        .iter()
        .map(String::as_str)
        .filter(|s| !matches!(*s, "self" | "s" | "shared" | "this"))
        .collect();
    if segs.is_empty() {
        None
    } else {
        Some(segs.join("."))
    }
}

/// At an ident `site` at `i`, matches `site ( "key" )` and returns the key
/// and the close paren index.
fn site_call_key(tokens: &[Token], i: usize) -> Option<(String, usize)> {
    if !tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) {
        return None;
    }
    let close = matching_paren(tokens, i + 1)?;
    match tokens.get(i + 2).map(|t| &t.tok) {
        Some(Tok::Str(key)) => Some((key.clone(), close)),
        _ => None,
    }
}

/// How a `.site("key")` result is bound.
enum Binding {
    /// `let name = ...site("key")`
    Local(String),
    /// `name: ...site("key")` in a struct literal
    Field(String),
}

fn site_binding(tokens: &[Token], site_idx: usize) -> Option<Binding> {
    // Walk back over the receiver chain to the expression start.
    let mut j = site_idx as isize - 1;
    while j > 0
        && tokens[j as usize].is_punct('.')
        && matches!(
            tokens.get(j as usize - 1).map(|t| &t.tok),
            Some(Tok::Ident(_))
        )
    {
        j -= 2;
    }
    let before = tokens.get(j as usize)?;
    if before.is_punct('=') {
        let name = tokens.get(j as usize - 1)?.ident()?;
        if tokens.get(j as usize - 2)?.ident() == Some("let") {
            return Some(Binding::Local(name.to_owned()));
        }
    }
    if before.is_punct(':') {
        let name = tokens.get(j as usize - 1)?.ident()?;
        return Some(Binding::Field(name.to_owned()));
    }
    None
}

/// At a method ident `fire` at `fire_idx`, matches the zero-alloc guard
/// idiom `if let Some(mut NAME) = <receiver>.fire()` (the `mut` is
/// optional) and returns the guard binding `NAME`.
fn fire_guard_binding(tokens: &[Token], fire_idx: usize) -> Option<String> {
    // Walk back over the dotted receiver chain to the expression start.
    let mut j = fire_idx.checked_sub(1)?;
    while j >= 2
        && tokens[j].is_punct('.')
        && matches!(tokens.get(j - 1).map(|t| &t.tok), Some(Tok::Ident(_)))
    {
        j -= 2;
    }
    // Expect `Some ( [mut] NAME ) =` right before the receiver.
    if !tokens.get(j)?.is_punct('=') || !tokens.get(j.checked_sub(1)?)?.is_punct(')') {
        return None;
    }
    let name = tokens.get(j.checked_sub(2)?)?.ident()?.to_owned();
    let mut k = j.checked_sub(3)?;
    if tokens.get(k)?.ident() == Some("mut") {
        k = k.checked_sub(1)?;
    }
    if !tokens.get(k)?.is_punct('(') || tokens.get(k.checked_sub(1)?)?.ident() != Some("Some") {
        return None;
    }
    Some(name)
}

/// Collects published field names inside a `fire(|| vec![("name".into(),
/// ..)])` argument group: string literals immediately followed by
/// `.into()` or `.to_string()`.
fn fired_fields(tokens: &[Token], open: usize, close: usize) -> BTreeSet<String> {
    let mut fields = BTreeSet::new();
    for i in open + 1..close {
        if let Tok::Str(s) = &tokens[i].tok {
            if tokens.get(i + 1).is_some_and(|t| t.is_punct('.')) {
                let m = tokens.get(i + 2).and_then(Token::ident);
                if m == Some("into") || m == Some("to_string") {
                    fields.insert(s.clone());
                }
            }
        }
    }
    fields
}

/// Finds the closure body range inside a call argument group, if the call
/// takes a closure: past `move`/`|params|`, either the braced block or the
/// rest of the group.
fn closure_body(tokens: &[Token], open: usize, close: usize) -> Option<std::ops::Range<usize>> {
    // The thunk need not be the first argument (`spawn(move || ..)` vs
    // `spawn_on(&clock, "name", move || ..)`): scan the argument group for
    // the first `|` that opens a closure. Leading non-closure arguments
    // never contain `|` in this codebase (receivers, string labels).
    let mut j = open + 1;
    while j < close && !tokens[j].is_punct('|') {
        j += 1;
    }
    if j >= close {
        return None;
    }
    // Closure params end at the next `|` (params are plain idents here).
    let mut k = j + 1;
    while k < close && !tokens[k].is_punct('|') {
        k += 1;
    }
    let body_start = k + 1;
    if tokens.get(body_start).is_some_and(|t| t.is_punct('{')) {
        let end = matching_brace(tokens, body_start)?;
        Some(body_start + 1..end)
    } else {
        Some(body_start..close)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn extract(srcs: &[(&str, &str)]) -> ExtractedProgram {
        let files = srcs
            .iter()
            .map(|(name, src)| SourceFile::parse(format!("src/{name}"), src, false))
            .collect();
        extract_model("test", CrateModel::build(files))
    }

    const WORKER: &str = r#"
pub fn start(shared: Arc<Shared>) {
    threads.push(std::thread::Builder::new()
        .name("worker".into())
        .spawn(move || worker_loop(shared))
        .unwrap());
}

pub fn worker_loop(shared: Arc<Shared>) {
    let hook = shared.hooks.site("main_loop");
    while shared.running() {
        hook.fire(|| vec![("payload".into(), CtxValue::Bytes(b.clone()))]);
        shared.disk.append("wal/log", &frame);
        shared.disk.fsync("wal/log");
        helper(&shared);
    }
}

fn helper(shared: &Shared) {
    let _g = shared.state.lock();
}
"#;

    #[test]
    fn extracts_entry_ops_and_edges() {
        let ex = extract(&[("worker.rs", WORKER)]);
        // worker_loop fires main_loop and is the only firing entry -> renamed.
        let f = ex.ir.function("main_loop").expect("renamed entry");
        assert!(f.long_running);
        let kinds: Vec<&str> = f.ops.iter().map(|o| o.kind.label()).collect();
        assert_eq!(kinds, vec!["disk-write", "disk-sync", "call"]);
        assert!(f.ops[0].in_loop && f.ops[1].in_loop);
        assert_eq!(f.ops[0].resource.as_deref(), Some("wal/"));
        let h = ex.ir.function("helper").unwrap();
        assert_eq!(h.ops[0].kind.label(), "lock-acquire");
        assert_eq!(h.ops[0].resource.as_deref(), Some("state"));
        // start itself is not an entry and unreachable -> dropped.
        assert!(ex.ir.function("start").is_none());
        assert!(ex.ir.dangling_callees().is_empty());
    }

    #[test]
    fn fires_and_sites_are_recorded() {
        let ex = extract(&[("worker.rs", WORKER)]);
        let fields = ex.regions_fired.get("main_loop").unwrap();
        assert!(fields.contains("payload"));
        let site = ex.sites.get("main_loop#append_l13").unwrap();
        assert_eq!(site.file, "src/worker.rs");
        assert_eq!(site.line, 13);
    }

    #[test]
    fn channel_sends_and_rwlock_reads_stay_invisible() {
        let ex = extract(&[(
            "a.rs",
            r#"
pub fn start() { t.spawn(move || drain(rx)).unwrap(); }
pub fn drain(rx: Receiver<u64>) {
    let site = hooks.site("drain");
    loop {
        let v = rx.recv_timeout(WAIT);
        tx.send(v);
        let map = self.nodes.read();
    }
}
"#,
        )]);
        let f = ex.ir.function("drain").unwrap();
        assert!(f.ops.is_empty(), "{:?}", f.ops);
    }

    #[test]
    fn vulnerable_annotation_creates_custom_op() {
        let ex = extract(&[(
            "a.rs",
            r#"
pub fn start() { t.spawn(move || serve(s)).unwrap(); }
pub fn serve(s: Shared) {
    loop {
        // wdog: vulnerable name=index_put resource=index
        s.index.put(key, value);
    }
}
"#,
        )]);
        let op = &ex.ir.function("serve").unwrap().ops[0];
        assert_eq!(op.name, "index_put");
        assert!(op.annotated_vulnerable);
        assert_eq!(op.resource.as_deref(), Some("index"));
        assert!(op.in_loop);
    }

    #[test]
    fn vulnerable_annotation_with_kind_is_not_custom() {
        let ex = extract(&[(
            "a.rs",
            r#"
pub fn start() { t.spawn(move || serve(s)).unwrap(); }
pub fn serve(sink: &mut dyn Sink) {
    // wdog: vulnerable name=write_record kind=net-send resource=sync-target
    sink.write_record(&path, data);
}
"#,
        )]);
        let op = &ex.ir.function("serve").unwrap().ops[0];
        assert_eq!(op.kind, OpKind::NetSend);
        assert!(!op.annotated_vulnerable);
        assert_eq!(op.resource.as_deref(), Some("sync-target"));
    }

    #[test]
    fn fn_level_resource_annotation_applies() {
        let ex = extract(&[(
            "a.rs",
            r#"
pub fn start() { t.spawn(move || run(s)).unwrap(); }
pub fn run(s: Shared) { persist(&s, "x"); }
// wdog: resource sst/
pub fn persist(s: &Shared, path: &str) {
    s.disk.write_all(path, &buf);
    s.disk.fsync(path);
}
"#,
        )]);
        let f = ex.ir.function("persist").unwrap();
        assert_eq!(f.ops[0].resource.as_deref(), Some("sst/"));
        assert_eq!(f.ops[1].resource.as_deref(), Some("sst/"));
    }

    #[test]
    fn const_resolution_and_net_second_arg() {
        let ex = extract(&[(
            "a.rs",
            r#"
pub const PEER: &str = "nn-1";
pub fn start() { t.spawn(move || beat(s)).unwrap(); }
pub fn beat(s: Shared) {
    loop { s.net.send(&s.id, PEER, msg.encode()); }
}
"#,
        )]);
        let op = &ex.ir.function("beat").unwrap().ops[0];
        assert_eq!(op.kind, OpKind::NetSend);
        assert_eq!(op.resource.as_deref(), Some("nn-1"));
    }

    #[test]
    fn region_annotation_and_ignore_on_spawns() {
        let ex = extract(&[(
            "a.rs",
            r#"
pub fn start(s: Shared) {
    // wdog: region heartbeat_loop
    t.spawn(move || {
        loop { s.net.send(&s.id, "nn", m.encode()); }
    }).unwrap();
    // wdog: ignore
    t.spawn(move || {
        loop { s.net.send("a", "b", pong.clone()); }
    }).unwrap();
}
"#,
        )]);
        let f = ex.ir.function("heartbeat_loop").expect("annotated region");
        assert!(f.long_running);
        assert_eq!(f.ops[0].kind, OpKind::NetSend);
        assert_eq!(f.ops[0].resource.as_deref(), Some("nn"));
        assert_eq!(ex.ir.functions.len(), 1, "{:?}", ex.ir.functions.keys());
    }

    #[test]
    fn inline_closure_with_site_becomes_named_entry() {
        let ex = extract(&[(
            "a.rs",
            r#"
pub fn start(s: Shared) {
    t.spawn(move || {
        let hook = s.hooks.site("scanner_loop");
        for path in s.store.blocks() {
            hook.fire(|| vec![("block_path".into(), CtxValue::Str(p))]);
            s.disk.read(&path);
        }
    }).unwrap();
}
"#,
        )]);
        let f = ex.ir.function("scanner_loop").unwrap();
        assert!(f.long_running);
        assert_eq!(f.ops[0].kind, OpKind::DiskRead);
        assert!(f.ops[0].in_loop);
        assert!(ex.regions_fired["scanner_loop"].contains("block_path"));
    }

    #[test]
    fn field_site_fire_promotes_caller_to_entry() {
        let ex = extract(&[(
            "a.rs",
            r#"
pub fn init(hooks: &Hooks) -> Shared {
    Shared { ingest_hook: hooks.site("ingest_loop"), n: 0 }
}
pub fn write_block(s: &Shared, data: &[u8]) {
    s.ingest_hook.fire(|| vec![("block_data".into(), CtxValue::Bytes(d))]);
    s.store.put_block(data);
}
// wdog: resource blocks/
pub fn put_block(s: &Store, data: &[u8]) {
    s.disk.write_all(&path, data);
}
"#,
        )]);
        // write_block fires ingest_loop, reachable from no spawn -> entry,
        // renamed to the key.
        let f = ex.ir.function("ingest_loop").expect("promoted entry");
        assert!(f.long_running);
        assert_eq!(f.callees(), vec!["put_block"]);
        assert_eq!(
            ex.ir.function("put_block").unwrap().ops[0]
                .resource
                .as_deref(),
            Some("blocks/")
        );
        assert!(ex.ir.function("init").is_none(), "init stays out");
    }

    #[test]
    fn guard_fire_publishes_chained_fields() {
        let ex = extract(&[(
            "a.rs",
            r#"
pub fn start() { t.spawn(move || serve(s)).unwrap(); }
pub fn serve(s: Shared) {
    let hook = s.hooks.site("listener_loop");
    loop {
        if let Some(mut fire) = hook.fire() {
            fire.field("probe_key", CtxValue::Str(key))
                .field("probe_val", CtxValue::Str(value));
        }
        s.disk.append("wal/log", &frame);
    }
}
"#,
        )]);
        let fields = ex.regions_fired.get("listener_loop").unwrap();
        assert!(fields.contains("probe_key") && fields.contains("probe_val"));
        // Guard `field` calls are instrumentation, not ops or call edges.
        let f = ex.ir.function("listener_loop").unwrap();
        assert_eq!(f.ops.len(), 1, "{:?}", f.ops);
    }

    #[test]
    fn guard_fire_on_struct_field_site_resolves() {
        let ex = extract(&[(
            "a.rs",
            r#"
pub fn init(hooks: &Hooks) -> Shared {
    Shared { ingest_hook: hooks.site("ingest_loop"), n: 0 }
}
pub fn write_block(s: &Shared, data: &[u8]) {
    if let Some(mut fire) = s.ingest_hook.fire() {
        fire.field("block_data", CtxValue::Bytes(d));
    }
    s.disk.write_all("blocks/b1", data);
}
"#,
        )]);
        let f = ex.ir.function("ingest_loop").expect("promoted entry");
        assert!(f.long_running);
        assert!(ex.regions_fired["ingest_loop"].contains("block_data"));
    }

    #[test]
    fn fire_kv_records_single_field() {
        let ex = extract(&[(
            "a.rs",
            r#"
pub fn start() { t.spawn(move || wal_loop(s)).unwrap(); }
pub fn wal_loop(s: Shared) {
    let hook = s.hooks.site("wal_loop");
    loop {
        hook.fire_kv("payload", CtxValue::Bytes(record.clone()));
        s.disk.append("wal/log", &record);
    }
}
"#,
        )]);
        assert!(ex.regions_fired["wal_loop"].contains("payload"));
    }

    #[test]
    fn bare_guardless_fire_still_marks_the_region() {
        let ex = extract(&[(
            "a.rs",
            r#"
pub fn start() { t.spawn(move || tick(s)).unwrap(); }
pub fn tick(s: Shared) {
    let hook = s.hooks.site("tick_loop");
    loop { hook.fire(); s.disk.fsync("wal/log"); }
}
"#,
        )]);
        assert!(ex.regions_fired["tick_loop"].is_empty());
    }

    #[test]
    fn ambiguous_methods_do_not_resolve() {
        let ex = extract(&[(
            "a.rs",
            r#"
pub fn start() { t.spawn(move || run(s)).unwrap(); }
pub fn run(s: Shared) { s.sink.emit(&x); }
impl A { fn emit(&self, x: &X) { self.disk.write_all("a/f", x); } }
impl B { fn emit(&self, x: &X) { self.net.send("s", "d", x); } }
"#,
        )]);
        let f = ex.ir.function("run").unwrap();
        assert!(f.ops.is_empty(), "trait-ish dispatch must not resolve");
    }

    #[test]
    fn macro_arguments_are_invisible() {
        let ex = extract(&[(
            "a.rs",
            r#"
pub fn start() { t.spawn(move || run(s)).unwrap(); }
pub fn run(s: Shared) {
    debug_assert!(s.tab.lock().is_sorted());
    s.wal.lock();
}
"#,
        )]);
        let f = ex.ir.function("run").unwrap();
        assert_eq!(f.ops.len(), 1, "{:?}", f.ops);
        assert_eq!(f.ops[0].resource.as_deref(), Some("wal"));
    }

    #[test]
    fn restrict_to_regions_drops_unlisted_entries() {
        let ex = extract(&[(
            "a.rs",
            r#"
pub fn start() {
    t.spawn(move || loop_a(s)).unwrap();
    t.spawn(move || loop_b(s)).unwrap();
}
pub fn loop_a(s: Shared) { let h = s.hooks.site("loop_a"); s.disk.read("a/x"); }
pub fn loop_b(s: Shared) { let h = s.hooks.site("loop_b"); s.disk.read("b/x"); }
"#,
        )]);
        let keep: BTreeSet<String> = ["loop_a".to_owned()].into();
        let restricted = restrict_to_regions(&ex.ir, &keep);
        assert!(restricted.function("loop_a").is_some());
        assert!(restricted.function("loop_b").is_none());
    }

    #[test]
    fn loop_depth_tracks_nested_blocks() {
        let (toks, _) = lex("while x { if y { f(); } } g();");
        // Quick sanity on the walker's building block, via full extract:
        let ex = extract(&[(
            "a.rs",
            r#"
pub fn start() { t.spawn(move || run(s)).unwrap(); }
pub fn run(s: Shared) {
    while s.go() {
        if s.ready() { s.disk.fsync("wal/log"); }
    }
    s.disk.fsync("sst/tail");
}
"#,
        )]);
        drop(toks);
        let f = ex.ir.function("run").unwrap();
        assert!(f.ops[0].in_loop);
        assert!(!f.ops[1].in_loop);
    }
}
