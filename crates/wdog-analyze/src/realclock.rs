//! The real-clock lint: no raw time calls in simulated code.
//!
//! The virtual-time substrate only delivers determinism if every sleep,
//! deadline, and timestamp in driver, recovery, and target-loop code goes
//! through the [`Clock`](wdog_base::clock::Clock) abstraction. A single raw
//! `Instant::now()` in a checker executor re-couples verdicts to host load;
//! a single raw `thread::sleep` freezes a discrete-event run (the clock
//! cannot see the block, so no actor can advance time past it).
//!
//! This pass token-scans production code (`#[cfg(test)]` modules are
//! skipped — tests may drive real threads) for the three escape hatches:
//! `Instant::now`, `SystemTime::now`, and `thread::sleep`. Files that are
//! *supposed* to touch real time — the `RealClock` implementation itself,
//! wall-clock teardown joins, the telemetry sidecar's overhead probe — are
//! allowlisted, each with a documented reason that the report carries.

use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::lexer::lex;

/// One raw time call in production code.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RealClockFinding {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the call.
    pub line: u32,
    /// The flagged pattern, e.g. `Instant::now`.
    pub pattern: String,
}

/// A file exempted from the lint, with the reason it may touch real time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RealClockExemption {
    /// Path suffix that identifies the file (e.g. `wdog-base/src/clock.rs`).
    pub suffix: String,
    /// Why this file legitimately reads the real clock.
    pub reason: String,
}

/// The full scan result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RealClockReport {
    /// Files scanned (after exemptions).
    pub scanned_files: usize,
    /// Raw time calls found outside test modules and exemptions.
    pub findings: Vec<RealClockFinding>,
    /// Exempted files that were actually skipped, with reasons.
    pub exempted: Vec<RealClockExemption>,
}

/// The documented set of files allowed to touch real time.
pub fn real_clock_exemptions() -> Vec<RealClockExemption> {
    let entry = |suffix: &str, reason: &str| RealClockExemption {
        suffix: suffix.to_owned(),
        reason: reason.to_owned(),
    };
    vec![
        entry(
            "wdog-base/src/clock.rs",
            "the RealClock implementation is the one sanctioned wrapper over raw time",
        ),
        entry(
            "wdog-base/src/join.rs",
            "teardown joins bound wedged OS threads in wall time, outside any virtual run",
        ),
        entry(
            "simio/src/vclock.rs",
            "the stall monitor watches a frozen virtual clock, so it must run on the real one",
        ),
        entry(
            "wdog-core/src/hooks.rs",
            "the telemetry sidecar's sampled hook-fire probe measures real overhead by design",
        ),
        entry(
            "minizk/src/bug2201.rs",
            "the standalone ZK-2201 demo reproduces the bug on real threads, outside campaigns",
        ),
    ]
}

const PATTERNS: [(&str, &str); 3] = [
    ("Instant", "now"),
    ("SystemTime", "now"),
    ("thread", "sleep"),
];

/// Scans one file's source for raw time calls outside `#[cfg(test)]`
/// blocks. The lexer already drops comments and keeps string literals as
/// opaque tokens, so doc text never false-positives.
pub fn scan_source(file: &str, src: &str) -> Vec<RealClockFinding> {
    let (tokens, _) = lex(src);
    let mut findings = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // `#[cfg(test)]` — skip the attached item's braced block.
        if tokens[i].is_punct('#')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
            && tokens.get(i + 2).and_then(|t| t.ident()) == Some("cfg")
            && tokens.get(i + 3).is_some_and(|t| t.is_punct('('))
            && tokens.get(i + 4).and_then(|t| t.ident()) == Some("test")
            && tokens.get(i + 5).is_some_and(|t| t.is_punct(')'))
            && tokens.get(i + 6).is_some_and(|t| t.is_punct(']'))
        {
            i += 7;
            // Find the block opener, then skip to its matching brace.
            while i < tokens.len() && !tokens[i].is_punct('{') {
                i += 1;
            }
            let mut depth = 0usize;
            while i < tokens.len() {
                if tokens[i].is_punct('{') {
                    depth += 1;
                } else if tokens[i].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                i += 1;
            }
            continue;
        }
        if let Some(first) = tokens[i].ident() {
            for (head, tail) in PATTERNS {
                if first == head
                    && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
                    && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
                    && tokens.get(i + 3).and_then(|t| t.ident()) == Some(tail)
                {
                    findings.push(RealClockFinding {
                        file: file.to_owned(),
                        line: tokens[i].line,
                        pattern: format!("{head}::{tail}"),
                    });
                }
            }
        }
        i += 1;
    }
    findings
}

fn rust_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans every `.rs` file under the given crate roots. Paths in findings
/// are reported relative to `base` when possible.
pub fn scan_real_clock(base: &Path, roots: &[&str]) -> std::io::Result<RealClockReport> {
    let exemptions = real_clock_exemptions();
    let mut files = Vec::new();
    for root in roots {
        let dir = base.join(root);
        if dir.is_dir() {
            rust_files(&dir, &mut files)?;
        }
    }
    let mut report = RealClockReport {
        scanned_files: 0,
        findings: Vec::new(),
        exempted: Vec::new(),
    };
    for path in files {
        let label = path
            .strip_prefix(base)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if let Some(ex) = exemptions.iter().find(|e| label.ends_with(&e.suffix)) {
            report.exempted.push(ex.clone());
            continue;
        }
        report.scanned_files += 1;
        let src = std::fs::read_to_string(&path)?;
        report.findings.extend(scan_source(&label, &src));
    }
    Ok(report)
}

/// The production crate roots the lint covers: everything that can run
/// inside a virtual-time campaign.
pub const REAL_CLOCK_ROOTS: [&str; 9] = [
    "crates/wdog-base/src",
    "crates/simio/src",
    "crates/wdog-core/src",
    "crates/wdog-recover/src",
    "crates/wdog-target/src",
    "crates/faults/src",
    "crates/kvs/src",
    "crates/minizk/src",
    "crates/miniblock/src",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_each_pattern_with_lines() {
        let src = "fn f() {\n    let t = Instant::now();\n    std::thread::sleep(d);\n    let s = SystemTime::now();\n}\n";
        let found = scan_source("x.rs", src);
        let got: Vec<(u32, &str)> = found.iter().map(|f| (f.line, f.pattern.as_str())).collect();
        assert_eq!(
            got,
            vec![
                (2, "Instant::now"),
                (3, "thread::sleep"),
                (4, "SystemTime::now")
            ]
        );
    }

    #[test]
    fn skips_cfg_test_modules() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { std::thread::sleep(d); }\n}\nfn h() { Instant::now(); }\n";
        let found = scan_source("x.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].pattern, "Instant::now");
        assert_eq!(found[0].line, 6);
    }

    #[test]
    fn comments_and_strings_do_not_trip() {
        let src = "// calls Instant::now eventually\nfn f() { let s = \"thread::sleep\"; }\n";
        assert!(scan_source("x.rs", src).is_empty());
    }

    #[test]
    fn workspace_is_clean() {
        // The lint's own acceptance test: the production tree has no raw
        // time calls outside the documented exemptions.
        let base = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = scan_real_clock(&base, &REAL_CLOCK_ROOTS).unwrap();
        assert!(
            report.findings.is_empty(),
            "raw time calls in production code: {:?}",
            report.findings
        );
        assert!(report.scanned_files > 50, "scan missed most of the tree");
    }
}
