//! Crate model: files, function bodies, and the const-string registry.
//!
//! The extractor works per target crate: every `*.rs` file under the
//! crate's `src/` is lexed, functions are discovered by brace matching
//! (with `#[cfg(test)] mod` bodies skipped), and `const`/`static` string
//! values are collected crate-wide so call-site arguments like
//! `WAL_ROTATED_PATH` resolve to their resource names. Files on the
//! target's exclude list still contribute consts but no functions — the
//! analysis scope knob, the moral equivalent of a Soot classpath filter.

use std::collections::BTreeMap;
use std::ops::Range;

use crate::lexer::{lex, Annotation, Tok, Token};

/// One lexed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, e.g. `crates/kvs/src/listener.rs`.
    pub rel_path: String,
    /// Token stream.
    pub tokens: Vec<Token>,
    /// `// wdog:` annotations, in line order.
    pub annotations: Vec<Annotation>,
    /// Excluded files contribute consts only.
    pub excluded: bool,
}

impl SourceFile {
    /// Lexes `src` into a file model.
    pub fn parse(rel_path: impl Into<String>, src: &str, excluded: bool) -> Self {
        let (tokens, annotations) = lex(src);
        Self {
            rel_path: rel_path.into(),
            tokens,
            annotations,
            excluded,
        }
    }
}

/// A discovered function body.
#[derive(Debug, Clone)]
pub struct FnDecl {
    /// Function name (last path segment; impl blocks are not tracked).
    pub name: String,
    /// Index into [`CrateModel::files`].
    pub file: usize,
    /// Line of the `fn` keyword.
    pub sig_line: u32,
    /// Token range of the body, exclusive of the outer braces.
    pub body: Range<usize>,
}

/// Everything the extractor needs to know about one target crate.
#[derive(Debug)]
pub struct CrateModel {
    /// All lexed files, excluded ones included (for consts).
    pub files: Vec<SourceFile>,
    /// Discovered functions from non-excluded files.
    pub fns: Vec<FnDecl>,
    /// Function indices by name, for call resolution.
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// `const`/`static` string values, crate-wide.
    pub consts: BTreeMap<String, String>,
}

impl CrateModel {
    /// Builds the model from lexed files.
    pub fn build(files: Vec<SourceFile>) -> Self {
        let mut fns = Vec::new();
        let mut consts = BTreeMap::new();
        for (file_idx, file) in files.iter().enumerate() {
            collect_consts(&file.tokens, &mut consts);
            if !file.excluded {
                collect_fns(&file.tokens, file_idx, &mut fns);
            }
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }
        Self {
            files,
            fns,
            by_name,
            consts,
        }
    }

    /// Resolves an identifier to a const string value, if one exists.
    pub fn const_str(&self, name: &str) -> Option<&str> {
        self.consts.get(name).map(String::as_str)
    }
}

/// Finds the index of the matching close brace for the open brace at `open`.
pub fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    debug_assert!(tokens[open].is_punct('{'));
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Finds the index of the matching close paren for the open paren at `open`.
pub fn matching_paren(tokens: &[Token], open: usize) -> Option<usize> {
    debug_assert!(tokens[open].is_punct('('));
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// True if tokens starting at `i` spell the `#[cfg(test)]` attribute.
fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    tokens.get(i).is_some_and(|t| t.is_punct('#'))
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
        && tokens.get(i + 2).and_then(Token::ident) == Some("cfg")
        && tokens.get(i + 3).is_some_and(|t| t.is_punct('('))
        && tokens.get(i + 4).and_then(Token::ident) == Some("test")
        && tokens.get(i + 5).is_some_and(|t| t.is_punct(')'))
        && tokens.get(i + 6).is_some_and(|t| t.is_punct(']'))
}

fn collect_fns(tokens: &[Token], file_idx: usize, out: &mut Vec<FnDecl>) {
    let mut i = 0usize;
    while i < tokens.len() {
        // Skip `#[cfg(test)] mod name { ... }` wholesale.
        if is_cfg_test_attr(tokens, i) {
            let mut j = i + 7;
            // Allow further attributes between cfg(test) and the item.
            while tokens.get(j).is_some_and(|t| t.is_punct('#')) {
                if let Some(close) = tokens[j + 1..]
                    .iter()
                    .position(|t| t.is_punct(']'))
                    .map(|p| j + 1 + p)
                {
                    j = close + 1;
                } else {
                    break;
                }
            }
            if tokens.get(j).and_then(Token::ident) == Some("mod") {
                if let Some(open) = tokens[j..]
                    .iter()
                    .position(|t| t.is_punct('{'))
                    .map(|p| j + p)
                {
                    if let Some(close) = matching_brace(tokens, open) {
                        i = close + 1;
                        continue;
                    }
                }
            }
            i = j;
            continue;
        }
        if tokens[i].ident() == Some("fn") {
            // `fn` in type position (`fn(..)`) has no following ident.
            if let Some(name) = tokens.get(i + 1).and_then(Token::ident) {
                let sig_line = tokens[i].line;
                // Find the body open brace or a trailing `;` (trait decl).
                let mut j = i + 2;
                let mut body = None;
                while j < tokens.len() {
                    if tokens[j].is_punct(';') {
                        break;
                    }
                    if tokens[j].is_punct('{') {
                        if let Some(close) = matching_brace(tokens, j) {
                            body = Some((j + 1)..close);
                            i = j; // re-scan inside the body for nested fns
                        }
                        break;
                    }
                    j += 1;
                }
                if let Some(body) = body {
                    out.push(FnDecl {
                        name: name.to_owned(),
                        file: file_idx,
                        sig_line,
                        body,
                    });
                }
            }
        }
        i += 1;
    }
}

fn collect_consts(tokens: &[Token], out: &mut BTreeMap<String, String>) {
    for i in 0..tokens.len() {
        let kw = tokens[i].ident();
        if kw != Some("const") && kw != Some("static") {
            continue;
        }
        let Some(name) = tokens.get(i + 1).and_then(Token::ident) else {
            continue;
        };
        // Find `= "value"` within a short window (the type annotation).
        for j in (i + 2)..(i + 12).min(tokens.len().saturating_sub(1)) {
            if tokens[j].is_punct(';') {
                break;
            }
            if tokens[j].is_punct('=') {
                if let Some(Tok::Str(v)) = tokens.get(j + 1).map(|t| t.tok.clone()) {
                    out.insert(name.to_owned(), v);
                }
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> CrateModel {
        CrateModel::build(vec![SourceFile::parse("lib.rs", src, false)])
    }

    #[test]
    fn discovers_functions_and_bodies() {
        let m = model(
            "pub fn alpha(x: u64) -> u64 { x + 1 }\n\
             impl Foo {\n    pub(crate) fn beta(&self) { self.go(); }\n}\n\
             trait T { fn gamma(&self); }\n",
        );
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "beta"], "gamma has no body");
        assert!(m.by_name.contains_key("beta"));
    }

    #[test]
    fn cfg_test_modules_are_skipped() {
        let m = model(
            "fn real() {}\n\
             #[cfg(test)]\nmod tests {\n    #[test]\n    fn fake() { real(); }\n}\n",
        );
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["real"]);
    }

    #[test]
    fn nested_fns_and_closures_do_not_confuse_bodies() {
        let m = model("fn outer() { let f = |x: u64| { x }; fn inner() {} inner(); }\n");
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
        // outer's body must span past inner.
        let outer = &m.fns[0];
        let inner = &m.fns[1];
        assert!(outer.body.start < inner.body.start && inner.body.end <= outer.body.end);
    }

    #[test]
    fn const_and_static_strings_collect() {
        let m = model(
            "pub const NAMENODE_ADDR: &str = \"bb-namenode\";\n\
             static GREETING: &'static str = \"hi\";\n\
             const N: usize = 4;\n",
        );
        assert_eq!(m.const_str("NAMENODE_ADDR"), Some("bb-namenode"));
        assert_eq!(m.const_str("GREETING"), Some("hi"));
        assert_eq!(m.const_str("N"), None);
    }

    #[test]
    fn excluded_files_contribute_consts_but_no_fns() {
        let m = CrateModel::build(vec![SourceFile::parse(
            "x.rs",
            "pub const A: &str = \"v\"; pub fn hidden() {}",
            true,
        )]);
        assert_eq!(m.const_str("A"), Some("v"));
        assert!(m.fns.is_empty());
    }

    #[test]
    fn brace_and_paren_matching() {
        let (toks, _) = lex("{ a ( b { c } ) d }");
        assert_eq!(matching_brace(&toks, 0), Some(toks.len() - 1));
        let open = toks.iter().position(|t| t.is_punct('(')).unwrap();
        let close = matching_paren(&toks, open).unwrap();
        assert!(toks[close].is_punct(')'));
    }
}
