//! Lock-order analysis: acquisition sequences, the global lock graph,
//! and deadlock cycles as candidate watchdog checkers.
//!
//! The IR already carries `LockAcquire`/`LockRelease` ops with named
//! resources (the extractor derives them from receiver chains, the
//! self-descriptions name them directly). This pass derives, per
//! function, the sequence of lock resources acquired, then builds a
//! global *lock graph*: an edge `a → b` means some execution acquires
//! `b` while holding `a` — either directly in one function body, or
//! interprocedurally (a callee reachable from a call site made under `a`
//! acquires `b`). Cycles in that graph are potential ABBA deadlocks.
//!
//! Because the IR is a linear over-approximation of each body (no
//! branch-sensitivity) and `LockRelease` is only extracted where the
//! source drops guards explicitly, the analysis is deliberately
//! *pessimistic*: it may report an ordering edge a real execution never
//! takes, but it cannot miss one that the IR witnesses. Each cycle is
//! also emitted as a **candidate deadlock-watchdog checker**: an ordered
//! bounded `try_lock` probe over the cycle's resources, the shape every
//! hand-written lock checker in the target crates already takes.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use wdog_gen::ir::{OpKind, ProgramIr};

use crate::callgraph::CallGraph;

/// Lock resources acquired by one function, in op order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LockSequence {
    /// Function name.
    pub function: String,
    /// Acquired lock resources, in order, duplicates kept.
    pub acquires: Vec<String>,
}

/// One ordering edge in the lock graph with its witnesses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LockEdge {
    /// Lock held first.
    pub from: String,
    /// Lock acquired second.
    pub to: String,
    /// `function` or `function -> callee` sites that witness the edge,
    /// sorted and deduplicated.
    pub witnesses: Vec<String>,
}

/// A potential-deadlock cycle and its derived checker spec.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeadlockCycle {
    /// The cycle's lock resources, sorted.
    pub resources: Vec<String>,
    /// Witnesses of every edge inside the cycle.
    pub witnesses: Vec<String>,
    /// The candidate checker emitted for this cycle.
    pub checker: CandidateLockChecker,
}

/// A candidate deadlock-watchdog checker: bounded try-locks in a fixed
/// global order. If every probe acquires within its bound, no thread is
/// wedged inside the cycle; a timeout names the wedged resource.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CandidateLockChecker {
    /// Checker name, `{program}.deadlock.{joined resources}`.
    pub name: String,
    /// Component the checker reports against.
    pub component: String,
    /// Ordered probe ops, `try_lock:{resource}`.
    pub ops: Vec<String>,
}

/// The complete lock-order analysis for one program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LockOrderReport {
    /// Program name.
    pub program: String,
    /// Per-function acquisition sequences (functions with none omitted).
    pub sequences: Vec<LockSequence>,
    /// The global lock graph, sorted by (from, to).
    pub edges: Vec<LockEdge>,
    /// Potential deadlock cycles (empty on a well-ordered program).
    pub cycles: Vec<DeadlockCycle>,
    /// `LockAcquire` ops with no named resource, skipped (`function#op`).
    pub unnamed_acquires: Vec<String>,
}

impl LockOrderReport {
    /// True when no deadlock cycle was found.
    pub fn is_cycle_free(&self) -> bool {
        self.cycles.is_empty()
    }
}

/// Lock resources acquired anywhere in `f` itself.
fn own_acquires(ir: &ProgramIr, name: &str) -> BTreeSet<String> {
    let Some(f) = ir.function(name) else {
        return BTreeSet::new();
    };
    f.ops
        .iter()
        .filter(|o| matches!(o.kind, OpKind::LockAcquire))
        .filter_map(|o| o.resource.clone())
        .collect()
}

/// Runs the lock-order analysis over `ir` using `graph` for
/// interprocedural closure.
pub fn analyze_locks(ir: &ProgramIr, graph: &CallGraph) -> LockOrderReport {
    // Transitive acquire sets: every lock a call into `f` may take.
    let mut transitive: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for name in graph.nodes() {
        let mut all = BTreeSet::new();
        for r in graph.reachable(name) {
            all.extend(own_acquires(ir, &r));
        }
        transitive.insert(name.to_owned(), all);
    }

    let mut sequences = Vec::new();
    let mut unnamed = Vec::new();
    let mut witnesses: BTreeMap<(String, String), BTreeSet<String>> = BTreeMap::new();

    for f in ir.functions.values() {
        let mut held: Vec<String> = Vec::new();
        let mut acquires = Vec::new();
        for op in &f.ops {
            match &op.kind {
                OpKind::LockAcquire => {
                    let Some(res) = &op.resource else {
                        unnamed.push(op.id_in(&f.name).to_string());
                        continue;
                    };
                    for h in &held {
                        if h != res {
                            witnesses
                                .entry((h.clone(), res.clone()))
                                .or_default()
                                .insert(f.name.clone());
                        }
                    }
                    held.push(res.clone());
                    acquires.push(res.clone());
                }
                OpKind::LockRelease => {
                    if let Some(res) = &op.resource {
                        if let Some(pos) = held.iter().rposition(|h| h == res) {
                            held.remove(pos);
                        }
                    } else {
                        // Unnamed release: pessimistically drops nothing
                        // (keeps ordering edges over-approximate).
                    }
                }
                OpKind::Call { callee } => {
                    if held.is_empty() {
                        continue;
                    }
                    let Some(callee_locks) = transitive.get(callee) else {
                        continue;
                    };
                    for h in &held {
                        for l in callee_locks {
                            if h != l {
                                witnesses
                                    .entry((h.clone(), l.clone()))
                                    .or_default()
                                    .insert(format!("{} -> {}", f.name, callee));
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        if !acquires.is_empty() {
            sequences.push(LockSequence {
                function: f.name.clone(),
                acquires,
            });
        }
    }
    sequences.sort_by(|a, b| a.function.cmp(&b.function));
    unnamed.sort();
    unnamed.dedup();

    let edges: Vec<LockEdge> = witnesses
        .iter()
        .map(|((from, to), w)| LockEdge {
            from: from.clone(),
            to: to.clone(),
            witnesses: w.iter().cloned().collect(),
        })
        .collect();

    let cycles = find_cycles(&ir.name, &edges);

    LockOrderReport {
        program: ir.name.clone(),
        sequences,
        edges,
        cycles,
        unnamed_acquires: unnamed,
    }
}

/// SCCs of the lock graph with more than one lock (self-edges are
/// filtered at edge construction: re-acquiring the same named resource is
/// reported by the targets' own reentrancy, not this pass).
fn find_cycles(program: &str, edges: &[LockEdge]) -> Vec<DeadlockCycle> {
    // Reuse the call-graph SCC machinery by shaping locks as a graph.
    let mut adj: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.from.clone()).or_default().insert(e.to.clone());
        adj.entry(e.to.clone()).or_default();
    }
    let graph = CallGraph {
        edges: adj,
        roots: Vec::new(),
    };
    graph
        .cyclic_sccs()
        .into_iter()
        .map(|resources| {
            let inside: BTreeSet<&str> = resources.iter().map(String::as_str).collect();
            let mut witnesses: BTreeSet<String> = BTreeSet::new();
            for e in edges {
                if inside.contains(e.from.as_str()) && inside.contains(e.to.as_str()) {
                    witnesses.extend(e.witnesses.iter().cloned());
                }
            }
            let checker = CandidateLockChecker {
                name: format!("{program}.deadlock.{}", resources.join("_")),
                component: format!("{program}.locks"),
                ops: resources.iter().map(|r| format!("try_lock:{r}")).collect(),
            };
            DeadlockCycle {
                resources,
                witnesses: witnesses.into_iter().collect(),
                checker,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdog_gen::ir::ProgramBuilder;

    fn analyze(ir: &ProgramIr) -> LockOrderReport {
        analyze_locks(ir, &CallGraph::build(ir))
    }

    #[test]
    fn intra_function_ordering_edges() {
        let ir = ProgramBuilder::new("p")
            .function("f", |f| {
                f.op("a", OpKind::LockAcquire, |o| o.resource("la")).op(
                    "b",
                    OpKind::LockAcquire,
                    |o| o.resource("lb"),
                )
            })
            .build();
        let r = analyze(&ir);
        assert_eq!(r.sequences.len(), 1);
        assert_eq!(r.sequences[0].acquires, vec!["la", "lb"]);
        assert_eq!(r.edges.len(), 1);
        assert_eq!((&*r.edges[0].from, &*r.edges[0].to), ("la", "lb"));
        assert_eq!(r.edges[0].witnesses, vec!["f"]);
        assert!(r.is_cycle_free());
    }

    #[test]
    fn release_clears_held_set() {
        let ir = ProgramBuilder::new("p")
            .function("f", |f| {
                f.op("a", OpKind::LockAcquire, |o| o.resource("la"))
                    .op("ra", OpKind::LockRelease, |o| o.resource("la"))
                    .op("b", OpKind::LockAcquire, |o| o.resource("lb"))
            })
            .build();
        let r = analyze(&ir);
        assert!(r.edges.is_empty(), "{:?}", r.edges);
    }

    #[test]
    fn interprocedural_edge_through_call_chain() {
        let ir = ProgramBuilder::new("p")
            .function("outer", |f| {
                f.op("a", OpKind::LockAcquire, |o| o.resource("la"))
                    .call("middle")
            })
            .function("middle", |f| f.call("inner"))
            .function("inner", |f| {
                f.op("b", OpKind::LockAcquire, |o| o.resource("lb"))
            })
            .build();
        let r = analyze(&ir);
        assert_eq!(r.edges.len(), 1);
        assert_eq!(r.edges[0].witnesses, vec!["outer -> middle"]);
    }

    #[test]
    fn abba_cycle_yields_candidate_checker() {
        let ir = ProgramBuilder::new("p")
            .function("f", |f| {
                f.op("a", OpKind::LockAcquire, |o| o.resource("la")).op(
                    "b",
                    OpKind::LockAcquire,
                    |o| o.resource("lb"),
                )
            })
            .function("g", |f| {
                f.op("b", OpKind::LockAcquire, |o| o.resource("lb")).op(
                    "a",
                    OpKind::LockAcquire,
                    |o| o.resource("la"),
                )
            })
            .build();
        let r = analyze(&ir);
        assert_eq!(r.cycles.len(), 1);
        let c = &r.cycles[0];
        assert_eq!(c.resources, vec!["la", "lb"]);
        assert_eq!(c.witnesses, vec!["f", "g"]);
        assert_eq!(c.checker.name, "p.deadlock.la_lb");
        assert_eq!(c.checker.ops, vec!["try_lock:la", "try_lock:lb"]);
        assert!(!r.is_cycle_free());
    }

    #[test]
    fn reacquiring_same_lock_is_not_a_cycle() {
        let ir = ProgramBuilder::new("p")
            .function("f", |f| {
                f.op("a", OpKind::LockAcquire, |o| o.resource("la")).op(
                    "b",
                    OpKind::LockAcquire,
                    |o| o.resource("la"),
                )
            })
            .build();
        let r = analyze(&ir);
        assert!(r.edges.is_empty());
        assert!(r.is_cycle_free());
    }

    #[test]
    fn unnamed_acquires_are_recorded_not_dropped_silently() {
        let ir = ProgramBuilder::new("p")
            .function("f", |f| f.simple_op("a", OpKind::LockAcquire))
            .build();
        let r = analyze(&ir);
        assert_eq!(r.unnamed_acquires, vec!["f#a"]);
    }
}
