//! A minimal Rust lexer: just enough structure for call-site extraction.
//!
//! The workspace builds fully offline, so there is no `syn` to lean on.
//! This hand-rolled lexer produces the four token shapes the extractor
//! needs — identifiers, string literals (with their values, for resource
//! resolution), punctuation, and lifetimes — plus the `// wdog:` comment
//! annotations the paper's "developer tags customized vulnerable methods"
//! mechanism rides on. Everything else (numbers, other comments, doc text)
//! is consumed and dropped.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// String literal (plain, raw, or byte), with its decoded-enough value.
    Str(String),
    /// Any single punctuation character.
    Punct(char),
    /// A lifetime like `'a` (kept distinct so apostrophes don't confuse).
    Lifetime,
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token shape.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

impl Token {
    /// Returns the identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Returns `true` if this token is the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }
}

/// A `// wdog: <directive>` comment, e.g. `// wdog: vulnerable name=x`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Annotation {
    /// 1-based line the comment sits on.
    pub line: u32,
    /// Directive text after `wdog:`, trimmed.
    pub body: String,
}

/// Lexes `src` into tokens and `// wdog:` annotations.
pub fn lex(src: &str) -> (Vec<Token>, Vec<Annotation>) {
    let chars: Vec<char> = src.chars().collect();
    let mut tokens = Vec::new();
    let mut annotations = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0usize;

    let bump_lines = |text: &[char]| text.iter().filter(|&&c| c == '\n').count() as u32;

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start = i + 2;
                let mut end = start;
                while end < chars.len() && chars[end] != '\n' {
                    end += 1;
                }
                let text: String = chars[start..end].iter().collect();
                let trimmed = text.trim_start_matches(['/', '!']).trim();
                if let Some(body) = trimmed.strip_prefix("wdog:") {
                    annotations.push(Annotation {
                        line,
                        body: body.trim().to_owned(),
                    });
                }
                i = end;
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < chars.len() && depth > 0 {
                    if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                        depth += 1;
                        j += 2;
                    } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                line += bump_lines(&chars[i..j.min(chars.len())]);
                i = j;
            }
            '"' => {
                let (value, end) = lex_string(&chars, i + 1);
                line += bump_lines(&chars[i..end.min(chars.len())]);
                tokens.push(Token {
                    tok: Tok::Str(value),
                    line,
                });
                i = end;
            }
            'r' | 'b' if is_string_prefix(&chars, i) => {
                let (value, end) = lex_prefixed_string(&chars, i);
                line += bump_lines(&chars[i..end.min(chars.len())]);
                tokens.push(Token {
                    tok: Tok::Str(value),
                    line,
                });
                i = end;
            }
            '\'' => {
                // Lifetime `'a` (ident chars with no closing quote right
                // after one char) vs char literal `'x'` / `'\n'`.
                let next = chars.get(i + 1).copied().unwrap_or(' ');
                if (next.is_alphabetic() || next == '_') && chars.get(i + 2) != Some(&'\'') {
                    let mut j = i + 1;
                    while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                        j += 1;
                    }
                    tokens.push(Token {
                        tok: Tok::Lifetime,
                        line,
                    });
                    i = j;
                } else {
                    let mut j = i + 1;
                    if chars.get(j) == Some(&'\\') {
                        j += 2; // skip the escaped char
                                // `\u{...}` escapes.
                        if chars.get(j - 1) == Some(&'u') && chars.get(j) == Some(&'{') {
                            while j < chars.len() && chars[j] != '}' {
                                j += 1;
                            }
                            j += 1;
                        }
                    } else {
                        j += 1;
                    }
                    while j < chars.len() && chars[j] != '\'' {
                        j += 1;
                    }
                    i = j + 1;
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                let ident: String = chars[i..j].iter().collect();
                tokens.push(Token {
                    tok: Tok::Ident(ident),
                    line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                // Float continuation: `1.5` but not `1..4` or `1.method()`.
                if chars.get(j) == Some(&'.')
                    && chars.get(j + 1).is_some_and(|c| c.is_ascii_digit())
                {
                    j += 1;
                    while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                        j += 1;
                    }
                }
                i = j; // numbers carry no signal for extraction
            }
            other => {
                tokens.push(Token {
                    tok: Tok::Punct(other),
                    line,
                });
                i += 1;
            }
        }
    }
    (tokens, annotations)
}

fn is_string_prefix(chars: &[char], i: usize) -> bool {
    // r"..", r#"..."#, b"..", br"..", br#"..."#
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
        while chars.get(j) == Some(&'#') {
            j += 1;
        }
    }
    j > i && chars.get(j) == Some(&'"')
}

/// Lexes a plain string body starting just after the opening quote.
/// Returns (value, index after closing quote).
fn lex_string(chars: &[char], start: usize) -> (String, usize) {
    let mut value = String::new();
    let mut j = start;
    while j < chars.len() {
        match chars[j] {
            '\\' => {
                // Keep escaped chars opaque; resource names never use them.
                if let Some(&esc) = chars.get(j + 1) {
                    value.push(esc);
                }
                j += 2;
            }
            '"' => return (value, j + 1),
            c => {
                value.push(c);
                j += 1;
            }
        }
    }
    (value, j)
}

/// Lexes `r`/`b`/`br`-prefixed strings starting at the prefix.
fn lex_prefixed_string(chars: &[char], start: usize) -> (String, usize) {
    let mut j = start;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    let raw = chars.get(j) == Some(&'r');
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    debug_assert_eq!(chars.get(j), Some(&'"'));
    j += 1;
    if !raw {
        return lex_string(chars, j);
    }
    let mut value = String::new();
    while j < chars.len() {
        if chars[j] == '"' {
            let closing = (1..=hashes).all(|k| chars.get(j + k) == Some(&'#'));
            if closing {
                return (value, j + 1 + hashes);
            }
        }
        value.push(chars[j]);
        j += 1;
    }
    (value, j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn lexes_method_chain() {
        let (toks, _) = lex("shared.disk.fsync(&self.path)?;");
        let shapes: Vec<String> = toks
            .iter()
            .map(|t| match &t.tok {
                Tok::Ident(s) => s.clone(),
                Tok::Punct(c) => c.to_string(),
                Tok::Str(s) => format!("{s:?}"),
                Tok::Lifetime => "'_".into(),
            })
            .collect();
        assert_eq!(
            shapes,
            vec!["shared", ".", "disk", ".", "fsync", "(", "&", "self", ".", "path", ")", "?", ";"]
        );
    }

    #[test]
    fn captures_wdog_annotations_with_lines() {
        let src = "let a = 1;\n// wdog: vulnerable name=index_put resource=index\nx.put(k, v);\n// plain comment\n";
        let (_, anns) = lex(src);
        assert_eq!(anns.len(), 1);
        assert_eq!(anns[0].line, 2);
        assert_eq!(anns[0].body, "vulnerable name=index_put resource=index");
    }

    #[test]
    fn string_values_survive() {
        let (toks, _) = lex(r#"disk.append("wal/log", &frame)"#);
        assert!(toks.iter().any(|t| t.tok == Tok::Str("wal/log".into())));
    }

    #[test]
    fn raw_and_byte_strings_lex() {
        let (toks, _) = lex(r##"let a = r#"raw "x" body"#; let b = b"bytes";"##);
        let strs: Vec<&str> = toks
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, vec![r#"raw "x" body"#, "bytes"]);
    }

    #[test]
    fn lifetimes_and_chars_disambiguate() {
        let (toks, _) = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = toks.iter().filter(|t| t.tok == Tok::Lifetime).count();
        assert_eq!(lifetimes, 2);
        // Char literal contents must not leak identifiers.
        assert!(!idents("let c = 'x';").contains(&"x".to_owned()));
    }

    #[test]
    fn comments_and_numbers_are_dropped() {
        let ids = idents("// fsync here\n/* disk.read */ let x = 42u64 + 1.5; for i in 0..4 {}");
        assert_eq!(ids, vec!["let", "x", "for", "i", "in"]);
    }

    #[test]
    fn line_numbers_track_multiline_strings() {
        let (toks, _) = lex("let a = \"l1\nl2\";\nfsync();");
        let fsync = toks.iter().find(|t| t.ident() == Some("fsync")).unwrap();
        assert_eq!(fsync.line, 3);
    }
}
