//! wdog-analyze: static extraction of AutoWatchdog IR from Rust source.
//!
//! The paper's AutoWatchdog front end analyzes the target program itself
//! (Soot over Java bytecode) to find continuously-executed regions and
//! vulnerable operations. This workspace's targets instead ship
//! hand-written `describe_ir()` self-descriptions — convenient, but free
//! to rot as the source changes. This crate closes that gap:
//!
//! * [`extract`] parses each target crate's Rust source with a minimal
//!   hand-rolled [`lexer`] (the workspace builds offline; no `syn`),
//!   discovers spawn-rooted long-running regions, classifies call sites
//!   with the shared [`wdog_gen::patterns`] rule table, and emits a
//!   [`wdog_gen::ProgramIr`] plus source sites and runtime hook firings;
//! * [`drift`] compares that extracted IR against the self-description
//!   and the generated hook plan, producing the
//!   [`wdog_gen::DriftReport`] that the `wdog-lint` tool gates CI on.
//!
//! The extractor is deliberately conservative (see `DESIGN.md` §2 for
//! the soundness limits): no macro expansion, no trait-object
//! resolution — ambiguous calls are skipped, and `// wdog:` annotations
//! cover the places where that matters.

pub mod callgraph;
pub mod coverage;
pub mod drift;
pub mod extract;
pub mod lexer;
pub mod locks;
pub mod model;
pub mod realclock;
pub mod safety;

pub use callgraph::{CallGraph, CallGraphSummary};
pub use coverage::{coverage_matrix, BlindSpot, CoverageMatrix, CoverageStatus};
pub use drift::compare;
pub use extract::{
    extract_model, extract_target, restrict_to_regions, target_named, workspace_root,
    ExtractedProgram, TargetConfig, TARGETS,
};
pub use locks::{analyze_locks, LockOrderReport};
pub use model::{CrateModel, SourceFile};
pub use realclock::{
    real_clock_exemptions, scan_real_clock, RealClockFinding, RealClockReport, REAL_CLOCK_ROOTS,
};
pub use safety::{analyze_safety, analyze_safety_model, SafetyClass, SafetyReport};
