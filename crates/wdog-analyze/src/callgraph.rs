//! Interprocedural call graph over an extracted (or described) IR.
//!
//! Every downstream analysis pass — lock ordering ([`crate::locks`]) and
//! the coverage-gap matrix ([`crate::coverage`]) — walks the same graph,
//! so it is built once, deterministically: nodes are every function in
//! the IR, edges are the resolved `Call` ops (dangling callees are
//! dropped; the IR validator reports those separately), and all node and
//! neighbour iteration is in sorted order. The graph therefore depends
//! only on the *set* of functions and calls, never on source-file
//! ordering — a property the workspace proptests pin down.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use wdog_gen::ir::ProgramIr;

/// A deterministic call graph: sorted nodes, sorted edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallGraph {
    /// Adjacency: every function in the IR has an entry, even if it calls
    /// nothing. Only edges to functions that exist in the IR are kept.
    pub edges: BTreeMap<String, BTreeSet<String>>,
    /// Long-running, non-init entry functions, sorted.
    pub roots: Vec<String>,
}

impl CallGraph {
    /// Builds the graph from `ir`.
    pub fn build(ir: &ProgramIr) -> Self {
        let mut edges: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for f in ir.functions.values() {
            let callees = edges.entry(f.name.clone()).or_default();
            for callee in f.callees() {
                if ir.function(callee).is_some() {
                    callees.insert(callee.to_owned());
                }
            }
        }
        let roots = ir
            .functions
            .values()
            .filter(|f| f.long_running && !f.init_only)
            .map(|f| f.name.clone())
            .collect();
        Self { edges, roots }
    }

    /// All node names, sorted.
    pub fn nodes(&self) -> impl Iterator<Item = &str> {
        self.edges.keys().map(String::as_str)
    }

    /// Number of call edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(BTreeSet::len).sum()
    }

    /// Every function reachable from `entry` (including it), sorted.
    pub fn reachable(&self, entry: &str) -> BTreeSet<String> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![entry.to_owned()];
        while let Some(name) = stack.pop() {
            if !self.edges.contains_key(&name) || !seen.insert(name.clone()) {
                continue;
            }
            for callee in &self.edges[&name] {
                if !seen.contains(callee) {
                    stack.push(callee.clone());
                }
            }
        }
        seen
    }

    /// Strongly connected components via iterative Tarjan, normalized for
    /// determinism: members sorted within each SCC, SCCs sorted by their
    /// smallest member. The partition depends only on the edge set.
    pub fn sccs(&self) -> Vec<Vec<String>> {
        let names: Vec<&String> = self.edges.keys().collect();
        let index_of: BTreeMap<&str, usize> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i))
            .collect();
        let n = names.len();
        let mut index = vec![usize::MAX; n];
        let mut lowlink = vec![usize::MAX; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut sccs: Vec<Vec<String>> = Vec::new();

        // Explicit DFS frames: (node, neighbour iterator position).
        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            let mut frames: Vec<(usize, Vec<usize>, usize)> = Vec::new();
            let neigh = |v: usize| -> Vec<usize> {
                self.edges[names[v]]
                    .iter()
                    .map(|c| index_of[c.as_str()])
                    .collect()
            };
            index[start] = next_index;
            lowlink[start] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start] = true;
            frames.push((start, neigh(start), 0));

            while let Some((v, ns, pos)) = frames.last_mut() {
                if *pos < ns.len() {
                    let w = ns[*pos];
                    *pos += 1;
                    let v = *v;
                    if index[w] == usize::MAX {
                        index[w] = next_index;
                        lowlink[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        frames.push((w, neigh(w), 0));
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                } else {
                    let v = *v;
                    frames.pop();
                    if let Some((parent, _, _)) = frames.last() {
                        lowlink[*parent] = lowlink[*parent].min(lowlink[v]);
                    }
                    if lowlink[v] == index[v] {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            comp.push(names[w].clone());
                            if w == v {
                                break;
                            }
                        }
                        comp.sort();
                        sccs.push(comp);
                    }
                }
            }
        }
        sccs.sort_by(|a, b| a[0].cmp(&b[0]));
        sccs
    }

    /// SCCs that are actual cycles: more than one member, or a self-loop.
    pub fn cyclic_sccs(&self) -> Vec<Vec<String>> {
        self.sccs()
            .into_iter()
            .filter(|c| c.len() > 1 || self.edges[&c[0]].contains(&c[0]))
            .collect()
    }

    /// True if the condensation (SCCs collapsed to single nodes) is
    /// acyclic — which Tarjan guarantees; exposed so property tests can
    /// assert it directly against an independent check.
    pub fn condensation_is_acyclic(&self) -> bool {
        let sccs = self.sccs();
        let mut comp_of: BTreeMap<&str, usize> = BTreeMap::new();
        for (i, c) in sccs.iter().enumerate() {
            for m in c {
                comp_of.insert(m, i);
            }
        }
        // Collect condensation edges, then Kahn's algorithm.
        let mut cedges: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
        for (from, tos) in &self.edges {
            for to in tos {
                let (a, b) = (comp_of[from.as_str()], comp_of[to.as_str()]);
                if a != b {
                    cedges.entry(a).or_default().insert(b);
                }
            }
        }
        let n = sccs.len();
        let mut indeg = vec![0usize; n];
        for tos in cedges.values() {
            for &t in tos {
                indeg[t] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0usize;
        while let Some(v) = queue.pop() {
            seen += 1;
            if let Some(tos) = cedges.get(&v) {
                for &t in tos {
                    indeg[t] -= 1;
                    if indeg[t] == 0 {
                        queue.push(t);
                    }
                }
            }
        }
        seen == n
    }

    /// Serializable summary for reports.
    pub fn summary(&self, program: &str) -> CallGraphSummary {
        CallGraphSummary {
            program: program.to_owned(),
            functions: self.edges.len(),
            edges: self.edge_count(),
            roots: self.roots.clone(),
            cycles: self.cyclic_sccs(),
        }
    }
}

/// The call-graph shape, as archived in analysis artifacts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallGraphSummary {
    /// Program name.
    pub program: String,
    /// Node count.
    pub functions: usize,
    /// Edge count.
    pub edges: usize,
    /// Long-running entries.
    pub roots: Vec<String>,
    /// Cyclic SCCs (usually recursion groups), sorted.
    pub cycles: Vec<Vec<String>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdog_gen::ir::{OpKind, ProgramBuilder};

    fn ir() -> ProgramIr {
        ProgramBuilder::new("p")
            .function("main_loop", |f| f.long_running().call("work").call("log"))
            .function("work", |f| f.simple_op("w", OpKind::DiskWrite).call("log"))
            .function("log", |f| f.compute("fmt"))
            .function("init", |f| f.init_only().call("work"))
            .function("lonely", |f| f.compute("idle"))
            .build()
    }

    #[test]
    fn builds_sorted_edges_and_roots() {
        let g = CallGraph::build(&ir());
        assert_eq!(g.edges.len(), 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.roots, vec!["main_loop"]);
        assert_eq!(
            g.edges["main_loop"].iter().collect::<Vec<_>>(),
            vec!["log", "work"]
        );
    }

    #[test]
    fn dangling_callees_are_dropped() {
        let g = CallGraph::build(
            &ProgramBuilder::new("p")
                .function("a", |f| f.call("ghost"))
                .build(),
        );
        assert!(g.edges["a"].is_empty());
    }

    #[test]
    fn reachability_closes_over_chains() {
        let g = CallGraph::build(&ir());
        let r = g.reachable("main_loop");
        assert_eq!(
            r.iter().collect::<Vec<_>>(),
            vec!["log", "main_loop", "work"]
        );
        assert!(!r.contains("lonely"));
    }

    #[test]
    fn sccs_partition_all_nodes_and_find_cycles() {
        let g = CallGraph::build(
            &ProgramBuilder::new("p")
                .function("a", |f| f.call("b"))
                .function("b", |f| f.call("c"))
                .function("c", |f| f.call("a"))
                .function("d", |f| f.call("d"))
                .function("e", |f| f.compute("x"))
                .build(),
        );
        let sccs = g.sccs();
        let total: usize = sccs.iter().map(Vec::len).sum();
        assert_eq!(total, 5);
        let cycles = g.cyclic_sccs();
        assert_eq!(cycles.len(), 2);
        assert_eq!(cycles[0], vec!["a", "b", "c"]);
        assert_eq!(cycles[1], vec!["d"]);
        assert!(g.condensation_is_acyclic());
    }

    #[test]
    fn acyclic_graph_has_singleton_sccs_only() {
        let g = CallGraph::build(&ir());
        assert!(g.cyclic_sccs().is_empty());
        assert!(g.condensation_is_acyclic());
        assert_eq!(g.sccs().len(), 5);
    }

    #[test]
    fn summary_is_stable() {
        let g = CallGraph::build(&ir());
        let s = g.summary("p");
        assert_eq!(s.functions, 5);
        assert_eq!(s.edges, 4);
        assert!(s.cycles.is_empty());
    }
}
