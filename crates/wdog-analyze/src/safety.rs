//! Checker-safety lint: prove every probe body is read-only or
//! replica-isolated (the paper's §3.2 isolation requirement, checked
//! mechanically instead of by convention).
//!
//! A watchdog checker runs *inside* the monitored process; if its probe
//! mutates shared state it can corrupt the very system it guards. The
//! target crates follow a convention: every mutation a probe performs is
//! confined to **probe-tagged** state — paths/keys/frames carrying the
//! `__wd` marker (or a const whose value carries it), or the dedicated
//! `WdProbe` wire variant that peers ignore. This pass makes the
//! convention checkable:
//!
//! * probe bodies are discovered lexically in each target's `wd.rs`
//!   (`table.register("fn#op", move |snap| {..})` closures and
//!   `ProbeChecker::new("id", .., move || {..})` closures) plus the
//!   `check` methods of configured hand-written checker files;
//! * every *mutating* call in a body (a known I/O or state-mutation
//!   method) must have a probe-tagged argument: a `__wd` string, a const
//!   resolving to one, the `WdProbe` variant, or a local whose
//!   initializer is tagged. Bare calls to local helper functions are
//!   followed one level (`probe_write(&disk, WAL_PROBE_PATH, ..)`);
//! * the class is then `read-only` (no mutations), `replica-write`
//!   (every mutation tagged), or `shared-mutation` — which
//!   `wdog-lint --deny-unsafe-checker` fails CI on.
//!
//! A `// wdog: replica <reason>` annotation inside a body is the audited
//! escape hatch for isolation the lexical rules cannot see (e.g. a
//! checker constructed over its own private store), mirroring the drift
//! allowlist: the exception ships next to the code it excuses.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::extract::{workspace_root, TargetConfig};
use crate::lexer::Token;
use crate::model::{matching_brace, matching_paren, CrateModel, SourceFile};

/// The probe-isolation marker every tagged resource carries.
pub const PROBE_MARKER: &str = "__wd";

/// Methods treated as mutations of shared state when untagged.
const MUTATORS: &[&str] = &[
    "append",
    "append_record",
    "create",
    "del",
    "delete",
    "fsync",
    "insert",
    "mkdir",
    "put",
    "remove",
    "remove_path",
    "rename",
    "send",
    "set",
    "set_data",
    "truncate",
    "write",
    "write_all",
    "write_record",
];

/// Hand-written checker files (beyond `wd.rs`) whose `check` methods are
/// probe bodies too.
fn checker_files(target: &str) -> &'static [&'static str] {
    match target {
        "miniblock" => &["disk_checker.rs"],
        _ => &[],
    }
}

/// Safety class of one probe body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SafetyClass {
    /// The body performs no recognized mutation.
    ReadOnly,
    /// Every mutation is probe-tagged (or annotation-excused).
    ReplicaWrite,
    /// At least one mutation reaches shared, untagged state.
    SharedMutation,
}

impl SafetyClass {
    /// Stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            SafetyClass::ReadOnly => "read-only",
            SafetyClass::ReplicaWrite => "replica-write",
            SafetyClass::SharedMutation => "shared-mutation",
        }
    }
}

/// One mutating call inside a probe body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MutationSite {
    /// The mutating method or helper name.
    pub method: String,
    /// 1-based source line.
    pub line: u32,
    /// Whether a probe tag was found for this call.
    pub tagged: bool,
}

/// One classified probe body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeSafety {
    /// Probe id (the registered `fn#op` / checker id, or
    /// `{enclosing_fn}@L{line}` when the id is not a literal).
    pub id: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the body start.
    pub line: u32,
    /// The derived class.
    pub class: SafetyClass,
    /// Every mutating call found.
    pub mutations: Vec<MutationSite>,
    /// The `// wdog: replica` justification, when one excuses the body.
    pub replica_annotation: Option<String>,
}

/// The checker-safety report for one target.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SafetyReport {
    /// Program name.
    pub program: String,
    /// Every probe body, sorted by (file, line).
    pub probes: Vec<ProbeSafety>,
    /// Notes (e.g. files scanned).
    pub info: Vec<String>,
}

impl SafetyReport {
    /// Probes classified as shared-mutation.
    pub fn violations(&self) -> Vec<&ProbeSafety> {
        self.probes
            .iter()
            .filter(|p| p.class == SafetyClass::SharedMutation)
            .collect()
    }

    /// True when no probe mutates shared state.
    pub fn is_safe(&self) -> bool {
        self.violations().is_empty()
    }
}

/// What one level of helper-function analysis needs to know.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HelperSummary {
    /// The helper (transitively) performs mutations.
    has_mutations: bool,
    /// ... and every one of them is tagged standalone.
    all_tagged: bool,
}

struct Scanner<'a> {
    model: &'a CrateModel,
    /// Const names whose string value carries the probe marker.
    probe_consts: Vec<&'a str>,
    helper_memo: BTreeMap<String, HelperSummary>,
}

impl<'a> Scanner<'a> {
    fn new(model: &'a CrateModel) -> Self {
        let probe_consts = model
            .consts
            .iter()
            .filter(|(_, v)| v.contains(PROBE_MARKER))
            .map(|(k, _)| k.as_str())
            .collect();
        Self {
            model,
            probe_consts,
            helper_memo: BTreeMap::new(),
        }
    }

    /// True if one token is probe-tagged on its own (given tagged locals).
    fn token_tagged(&self, t: &Token, locals: &BTreeMap<String, bool>) -> bool {
        match &t.tok {
            crate::lexer::Tok::Str(s) => {
                s.contains(PROBE_MARKER) || self.probe_consts.iter().any(|c| s.contains(c))
            }
            crate::lexer::Tok::Ident(id) => {
                id == "WdProbe"
                    || self.probe_consts.contains(&id.as_str())
                    || locals.get(id).copied().unwrap_or(false)
            }
            _ => false,
        }
    }

    fn any_tagged(&self, tokens: &[Token], locals: &BTreeMap<String, bool>) -> bool {
        tokens.iter().any(|t| self.token_tagged(t, locals))
    }

    /// Classifies the helper function `name` standalone (parameters count
    /// as untagged), memoized and cycle-guarded.
    fn helper_summary(&mut self, name: &str) -> HelperSummary {
        if let Some(s) = self.helper_memo.get(name) {
            return *s;
        }
        // Cycle guard: assume clean while analyzing; a recursive helper
        // converges to whatever its straight-line body says.
        self.helper_memo.insert(
            name.to_owned(),
            HelperSummary {
                has_mutations: false,
                all_tagged: true,
            },
        );
        let Some(indices) = self.model.by_name.get(name) else {
            return self.helper_memo[name];
        };
        if indices.len() != 1 {
            // Ambiguous helper: leave the conservative default (no
            // mutations assumed — ambiguity is reported at call sites
            // only via the mutator name list).
            return self.helper_memo[name];
        }
        let decl = self.model.fns[indices[0]].clone();
        let tokens = &self.model.files[decl.file].tokens;
        let sites = self.scan_body(tokens, decl.body.clone(), &BTreeMap::new());
        let summary = HelperSummary {
            has_mutations: !sites.is_empty(),
            all_tagged: sites.iter().all(|s| s.tagged),
        };
        self.helper_memo.insert(name.to_owned(), summary);
        summary
    }

    /// Finds every mutation site in a token range.
    fn scan_body(
        &mut self,
        tokens: &[Token],
        body: std::ops::Range<usize>,
        outer_locals: &BTreeMap<String, bool>,
    ) -> Vec<MutationSite> {
        let mut locals = outer_locals.clone();
        let mut sites = Vec::new();
        let mut i = body.start;
        while i < body.end {
            let t = &tokens[i];
            // Track `let [mut] name = <init> ;` and tag the local if its
            // initializer carries a probe tag.
            if t.ident() == Some("let") {
                let mut j = i + 1;
                if tokens.get(j).and_then(Token::ident) == Some("mut") {
                    j += 1;
                }
                if let Some(name) = tokens.get(j).and_then(Token::ident) {
                    let init_start = j + 1;
                    let mut k = init_start;
                    while k < body.end && !tokens[k].is_punct(';') {
                        k += 1;
                    }
                    let tagged = self.any_tagged(&tokens[init_start..k.min(body.end)], &locals);
                    if tagged {
                        locals.insert(name.to_owned(), true);
                    }
                }
                i += 1;
                continue;
            }
            let Some(name) = t.ident() else {
                i += 1;
                continue;
            };
            let is_call = tokens.get(i + 1).is_some_and(|n| n.is_punct('('));
            if !is_call {
                i += 1;
                continue;
            }
            let method_call = i > 0 && tokens[i - 1].is_punct('.');
            // `self.helper(..)` counts as a bare helper call; any other
            // receiver is judged by the mutator name list alone.
            let self_method = method_call
                && i >= 2
                && tokens[i - 2].ident() == Some("self")
                && !(i >= 3 && tokens[i - 3].is_punct('.'));
            let bare_call = !method_call || self_method;

            let close = matching_paren(tokens, i + 1).unwrap_or(body.end.min(tokens.len() - 1));
            let args = &tokens[i + 2..close.min(body.end)];

            if MUTATORS.contains(&name) {
                sites.push(MutationSite {
                    method: name.to_owned(),
                    line: t.line,
                    tagged: self.any_tagged(args, &locals),
                });
            } else if bare_call {
                let name = name.to_owned();
                let summary = self.helper_summary(&name);
                if summary.has_mutations {
                    let tagged = summary.all_tagged || self.any_tagged(args, &locals);
                    sites.push(MutationSite {
                        method: name,
                        line: t.line,
                        tagged,
                    });
                }
            }
            i += 1;
        }
        sites
    }
}

/// A discovered probe body awaiting classification.
struct ProbeUnit {
    id: String,
    file: usize,
    line: u32,
    body: std::ops::Range<usize>,
}

/// Finds `table.register("fn#op", move |..| { .. })` and
/// `ProbeChecker::new("id", .., move || { .. })` closures in `tokens`.
fn find_closure_units(file_idx: usize, file: &SourceFile, units: &mut Vec<ProbeUnit>) {
    let tokens = &file.tokens;
    let mut i = 0usize;
    while i < tokens.len() {
        let is_register = tokens[i].ident() == Some("register")
            && i > 0
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('('));
        let is_probe_new = tokens[i].ident() == Some("ProbeChecker")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 3).and_then(Token::ident) == Some("new")
            && tokens.get(i + 4).is_some_and(|t| t.is_punct('('));
        if !is_register && !is_probe_new {
            i += 1;
            continue;
        }
        let open = if is_register { i + 1 } else { i + 4 };
        let Some(close) = matching_paren(tokens, open) else {
            i += 1;
            continue;
        };
        // Probe id: the first string argument, or a synthesized locator.
        let id = match &tokens[open + 1].tok {
            crate::lexer::Tok::Str(s) => s.clone(),
            _ => format!("{}@L{}", file.rel_path, tokens[i].line),
        };
        // The probe body: the closure's brace block inside the arg list.
        let mut j = open + 1;
        let mut body = None;
        while j < close {
            if tokens[j].is_punct('|') {
                // Skip to the closing pipe of the parameter list.
                let mut k = j + 1;
                if tokens.get(k).is_some_and(|t| t.is_punct('|')) {
                    k += 1; // `||` — empty parameter list
                } else {
                    while k < close && !tokens[k].is_punct('|') {
                        k += 1;
                    }
                    k += 1;
                }
                // Body opens at the next brace (possibly after `-> Type`).
                while k < close && !tokens[k].is_punct('{') {
                    k += 1;
                }
                if k < close {
                    if let Some(end) = matching_brace(tokens, k) {
                        body = Some((k + 1)..end);
                    }
                }
                break;
            }
            j += 1;
        }
        if let Some(body) = body {
            units.push(ProbeUnit {
                id,
                file: file_idx,
                line: tokens[i].line,
                body,
            });
        }
        i = close + 1;
    }
}

/// Classifies every probe body of the crate in `model` (which must be
/// built *without* excluding the checker files).
pub fn analyze_safety_model(program: &str, model: &CrateModel) -> SafetyReport {
    let mut units = Vec::new();
    for (idx, file) in model.files.iter().enumerate() {
        let fname = file.rel_path.rsplit('/').next().unwrap_or(&file.rel_path);
        if fname == "wd.rs" {
            find_closure_units(idx, file, &mut units);
        }
        if checker_files(program).contains(&fname) {
            for decl in model.fns.iter().filter(|f| f.file == idx) {
                if decl.name == "check" {
                    units.push(ProbeUnit {
                        id: format!(
                            "{}::check@L{}",
                            fname.trim_end_matches(".rs"),
                            decl.sig_line
                        ),
                        file: idx,
                        line: decl.sig_line,
                        body: decl.body.clone(),
                    });
                }
            }
        }
    }

    let mut scanner = Scanner::new(model);
    let mut probes = Vec::new();
    for unit in units {
        let file = &model.files[unit.file];
        let tokens = &file.tokens;
        let mutations = scanner.scan_body(tokens, unit.body.clone(), &BTreeMap::new());

        // `// wdog: replica <reason>` inside the body line range excuses
        // untagged mutations — an audited, code-adjacent exception.
        let body_lines = (
            tokens.get(unit.body.start).map(|t| t.line).unwrap_or(0),
            tokens
                .get(unit.body.end.saturating_sub(1))
                .map(|t| t.line)
                .unwrap_or(u32::MAX),
        );
        let replica_annotation = file
            .annotations
            .iter()
            .find(|a| {
                a.body.starts_with("replica")
                    && a.line >= body_lines.0.saturating_sub(1)
                    && a.line <= body_lines.1
            })
            .map(|a| a.body.clone());

        let class = if mutations.is_empty() {
            SafetyClass::ReadOnly
        } else if mutations.iter().all(|m| m.tagged) || replica_annotation.is_some() {
            SafetyClass::ReplicaWrite
        } else {
            SafetyClass::SharedMutation
        };
        probes.push(ProbeSafety {
            id: unit.id,
            file: file.rel_path.clone(),
            line: unit.line,
            class,
            mutations,
            replica_annotation,
        });
    }
    probes.sort_by(|a, b| (&a.file, a.line, &a.id).cmp(&(&b.file, b.line, &b.id)));

    let mut info = vec![format!(
        "{} probe bodies scanned; {} probe-marker consts in scope",
        probes.len(),
        scanner.probe_consts.len()
    )];
    if probes.is_empty() {
        info.push("no probe bodies found — is wd.rs present?".to_owned());
    }
    SafetyReport {
        program: program.to_owned(),
        probes,
        info,
    }
}

/// Reads the target's crate sources (nothing excluded — probe bodies live
/// in the very files the IR extractor skips) and classifies every probe.
pub fn analyze_safety(cfg: &TargetConfig) -> std::io::Result<SafetyReport> {
    let root = workspace_root();
    let dir = root.join(cfg.src_dir);
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    paths.sort();
    let mut files = Vec::new();
    for path in paths {
        let src = std::fs::read_to_string(&path)?;
        let rel = format!(
            "{}/{}",
            cfg.src_dir,
            path.file_name().unwrap().to_string_lossy()
        );
        files.push(SourceFile::parse(rel, &src, false));
    }
    Ok(analyze_safety_model(cfg.name, &CrateModel::build(files)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(src: &str) -> SafetyReport {
        let model = CrateModel::build(vec![SourceFile::parse("crates/x/src/wd.rs", src, false)]);
        analyze_safety_model("x", &model)
    }

    #[test]
    fn read_only_probe_classifies_clean() {
        let r = report(
            r#"
fn op_table(s: &S) -> OpTable {
    table.register("f#read", move |_snap| {
        s.partitions.validate_all()
    });
    table
}
"#,
        );
        assert_eq!(r.probes.len(), 1);
        assert_eq!(r.probes[0].id, "f#read");
        assert_eq!(r.probes[0].class, SafetyClass::ReadOnly);
        assert!(r.is_safe());
    }

    #[test]
    fn tagged_write_is_replica_write() {
        let r = report(
            r#"
const PROBE: &str = "wal/__wd_probe";
fn op_table(s: &S) -> OpTable {
    table.register("f#w", move |_snap| {
        s.disk.append(PROBE, b"x")?;
        s.disk.fsync(PROBE)
    });
    table
}
"#,
        );
        assert_eq!(r.probes[0].class, SafetyClass::ReplicaWrite);
        assert_eq!(r.probes[0].mutations.len(), 2);
        assert!(r.probes[0].mutations.iter().all(|m| m.tagged));
    }

    #[test]
    fn untagged_write_is_a_violation() {
        let r = report(
            r#"
fn op_table(s: &S) -> OpTable {
    table.register("f#w", move |_snap| {
        s.disk.append("wal/log", b"x")
    });
    table
}
"#,
        );
        assert_eq!(r.probes[0].class, SafetyClass::SharedMutation);
        assert_eq!(r.violations().len(), 1);
        assert!(!r.is_safe());
    }

    #[test]
    fn tagged_local_binding_carries_the_tag() {
        let r = report(
            r#"
const KEY_PREFIX: &str = "__wd:";
fn op_table(s: &S) -> OpTable {
    table.register("f#put", move |_snap| {
        let key = format!("{KEY_PREFIX}probe");
        s.index.put(&key, "v");
        s.index.remove(&key);
        Ok(())
    });
    table
}
"#,
        );
        assert_eq!(r.probes[0].class, SafetyClass::ReplicaWrite, "{r:?}");
    }

    #[test]
    fn helper_call_with_tagged_args_is_replica_write() {
        let r = report(
            r#"
const PROBE: &str = "sst/__wd_probe";
fn probe_write(disk: &D, path: &str, payload: &[u8]) -> R {
    disk.append(path, payload)
}
fn op_table(s: &S) -> OpTable {
    table.register("f#w", move |_snap| {
        probe_write(&s.disk, PROBE, b"x")
    });
    table
}
"#,
        );
        assert_eq!(r.probes[0].class, SafetyClass::ReplicaWrite, "{r:?}");
        assert_eq!(r.probes[0].mutations[0].method, "probe_write");
    }

    #[test]
    fn helper_call_without_tags_is_a_violation() {
        let r = report(
            r#"
fn write_everything(disk: &D) -> R {
    disk.write_all("data/live", b"x")
}
fn op_table(s: &S) -> OpTable {
    table.register("f#w", move |_snap| {
        write_everything(&s.disk)
    });
    table
}
"#,
        );
        assert_eq!(r.probes[0].class, SafetyClass::SharedMutation);
    }

    #[test]
    fn probe_checker_closures_and_wdprobe_variant() {
        let r = report(
            r#"
fn build(s: &S) {
    b.checker(Box::new(ProbeChecker::new(
        "x.probe.send",
        "x.api",
        "send",
        clock,
        move || -> R {
            s.net.send(SRC, DST, Msg::WdProbe.encode())
        },
    )));
}
"#,
        );
        assert_eq!(r.probes.len(), 1);
        assert_eq!(r.probes[0].id, "x.probe.send");
        assert_eq!(r.probes[0].class, SafetyClass::ReplicaWrite);
    }

    #[test]
    fn replica_annotation_excuses_with_justification() {
        let r = report(
            r#"
fn op_table(s: &S) -> OpTable {
    table.register("f#w", move |_snap| {
        // wdog: replica probe store is checker-private
        s.replica.write_all("data/block", b"x")
    });
    table
}
"#,
        );
        assert_eq!(r.probes[0].class, SafetyClass::ReplicaWrite);
        assert!(r.probes[0]
            .replica_annotation
            .as_deref()
            .unwrap()
            .contains("checker-private"));
    }

    #[test]
    fn check_methods_in_checker_files_are_units() {
        let src = r#"
impl Checker for Legacy {
    fn check(&mut self) -> CheckStatus {
        let _ = self.store.list_volume("v0");
        CheckStatus::Pass
    }
}
impl Checker for Enhanced {
    fn check(&mut self) -> CheckStatus {
        self.probe_volume("v0")
    }
}
impl Enhanced {
    fn probe_volume(&self, v: &str) -> CheckStatus {
        let path = format!("blocks/{v}/__wd_probe");
        self.disk.write_all(&path, b"x");
        CheckStatus::Pass
    }
}
"#;
        let model = CrateModel::build(vec![SourceFile::parse(
            "crates/miniblock/src/disk_checker.rs",
            src,
            false,
        )]);
        let r = analyze_safety_model("miniblock", &model);
        assert_eq!(r.probes.len(), 2, "{r:?}");
        assert_eq!(r.probes[0].class, SafetyClass::ReadOnly);
        assert_eq!(r.probes[1].class, SafetyClass::ReplicaWrite, "{r:?}");
    }
}
