//! Drift comparison: extracted IR vs self-description vs planned hooks.
//!
//! Matching is **key-level and global across paired regions**: every
//! vulnerable op boils down to a similarity key `(vulnerability class,
//! op-kind label, resource family)` — the same key the reducer's
//! similar-op dedup collapses on. Two IRs that agree on the key set
//! produce watchdogs with identical checking power, regardless of how
//! many syntactic sites map onto each key or how ops are attributed to
//! shared helper functions. Leftover keys become directional findings:
//!
//! * extracted-only → [`DriftKind::MissingFromDescription`] (the source
//!   does something vulnerable the description is silent about), pointing
//!   at the concrete source site;
//! * described-only → [`DriftKind::DescribedNotInSource`] (the
//!   description claims an op that no longer exists).
//!
//! Regions pair by entry name; unpaired regions get region-level
//! findings. Finally every planned [`HookPoint`] is checked against the
//! hook keys and context fields the source actually fires
//! ([`DriftKind::UnhookedPlanPoint`]).

use std::collections::BTreeMap;

use wdog_gen::drift::{DriftFinding, DriftKind, DriftReport};
use wdog_gen::ir::ProgramIr;
use wdog_gen::regions::find_regions;
use wdog_gen::resource_family;
use wdog_gen::vulnerable::VulnerabilityRules;
use wdog_gen::WatchdogPlan;

use crate::extract::ExtractedProgram;

/// A similarity key plus where it came from (region + representative op).
#[derive(Debug, Clone)]
struct KeyedOp {
    region: String,
    op_id: String,
    detail: String,
}

/// Similarity key: `(class label, kind label, resource family)`.
type Key = (String, String, String);

fn vulnerable_keys(
    ir: &ProgramIr,
    entries: &[String],
    rules: &VulnerabilityRules,
) -> BTreeMap<Key, KeyedOp> {
    let mut keys: BTreeMap<Key, KeyedOp> = BTreeMap::new();
    let regions = find_regions(ir);
    let mut seen_fns: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    for region in regions.iter().filter(|r| entries.contains(&r.entry)) {
        for fn_name in &region.functions {
            // Shared helpers contribute their keys once, from the first
            // region (sorted) — mirroring the reducer's global pass.
            if !seen_fns.insert(fn_name) {
                continue;
            }
            let Some(f) = ir.function(fn_name) else {
                continue;
            };
            for op in &f.ops {
                let Some(class) = rules.classify(op) else {
                    continue;
                };
                let family = op
                    .resource
                    .as_deref()
                    .map(|r| resource_family(r).to_owned())
                    .unwrap_or_default();
                let key = (
                    class.label().to_owned(),
                    op.kind.label().to_owned(),
                    family.clone(),
                );
                keys.entry(key).or_insert_with(|| KeyedOp {
                    region: region.entry.clone(),
                    op_id: op.id_in(fn_name).to_string(),
                    detail: format!(
                        "{} {} on `{}`",
                        class.label(),
                        op.kind.label(),
                        if family.is_empty() { "<none>" } else { &family }
                    ),
                });
            }
        }
    }
    keys
}

/// Compares the three artifacts into a [`DriftReport`].
///
/// * `described` — the target's hand-written `describe_ir()`;
/// * `plan` — the watchdog plan generated **from the description**;
/// * `extracted` — what `wdog-analyze` recovered from source;
/// * `rules` — the vulnerability selection in force for this target.
pub fn compare(
    described: &ProgramIr,
    plan: &WatchdogPlan,
    extracted: &ExtractedProgram,
    rules: &VulnerabilityRules,
) -> DriftReport {
    let mut findings = Vec::new();
    let mut info: Vec<String> = extracted.notes.clone();

    let described_entries: Vec<String> = described
        .functions
        .values()
        .filter(|f| f.long_running && !f.init_only)
        .map(|f| f.name.clone())
        .collect();
    let extracted_entries: Vec<String> = extracted
        .ir
        .functions
        .values()
        .filter(|f| f.long_running)
        .map(|f| f.name.clone())
        .collect();

    let paired: Vec<String> = described_entries
        .iter()
        .filter(|e| extracted_entries.contains(e))
        .cloned()
        .collect();
    for entry in described_entries.iter().filter(|e| !paired.contains(e)) {
        findings.push(DriftFinding {
            kind: DriftKind::RegionNotInSource,
            region: entry.clone(),
            subject: entry.clone(),
            detail: format!(
                "described long-running region `{entry}` has no matching \
                 spawn entry or hook key in source"
            ),
            source: None,
            allowed: None,
        });
    }
    for entry in extracted_entries.iter().filter(|e| !paired.contains(e)) {
        findings.push(DriftFinding {
            kind: DriftKind::RegionNotDescribed,
            region: entry.clone(),
            subject: entry.clone(),
            detail: format!(
                "source spawns long-running region `{entry}` that \
                 describe_ir() does not model"
            ),
            source: None,
            allowed: None,
        });
    }

    let described_keys = vulnerable_keys(described, &paired, rules);
    let extracted_keys = vulnerable_keys(&extracted.ir, &paired, rules);

    let matched_ops = described_keys
        .keys()
        .filter(|k| extracted_keys.contains_key(*k))
        .count();
    for (key, at) in &extracted_keys {
        if !described_keys.contains_key(key) {
            findings.push(DriftFinding {
                kind: DriftKind::MissingFromDescription,
                region: at.region.clone(),
                subject: at.op_id.clone(),
                detail: format!("source performs {} — not in describe_ir()", at.detail),
                source: extracted.sites.get(&at.op_id).cloned(),
                allowed: None,
            });
        }
    }
    for (key, at) in &described_keys {
        if !extracted_keys.contains_key(key) {
            findings.push(DriftFinding {
                kind: DriftKind::DescribedNotInSource,
                region: at.region.clone(),
                subject: at.op_id.clone(),
                detail: format!(
                    "describe_ir() claims {} — no matching source site",
                    at.detail
                ),
                source: None,
                allowed: None,
            });
        }
    }

    // Hook confirmation: each planned hook must have a runtime firing for
    // its context key that publishes every planned field. Hooks in
    // unpaired regions are already covered by the region finding.
    let mut matched_hooks = 0usize;
    for hook in &plan.hooks {
        if !paired.contains(&hook.context_key) {
            continue;
        }
        let subject = format!("{}#{}", hook.function, hook.before_op);
        match extracted.regions_fired.get(&hook.context_key) {
            None => findings.push(DriftFinding {
                kind: DriftKind::UnhookedPlanPoint,
                region: hook.context_key.clone(),
                subject,
                detail: format!(
                    "plan hooks context key `{}` but no source site fires it",
                    hook.context_key
                ),
                source: None,
                allowed: None,
            }),
            Some(fields) => {
                let missing: Vec<&str> = hook
                    .publishes
                    .iter()
                    .map(|a| a.name.as_str())
                    .filter(|n| !fields.contains(*n))
                    .collect();
                if missing.is_empty() {
                    matched_hooks += 1;
                } else {
                    findings.push(DriftFinding {
                        kind: DriftKind::UnhookedPlanPoint,
                        region: hook.context_key.clone(),
                        subject,
                        detail: format!(
                            "hook fires `{}` but never publishes field(s) {}",
                            hook.context_key,
                            missing.join(", ")
                        ),
                        source: None,
                        allowed: None,
                    });
                }
            }
        }
    }
    if plan.hooks.is_empty() {
        info.push("plan has no hook points to confirm".to_owned());
    }

    findings.sort_by(|a, b| (a.kind, &a.region, &a.subject).cmp(&(b.kind, &b.region, &b.subject)));
    DriftReport {
        program: described.name.clone(),
        matched_ops,
        matched_hooks,
        findings,
        info,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract_model;
    use crate::model::{CrateModel, SourceFile};
    use std::collections::BTreeSet;
    use wdog_gen::ir::ProgramBuilder;
    use wdog_gen::{generate_plan, ArgType};

    const SRC: &str = r#"
pub fn start(s: Shared) {
    t.spawn(move || wal_loop(s)).unwrap();
}

// wdog: resource wal/
pub fn wal_loop(s: Shared) {
    let hook = s.hooks.site("wal_loop");
    loop {
        hook.fire(|| vec![("payload".into(), CtxValue::Bytes(b.clone()))]);
        s.disk.append("wal/log", &frame);
        s.disk.fsync("wal/log");
    }
}
"#;

    fn extracted() -> ExtractedProgram {
        extract_model(
            "demo",
            CrateModel::build(vec![SourceFile::parse("src/wal.rs", SRC, false)]),
        )
    }

    fn described(with_sync: bool) -> wdog_gen::ProgramIr {
        let mut b = ProgramBuilder::new("demo");
        b = b.function("wal_loop", |f| {
            let f = f
                .long_running()
                .op("wal_append", wdog_gen::OpKind::DiskWrite, |o| {
                    o.resource("wal/").in_loop().arg("payload", ArgType::Bytes)
                });
            if with_sync {
                f.op("wal_sync", wdog_gen::OpKind::DiskSync, |o| {
                    o.resource("wal/")
                })
            } else {
                f
            }
        });
        b.build()
    }

    #[test]
    fn agreement_is_clean() {
        let ir = described(true);
        let plan = generate_plan(&ir, &wdog_gen::ReductionConfig::default());
        let report = compare(&ir, &plan, &extracted(), &VulnerabilityRules::default());
        assert!(report.is_clean(), "{:?}", report.findings);
        assert_eq!(report.matched_ops, 2);
        assert_eq!(report.matched_hooks, 1);
    }

    #[test]
    fn deleted_description_op_is_missing_from_description() {
        let ir = described(false);
        let plan = generate_plan(&ir, &wdog_gen::ReductionConfig::default());
        let report = compare(&ir, &plan, &extracted(), &VulnerabilityRules::default());
        let denied = report.denied();
        assert_eq!(denied.len(), 1, "{denied:?}");
        assert_eq!(denied[0].kind, DriftKind::MissingFromDescription);
        let src = denied[0].source.as_ref().expect("source site");
        assert_eq!(src.file, "src/wal.rs");
        assert!(denied[0].detail.contains("disk-sync"));
    }

    #[test]
    fn phantom_described_op_is_described_not_in_source() {
        let ir = {
            let b = ProgramBuilder::new("demo").function("wal_loop", |f| {
                f.long_running()
                    .op("wal_append", wdog_gen::OpKind::DiskWrite, |o| {
                        o.resource("wal/").in_loop().arg("payload", ArgType::Bytes)
                    })
                    .op("wal_sync", wdog_gen::OpKind::DiskSync, |o| {
                        o.resource("wal/")
                    })
                    .op("repl_send", wdog_gen::OpKind::NetSend, |o| {
                        o.resource("replica")
                    })
            });
            b.build()
        };
        let plan = generate_plan(&ir, &wdog_gen::ReductionConfig::default());
        let report = compare(&ir, &plan, &extracted(), &VulnerabilityRules::default());
        let denied = report.denied();
        assert_eq!(denied.len(), 1, "{denied:?}");
        assert_eq!(denied[0].kind, DriftKind::DescribedNotInSource);
        assert!(denied[0].subject.contains("repl_send"));
    }

    #[test]
    fn unpaired_regions_are_reported_both_ways() {
        let ir = ProgramBuilder::new("demo")
            .function("flusher_loop", |f| {
                f.long_running()
                    .op("x", wdog_gen::OpKind::DiskSync, |o| o.resource("sst/"))
            })
            .build();
        let plan = generate_plan(&ir, &wdog_gen::ReductionConfig::default());
        let report = compare(&ir, &plan, &extracted(), &VulnerabilityRules::default());
        let kinds: Vec<DriftKind> = report.findings.iter().map(|f| f.kind).collect();
        assert!(kinds.contains(&DriftKind::RegionNotInSource));
        assert!(kinds.contains(&DriftKind::RegionNotDescribed));
        // No op-level noise from unpaired regions.
        assert!(!kinds.contains(&DriftKind::MissingFromDescription));
        assert!(!kinds.contains(&DriftKind::DescribedNotInSource));
    }

    #[test]
    fn unfired_hook_field_is_unhooked_plan_point() {
        let mut ex = extracted();
        // Pretend the source never publishes `payload`.
        ex.regions_fired.insert("wal_loop".into(), BTreeSet::new());
        let ir = described(true);
        let plan = generate_plan(&ir, &wdog_gen::ReductionConfig::default());
        let report = compare(&ir, &plan, &ex, &VulnerabilityRules::default());
        let denied = report.denied();
        assert!(denied
            .iter()
            .any(|f| f.kind == DriftKind::UnhookedPlanPoint && f.detail.contains("payload")));
    }
}
