//! Coverage-gap matrix: vulnerable-op × checker coverage.
//!
//! The paper argues watchdogs should mimic *every* vulnerable operation a
//! long-running region performs; the chaos campaigns (PR 5) showed where
//! the shipped checkers fall short empirically. This pass enumerates the
//! same gaps statically: reachability from each long-running region over
//! the [`crate::callgraph`] to its vulnerable ops (per
//! [`wdog_gen::VulnerabilityRules`]), crossed against the reduction-
//! generated [`wdog_gen::WatchdogPlan`].
//!
//! Each vulnerable op gets a status:
//!
//! * **covered** — the region's own generated checker mimics an op of the
//!   same (kind, resource-family);
//! * **weak** — only a *different* region's checker mimics it (global
//!   similarity dedup moved the probe, so a fault here is blamed on the
//!   wrong component), or the probe is a send with no matching receive
//!   (it can verify the link accepts traffic, not that peers respond);
//! * **uncovered** — no generated checker mimics it at all.
//!
//! The matrix also scores each region's **stuck coverage** — can any
//! checker report the region itself wedged? Today the answer is always
//! *uncovered*: [`MimicChecker::check`] returns `NotReady` (not a
//! failure) when a region stops publishing context, so a stuck task
//! silences its own watchdog. That is precisely the kvs
//! background-task-stuck blind spot chaos found, and the matrix
//! cross-references such chaos-confirmed [`BlindSpot`]s so CI can assert
//! the static and empirical views agree.
//!
//! All iteration is over sorted structures; the emitted JSON is
//! byte-identical across runs (an acceptance criterion — the artifact is
//! drift-diffed in CI).

use serde::{Deserialize, Serialize};

use wdog_gen::ir::ProgramIr;
use wdog_gen::patterns::resource_family;
use wdog_gen::plan::WatchdogPlan;
use wdog_gen::regions::find_regions;
use wdog_gen::{OpKind, VulnerabilityRules};

use crate::callgraph::{CallGraph, CallGraphSummary};

/// How well one vulnerable op (or liveness dimension) is guarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CoverageStatus {
    /// Mimicked by the region's own checker.
    Covered,
    /// Guarded only indirectly (cross-region probe, or send-only).
    Weak,
    /// No checker mimics it.
    Uncovered,
}

impl CoverageStatus {
    /// Stable lowercase label.
    pub fn label(&self) -> &'static str {
        match self {
            CoverageStatus::Covered => "covered",
            CoverageStatus::Weak => "weak",
            CoverageStatus::Uncovered => "uncovered",
        }
    }
}

/// One vulnerable op's row in the matrix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCoverage {
    /// `function#op`.
    pub op_id: String,
    /// Enclosing function.
    pub function: String,
    /// Op kind label (`disk-write`, `net-send`, ...).
    pub kind: String,
    /// Resource the op touches, if named.
    pub resource: Option<String>,
    /// Resource family used for matching.
    pub family: Option<String>,
    /// Coverage verdict.
    pub status: CoverageStatus,
    /// Checker that provides the (possibly weak) coverage.
    pub checker: Option<String>,
    /// Why the status is what it is, when not obvious.
    pub note: Option<String>,
}

/// One long-running region's slice of the matrix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionCoverage {
    /// Region entry function.
    pub entry: String,
    /// The region's own generated checker, if reduction kept any ops.
    pub checker: Option<String>,
    /// Vulnerable ops reachable from the entry, sorted by (function, op).
    pub ops: Vec<OpCoverage>,
    /// Can any checker report this region's task itself stuck?
    pub stuck_coverage: CoverageStatus,
    /// Why `stuck_coverage` is what it is.
    pub stuck_note: String,
}

/// A chaos-confirmed miss, cross-referenced against the static matrix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlindSpot {
    /// Reproducer id (corpus file stem).
    pub id: String,
    /// Fault label(s) the schedule injects, e.g. `task-stuck`.
    pub fault: String,
    /// Free-text locator (toggle names, addresses) from the schedule.
    pub hint: String,
    /// True when the matrix flags the same gap statically.
    #[serde(default)]
    pub statically_flagged: bool,
    /// The matrix rows/dimensions that flag it.
    #[serde(default)]
    pub evidence: Vec<String>,
}

/// One entry in the ranked gap list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankedGap {
    /// 1-based rank, most severe first.
    pub rank: usize,
    /// Region entry.
    pub region: String,
    /// `function#op`, or `<region liveness>` for the stuck dimension.
    pub op_id: String,
    /// Kind label.
    pub kind: String,
    /// The non-covered status.
    pub status: CoverageStatus,
}

/// Aggregate counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageTotals {
    /// Vulnerable ops across all regions.
    pub ops: usize,
    /// Rows fully covered.
    pub covered: usize,
    /// Rows weakly covered.
    pub weak: usize,
    /// Rows uncovered.
    pub uncovered: usize,
}

/// The full coverage-gap matrix for one program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageMatrix {
    /// Program name.
    pub program: String,
    /// Shape of the graph the reachability ran over.
    pub callgraph: CallGraphSummary,
    /// Per-region rows, sorted by entry.
    pub regions: Vec<RegionCoverage>,
    /// Non-covered rows, most severe first.
    pub uncovered_ranked: Vec<RankedGap>,
    /// Chaos-confirmed misses cross-referenced against the rows.
    pub blind_spots: Vec<BlindSpot>,
    /// Aggregate counts.
    pub totals: CoverageTotals,
}

impl CoverageMatrix {
    /// Op ids (plus liveness pseudo-rows) currently not fully covered —
    /// the set CI diffs against the archived artifact to fail on *newly*
    /// uncovered vulnerable ops.
    pub fn gap_keys(&self) -> Vec<String> {
        self.uncovered_ranked
            .iter()
            .map(|g| format!("{}:{}:{}", g.region, g.op_id, g.status.label()))
            .collect()
    }
}

/// Match key for "does some planned op mimic this one": kind label plus
/// resource family — the same similarity granularity reduction dedups on.
fn match_key(kind: &OpKind, resource: Option<&str>) -> (String, Option<String>) {
    (
        kind.label().to_owned(),
        resource.map(|r| resource_family(r).to_owned()),
    )
}

const STUCK_NOTE: &str = "no liveness probe: mimic checkers return NotReady (not Fail) \
     when a region stops publishing context, so a stuck task silences its own watchdog";

/// Builds the coverage matrix for `ir` against its generated `plan`,
/// cross-referencing `blind_spots` (chaos-confirmed misses; pass `&[]`
/// when no corpus exists).
pub fn coverage_matrix(
    ir: &ProgramIr,
    plan: &WatchdogPlan,
    blind_spots: &[BlindSpot],
) -> CoverageMatrix {
    let graph = CallGraph::build(ir);
    let rules = VulnerabilityRules::all();
    let regions = find_regions(ir);

    let mut region_rows: Vec<RegionCoverage> = Vec::new();
    for region in &regions {
        let own = plan.checker_for(&region.entry);
        let mut ops = Vec::new();
        for fname in &region.functions {
            let Some(f) = ir.function(fname) else {
                continue;
            };
            for op in &f.ops {
                if !rules.is_vulnerable(op) {
                    continue;
                }
                let key = match_key(&op.kind, op.resource.as_deref());
                let own_hit = own.is_some_and(|c| {
                    c.ops
                        .iter()
                        .any(|p| match_key(&p.kind, p.resource.as_deref()) == key)
                });
                let cross_hit = plan
                    .checkers
                    .iter()
                    .filter(|c| Some(c.context_key.as_str()) != Some(region.entry.as_str()))
                    .find(|c| {
                        c.ops
                            .iter()
                            .any(|p| match_key(&p.kind, p.resource.as_deref()) == key)
                    });

                let (mut status, checker, mut note) = if own_hit {
                    (
                        CoverageStatus::Covered,
                        own.map(|c| c.name.clone()),
                        None::<String>,
                    )
                } else if let Some(c) = cross_hit {
                    (
                        CoverageStatus::Weak,
                        Some(c.name.clone()),
                        Some(format!(
                            "cross-region: similarity dedup kept the probe in {}, so a fault \
                             here is blamed on component {}",
                            c.context_key, c.component
                        )),
                    )
                } else {
                    (CoverageStatus::Uncovered, None, None)
                };

                // A send probe with no matching receive only proves the
                // link accepts traffic — degrade to weak.
                if status == CoverageStatus::Covered && op.kind == OpKind::NetSend {
                    let recv_key = ("net-recv".to_owned(), key.1.clone());
                    let has_recv = plan.checkers.iter().any(|c| {
                        c.ops
                            .iter()
                            .any(|p| match_key(&p.kind, p.resource.as_deref()) == recv_key)
                    });
                    if !has_recv {
                        status = CoverageStatus::Weak;
                        note = Some(
                            "send-only: no net-recv probe on this family verifies the peer \
                             responds"
                                .to_owned(),
                        );
                    }
                }

                ops.push(OpCoverage {
                    op_id: op.id_in(fname).to_string(),
                    function: fname.clone(),
                    kind: op.kind.label().to_owned(),
                    resource: op.resource.clone(),
                    family: key.1.clone(),
                    status,
                    checker,
                    note,
                });
            }
        }
        ops.sort_by(|a, b| a.op_id.cmp(&b.op_id));
        region_rows.push(RegionCoverage {
            entry: region.entry.clone(),
            checker: own.map(|c| c.name.clone()),
            ops,
            stuck_coverage: CoverageStatus::Uncovered,
            stuck_note: STUCK_NOTE.to_owned(),
        });
    }

    // Ranked gaps: uncovered before weak, liveness pseudo-rows first
    // within a severity (a wedged region mutes every probe it feeds).
    let mut gaps: Vec<(CoverageStatus, u8, String, String, String)> = Vec::new();
    for r in &region_rows {
        if r.stuck_coverage != CoverageStatus::Covered {
            gaps.push((
                r.stuck_coverage,
                0,
                r.entry.clone(),
                format!("<{} liveness>", r.entry),
                "task-stuck".to_owned(),
            ));
        }
        for op in &r.ops {
            if op.status != CoverageStatus::Covered {
                gaps.push((
                    op.status,
                    1,
                    r.entry.clone(),
                    op.op_id.clone(),
                    op.kind.clone(),
                ));
            }
        }
    }
    gaps.sort_by(|a, b| {
        (std::cmp::Reverse(a.0), a.1, &a.2, &a.3).cmp(&(std::cmp::Reverse(b.0), b.1, &b.2, &b.3))
    });
    let uncovered_ranked = gaps
        .into_iter()
        .enumerate()
        .map(|(i, (status, _, region, op_id, kind))| RankedGap {
            rank: i + 1,
            region,
            op_id,
            kind,
            status,
        })
        .collect();

    let blind_spots = blind_spots
        .iter()
        .map(|b| cross_reference(b, &region_rows))
        .collect();

    let all_ops: Vec<&OpCoverage> = region_rows.iter().flat_map(|r| r.ops.iter()).collect();
    let count = |s: CoverageStatus| all_ops.iter().filter(|o| o.status == s).count();
    let totals = CoverageTotals {
        ops: all_ops.len(),
        covered: count(CoverageStatus::Covered),
        weak: count(CoverageStatus::Weak),
        uncovered: count(CoverageStatus::Uncovered),
    };

    CoverageMatrix {
        program: ir.name.clone(),
        callgraph: graph.summary(&ir.name),
        regions: region_rows,
        uncovered_ranked,
        blind_spots,
        totals,
    }
}

/// Finds the matrix rows that statically flag one chaos-confirmed miss.
fn cross_reference(spot: &BlindSpot, regions: &[RegionCoverage]) -> BlindSpot {
    // Regions named by the hint: any hint token (chaos component hints
    // like `compact` are prefixes of entries like `compaction_loop`)
    // appearing inside the entry name. When none match, every region is
    // a candidate.
    let tokens: Vec<&str> = spot
        .hint
        .split(|c: char| !c.is_alphanumeric() && c != '_')
        .filter(|t| t.len() >= 4)
        .collect();
    let named: Vec<&RegionCoverage> = regions
        .iter()
        .filter(|r| tokens.iter().any(|t| r.entry.contains(t)))
        .collect();
    let candidates: Vec<&RegionCoverage> = if named.is_empty() {
        regions.iter().collect()
    } else {
        named
    };

    let fault = spot.fault.as_str();
    let stuck_like = ["task", "stuck", "pause", "busy"]
        .iter()
        .any(|w| fault.contains(w));
    let wants_prefix = if fault.contains("net") {
        Some("net-")
    } else if fault.contains("disk") {
        Some("disk-")
    } else {
        None
    };

    let mut evidence = Vec::new();
    for r in &candidates {
        if stuck_like && r.stuck_coverage != CoverageStatus::Covered {
            evidence.push(format!(
                "{}: stuck_coverage={}",
                r.entry,
                r.stuck_coverage.label()
            ));
        }
        for op in &r.ops {
            if op.status == CoverageStatus::Covered {
                continue;
            }
            let kind_matches = match wants_prefix {
                Some(p) => op.kind.starts_with(p),
                // Without a kind hint, only non-covered rows of *named*
                // regions count as evidence.
                None => {
                    !stuck_like && !candidates.is_empty() && !named_is_all(regions, &candidates)
                }
            };
            if kind_matches {
                evidence.push(format!("{}: {} {}", r.entry, op.op_id, op.status.label()));
            }
        }
    }
    evidence.sort();
    evidence.dedup();

    BlindSpot {
        id: spot.id.clone(),
        fault: spot.fault.clone(),
        hint: spot.hint.clone(),
        statically_flagged: !evidence.is_empty(),
        evidence,
    }
}

/// True when the candidate set fell back to "all regions".
fn named_is_all(regions: &[RegionCoverage], candidates: &[&RegionCoverage]) -> bool {
    candidates.len() == regions.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdog_gen::ir::{OpKind, ProgramBuilder};
    use wdog_gen::{generate_plan, ReductionConfig};

    fn ir() -> ProgramIr {
        ProgramBuilder::new("p")
            .function("writer_loop", |f| {
                f.long_running()
                    .op("wal_append", OpKind::DiskWrite, |o| o.resource("wal/log"))
                    .op("fmt", OpKind::Compute, |o| o)
            })
            .function("shadow_loop", |f| {
                // Identical (disk-write, wal/log) key as writer_loop:
                // global similarity dedup keeps only one probe — and
                // shadow_loop sorts first, so it wins.
                f.long_running()
                    .op("wal_mirror", OpKind::DiskWrite, |o| o.resource("wal/log"))
                    .op("orphan_read", OpKind::DiskRead, |o| o.resource("idx/"))
            })
            .function("sender_loop", |f| {
                f.long_running()
                    .op("ping", OpKind::NetSend, |o| o.resource("peer"))
            })
            .build()
    }

    fn matrix(spots: &[BlindSpot]) -> CoverageMatrix {
        let ir = ir();
        let plan = generate_plan(&ir, &ReductionConfig::default());
        coverage_matrix(&ir, &plan, spots)
    }

    fn row<'a>(m: &'a CoverageMatrix, entry: &str, op: &str) -> &'a OpCoverage {
        m.regions
            .iter()
            .find(|r| r.entry == entry)
            .unwrap()
            .ops
            .iter()
            .find(|o| o.op_id.ends_with(op))
            .unwrap()
    }

    #[test]
    fn own_checker_covers_matching_family() {
        let m = matrix(&[]);
        let r = row(&m, "shadow_loop", "#wal_mirror");
        assert_eq!(r.status, CoverageStatus::Covered);
        assert_eq!(r.checker.as_deref(), Some("shadow_loop_checker"));
        let idx = row(&m, "shadow_loop", "#orphan_read");
        assert_eq!(idx.status, CoverageStatus::Covered);
    }

    #[test]
    fn cross_region_dedup_is_weak() {
        let m = matrix(&[]);
        // Global dedup dropped writer_loop's only vulnerable op, so it
        // has no checker of its own — the row is weak, blamed on
        // shadow_loop's probe.
        let r = row(&m, "writer_loop", "#wal_append");
        assert_eq!(r.status, CoverageStatus::Weak);
        assert_eq!(r.checker.as_deref(), Some("shadow_loop_checker"));
        assert!(r.note.as_deref().unwrap().contains("cross-region"));
        let region = m.regions.iter().find(|r| r.entry == "writer_loop").unwrap();
        assert_eq!(region.checker, None);
    }

    #[test]
    fn op_missing_from_the_plan_is_uncovered() {
        // Simulate a stale self-description: the plan was generated from
        // an IR that never mentions the sender region, while the
        // (extracted) matrix IR has it.
        let stale = ProgramBuilder::new("p")
            .function("writer_loop", |f| {
                f.long_running()
                    .op("wal_append", OpKind::DiskWrite, |o| o.resource("wal/log"))
            })
            .build();
        let plan = generate_plan(&stale, &ReductionConfig::default());
        let m = coverage_matrix(&ir(), &plan, &[]);
        let r = row(&m, "sender_loop", "#ping");
        assert_eq!(r.status, CoverageStatus::Uncovered);
        assert!(m
            .uncovered_ranked
            .iter()
            .any(|g| g.op_id == "sender_loop#ping" && g.status == CoverageStatus::Uncovered));
    }

    #[test]
    fn send_without_recv_is_weak() {
        let m = matrix(&[]);
        let r = row(&m, "sender_loop", "#ping");
        assert_eq!(r.status, CoverageStatus::Weak);
        assert!(r.note.as_deref().unwrap().contains("send-only"));
    }

    #[test]
    fn every_region_lacks_stuck_coverage() {
        let m = matrix(&[]);
        assert!(m
            .regions
            .iter()
            .all(|r| r.stuck_coverage == CoverageStatus::Uncovered));
        // Liveness pseudo-rows appear in the ranked gaps, before weak rows.
        assert!(m
            .uncovered_ranked
            .iter()
            .any(|g| g.op_id.contains("liveness")));
        assert_eq!(m.uncovered_ranked[0].status, CoverageStatus::Uncovered);
    }

    #[test]
    fn task_stuck_blind_spot_is_flagged_via_liveness() {
        let m = matrix(&[BlindSpot {
            id: "chaos-1-000".into(),
            fault: "task-stuck".into(),
            hint: "p.writer.stuck toggles writer_loop".into(),
            statically_flagged: false,
            evidence: vec![],
        }]);
        let b = &m.blind_spots[0];
        assert!(b.statically_flagged, "{b:?}");
        assert!(b.evidence.iter().any(|e| e.contains("writer_loop")));
    }

    #[test]
    fn net_block_blind_spot_is_flagged_via_weak_net_rows() {
        let m = matrix(&[BlindSpot {
            id: "chaos-2-000".into(),
            fault: "net-block".into(),
            hint: "dn1 -> peer".into(),
            statically_flagged: false,
            evidence: vec![],
        }]);
        let b = &m.blind_spots[0];
        assert!(b.statically_flagged, "{b:?}");
        assert!(b.evidence.iter().any(|e| e.contains("#ping")));
    }

    #[test]
    fn matrix_is_deterministic() {
        let a = serde_json::to_string(&matrix(&[])).unwrap();
        let b = serde_json::to_string(&matrix(&[])).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn totals_add_up() {
        let m = matrix(&[]);
        assert_eq!(
            m.totals.ops,
            m.totals.covered + m.totals.weak + m.totals.uncovered
        );
        assert!(m.totals.ops >= 4);
    }
}
