//! Model-based testing: kvs against a reference `HashMap` under random
//! sequential workloads, including crash-recovery equivalence.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use kvs::{KvsConfig, KvsServer};
use simio::disk::SimDisk;
use wdog_base::clock::RealClock;

#[derive(Debug, Clone)]
enum Op {
    Set(u8, String),
    Append(u8, String),
    Del(u8),
    Get(u8),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), "[a-z]{0,6}").prop_map(|(k, v)| Op::Set(k, v)),
        (any::<u8>(), "[a-z]{0,4}").prop_map(|(k, v)| Op::Append(k, v)),
        any::<u8>().prop_map(Op::Del),
        any::<u8>().prop_map(Op::Get),
    ]
}

fn key(k: u8) -> String {
    format!("key-{k}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sequential requests observe exactly the reference-map semantics.
    #[test]
    fn sequential_ops_match_reference_model(ops in proptest::collection::vec(op(), 1..60)) {
        let server = KvsServer::for_tests();
        let client = server.client();
        let mut model: HashMap<String, String> = HashMap::new();
        for o in ops {
            match o {
                Op::Set(k, v) => {
                    client.set(&key(k), &v).unwrap();
                    model.insert(key(k), v);
                }
                Op::Append(k, v) => {
                    client.append(&key(k), &v).unwrap();
                    model.entry(key(k)).or_default().push_str(&v);
                }
                Op::Del(k) => {
                    client.del(&key(k)).unwrap();
                    model.remove(&key(k));
                }
                Op::Get(k) => {
                    prop_assert_eq!(client.get(&key(k)).unwrap(), model.get(&key(k)).cloned());
                }
            }
        }
        // Final audit over the whole keyspace.
        for k in 0..=255u8 {
            prop_assert_eq!(client.get(&key(k)).unwrap(), model.get(&key(k)).cloned());
        }
    }

    /// Every write acknowledged *and made durable* survives crash+recovery.
    #[test]
    fn recovery_matches_model_after_crash(ops in proptest::collection::vec(op(), 1..40)) {
        let disk = SimDisk::for_tests();
        let mut model: HashMap<String, String> = HashMap::new();
        {
            let mut server = KvsServer::start(
                KvsConfig::default(),
                RealClock::shared(),
                Arc::clone(&disk),
                None,
            ).unwrap();
            let client = server.client();
            let mut writes = 0u64;
            for o in &ops {
                match o {
                    Op::Set(k, v) => {
                        client.set(&key(*k), v).unwrap();
                        model.insert(key(*k), v.clone());
                        writes += 1;
                    }
                    Op::Append(k, v) => {
                        client.append(&key(*k), v).unwrap();
                        model.entry(key(*k)).or_default().push_str(v);
                        writes += 1;
                    }
                    Op::Del(k) => {
                        client.del(&key(*k)).unwrap();
                        model.remove(&key(*k));
                        writes += 1;
                    }
                    Op::Get(_) => {}
                }
            }
            // Wait until the WAL writer has made every write durable, then
            // stop cleanly and crash the disk (dropping unsynced bytes).
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
            while server.stats().wal_records + server.stats().flushes * 1000 < writes
                && std::time::Instant::now() < deadline
            {
                // Flushes truncate the WAL, so completed records may exceed
                // the counter; the coarse bound above only guards pending work.
                if server.monitor().queue_depth("wal") == Some(0)
                    && server.stats().wal_records > 0
                {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            std::thread::sleep(std::time::Duration::from_millis(100));
            server.stop();
        }
        disk.crash();
        let server = KvsServer::start(
            KvsConfig::default(),
            RealClock::shared(),
            Arc::clone(&disk),
            None,
        ).unwrap();
        let client = server.client();
        for k in 0..=255u8 {
            prop_assert_eq!(
                client.get(&key(k)).unwrap(),
                model.get(&key(k)).cloned(),
                "divergence at {}", key(k)
            );
        }
    }
}
