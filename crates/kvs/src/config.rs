//! kvs server configuration.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Replication endpoints on the simulated network.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicationConfig {
    /// The primary's network address (source of replicated ops).
    pub src_addr: String,
    /// The replica's network address.
    pub dst_addr: String,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        Self {
            src_addr: "kvs-primary".into(),
            dst_addr: "kvs-replica".into(),
        }
    }
}

/// Tunables for a [`KvsServer`](crate::server::KvsServer).
///
/// The defaults favour fast experiments: background loops tick every few
/// tens of milliseconds so fault-detection latencies are measured in
/// fractions of a second rather than minutes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KvsConfig {
    /// `true` persists through WAL + SSTables; `false` is the paper's
    /// in-memory configuration (no disk activity at all).
    pub durable: bool,
    /// Worker threads draining the request queue.
    pub workers: usize,
    /// Request queue capacity (listener back-pressure).
    pub request_queue_cap: usize,
    /// How long a client waits for a response before reporting a timeout.
    pub client_timeout: Duration,
    /// Flusher wake interval.
    pub flush_interval: Duration,
    /// WAL bytes that trigger a flush regardless of interval.
    pub flush_threshold_bytes: u64,
    /// Number of SSTables that triggers compaction.
    pub compaction_trigger: usize,
    /// Compactor wake interval.
    pub compaction_interval: Duration,
    /// Replication endpoints; `None` disables the replication engine.
    pub replication: Option<ReplicationConfig>,
    /// Deterministic seed for workloads built on this config.
    pub seed: u64,
}

impl Default for KvsConfig {
    fn default() -> Self {
        Self {
            durable: true,
            workers: 2,
            request_queue_cap: 1024,
            client_timeout: Duration::from_secs(2),
            flush_interval: Duration::from_millis(50),
            flush_threshold_bytes: 64 * 1024,
            compaction_trigger: 4,
            compaction_interval: Duration::from_millis(50),
            replication: None,
            seed: 42,
        }
    }
}

impl KvsConfig {
    /// The paper's in-memory configuration: no WAL, no flusher activity.
    pub fn in_memory() -> Self {
        Self {
            durable: false,
            ..Self::default()
        }
    }

    /// A durable configuration with replication enabled.
    pub fn replicated() -> Self {
        Self {
            replication: Some(ReplicationConfig::default()),
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_durable_without_replication() {
        let c = KvsConfig::default();
        assert!(c.durable);
        assert!(c.replication.is_none());
        assert!(c.workers >= 1);
    }

    #[test]
    fn in_memory_disables_durability() {
        assert!(!KvsConfig::in_memory().durable);
    }

    #[test]
    fn replicated_sets_endpoints() {
        let c = KvsConfig::replicated();
        let r = c.replication.unwrap();
        assert_eq!(r.src_addr, "kvs-primary");
        assert_eq!(r.dst_addr, "kvs-replica");
    }
}
