//! The replication engine: async primary→replica op shipping.
//!
//! Writes are replicated asynchronously off a queue, so a wedged replica
//! link is invisible to clients (another deliberately gray failure: the
//! backlog grows silently). The replication thread's hook publishes each op
//! before sending, giving the generated `repl_send` mimic op a realistic
//! payload to probe the *same* network link with — watchdog probe messages
//! are tagged so the replica ignores them.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use bytes::Bytes;
use wdog_base::queue::ClockedQueue;

use wdog_core::prelude::*;

use crate::api::Request;
use crate::index::MemIndex;
use crate::server::{apply_to_index, Shared};

/// Prefix marking watchdog probe traffic; replicas skip these frames.
pub const WD_PROBE_PREFIX: &[u8] = b"__wd__:";

/// Background replication thread body (primary side); `alive` is this
/// generation's supervision flag — a restart retires it and spawns a fresh
/// loop on the same queue.
// wdog: resource replica
pub(crate) fn replication_loop(
    shared: Arc<Shared>,
    rx: ClockedQueue<Vec<u8>>,
    alive: Arc<std::sync::atomic::AtomicBool>,
) {
    let Some(repl) = shared.config.replication.clone() else {
        return;
    };
    let Some(net) = shared.net.clone() else {
        return;
    };
    let hook = shared.hooks.site("replication_loop");
    while shared.is_running() && alive.load(Ordering::Relaxed) {
        let Some(op) = rx.pop_timeout(std::time::Duration::from_millis(10)) else {
            continue;
        };
        let payload = op.clone();
        hook.fire_kv("op_payload", CtxValue::Bytes(payload));
        match net.send(&repl.src_addr, &repl.dst_addr, Bytes::from(op)) {
            Ok(()) => {
                shared.stats.repl_sent.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                // In-place error handler: the op is dropped after logging.
                shared.stats.errors_handled.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// A minimal replica: applies replicated ops into its own index.
pub struct Replica {
    index: MemIndex,
    running: Arc<std::sync::atomic::AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
    applied: Arc<std::sync::atomic::AtomicU64>,
}

impl Replica {
    /// Spawns a replica listening at `addr` on `net`.
    pub fn spawn(net: simio::net::SimNet, addr: impl Into<String>) -> Self {
        let mailbox = net.register(addr);
        let index = MemIndex::for_tests();
        let running = Arc::new(std::sync::atomic::AtomicBool::new(true));
        let applied = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let idx = index.clone();
        let run = Arc::clone(&running);
        let app = Arc::clone(&applied);
        // wdog: ignore -- replica peer process, not a leader region
        let thread = wdog_base::clock::spawn_on(&net.clock(), "kvs-replica", move || {
            while run.load(Ordering::Relaxed) {
                let Some(msg) = mailbox.recv_timeout(std::time::Duration::from_millis(10)) else {
                    continue;
                };
                if msg.payload.starts_with(WD_PROBE_PREFIX) {
                    continue; // Watchdog probe traffic; not real data.
                }
                if let Ok(req) = Request::decode(&msg.payload) {
                    apply_to_index(&idx, &req);
                    app.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        Self {
            index,
            running,
            thread: Some(thread),
            applied,
        }
    }

    /// Raises the stop flag without joining; the receive loop exits at its
    /// next mailbox timeout (virtual-time teardown support).
    pub fn request_stop(&self) {
        self.running.store(false, Ordering::Relaxed);
    }

    /// Reads a key from the replica's index.
    pub fn get(&self, key: &str) -> Option<String> {
        self.index.get(key)
    }

    /// Returns how many real ops the replica has applied.
    pub fn applied(&self) -> u64 {
        self.applied.load(Ordering::Relaxed)
    }

    /// Stops the replica thread (detaching it if wedged in a fault).
    pub fn stop(&mut self) {
        self.running.store(false, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            wdog_base::join::join_timeout(t, std::time::Duration::from_millis(500));
        }
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("applied", &self.applied())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KvsConfig;
    use crate::server::KvsServer;
    use simio::disk::SimDisk;
    use simio::net::{LinkRule, NetFault, SimNet};
    use std::time::Duration;
    use wdog_base::clock::RealClock;

    fn wait_for(pred: impl Fn() -> bool, what: &str) {
        let start = std::time::Instant::now();
        while start.elapsed() < Duration::from_secs(5) {
            if pred() {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("timed out waiting for {what}");
    }

    fn replicated_pair() -> (KvsServer, Replica, SimNet) {
        let net = SimNet::for_tests();
        let replica = Replica::spawn(net.clone(), "kvs-replica");
        let server = KvsServer::start(
            KvsConfig::replicated(),
            RealClock::shared(),
            SimDisk::for_tests(),
            Some(net.clone()),
        )
        .unwrap();
        (server, replica, net)
    }

    #[test]
    fn writes_replicate_to_the_replica() {
        let (server, replica, _net) = replicated_pair();
        let client = server.client();
        client.set("k", "v").unwrap();
        client.append("k", "2").unwrap();
        client.set("other", "x").unwrap();
        client.del("other").unwrap();
        wait_for(|| replica.applied() >= 4, "replica to apply ops");
        assert_eq!(replica.get("k"), Some("v2".into()));
        assert_eq!(replica.get("other"), None);
    }

    #[test]
    fn wedged_link_is_invisible_to_clients() {
        let (server, replica, net) = replicated_pair();
        let client = server.client();
        net.inject(LinkRule::link(
            "kvs-primary",
            "kvs-replica",
            NetFault::BlockSend,
        ));
        // Clients keep succeeding: the gray failure.
        for i in 0..20 {
            client.set(&format!("k{i}"), "v").unwrap();
        }
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(replica.applied(), 0, "ops leaked through a blocked link");
        // The backlog is observable internally.
        assert!(server.monitor().queue_depth("replication").unwrap() > 0);
    }

    #[test]
    fn probe_frames_are_ignored_by_replica() {
        let (server, replica, net) = replicated_pair();
        let mut probe = WD_PROBE_PREFIX.to_vec();
        probe.extend_from_slice(b"probe-payload");
        net.send("kvs-primary", "kvs-replica", Bytes::from(probe))
            .unwrap();
        let client = server.client();
        client.set("real", "data").unwrap();
        wait_for(|| replica.applied() >= 1, "real op to apply");
        assert_eq!(replica.applied(), 1, "probe frame was applied as data");
    }

    #[test]
    fn replication_context_published() {
        let (server, _replica, _net) = replicated_pair();
        let client = server.client();
        client.set("k", "v").unwrap();
        let ctx = server.context();
        wait_for(|| ctx.is_ready("replication_loop"), "replication context");
        assert!(ctx
            .read("replication_loop")
            .unwrap()
            .get("op_payload")
            .is_some());
    }
}
