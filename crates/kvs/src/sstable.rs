//! Checksummed, sorted on-disk tables.
//!
//! An SSTable file is `[crc32: u32 LE][json entries]`. The checksum covers
//! the entire payload, so silent bit rot injected at the disk layer
//! ([`simio::disk::DiskFault::CorruptWrites`]) is detectable by any reader —
//! which is exactly what the generated `sst_read` mimic op does on every
//! watchdog cycle.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use simio::disk::SimDisk;

use wdog_base::checksum::crc32;
use wdog_base::error::{BaseError, BaseResult};

/// Metadata describing one written SSTable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SstMeta {
    /// File path on the disk.
    pub path: String,
    /// Number of entries.
    pub entries: usize,
    /// Smallest key (empty string for an empty table).
    pub min_key: String,
    /// Largest key.
    pub max_key: String,
    /// Payload checksum.
    pub checksum: u32,
    /// File size in bytes.
    pub bytes: usize,
}

/// Writes `entries` (which must be sorted by key) as an SSTable at `path`.
// wdog: resource sst/
pub fn write_sstable(
    disk: &Arc<SimDisk>,
    path: &str,
    entries: &[(String, String)],
) -> BaseResult<SstMeta> {
    debug_assert!(
        entries.windows(2).all(|w| w[0].0 <= w[1].0),
        "sstable entries must be sorted"
    );
    let payload =
        serde_json::to_vec(entries).map_err(|e| BaseError::Io(format!("encode sstable: {e}")))?;
    let sum = crc32(&payload);
    let mut file = Vec::with_capacity(4 + payload.len());
    file.extend_from_slice(&sum.to_le_bytes());
    file.extend_from_slice(&payload);
    disk.write_all(path, &file)?;
    disk.fsync(path)?;
    Ok(SstMeta {
        path: path.to_owned(),
        entries: entries.len(),
        min_key: entries.first().map(|(k, _)| k.clone()).unwrap_or_default(),
        max_key: entries.last().map(|(k, _)| k.clone()).unwrap_or_default(),
        checksum: sum,
        bytes: file.len(),
    })
}

/// Reads and validates the SSTable at `path`.
// wdog: resource sst/
pub fn read_sstable(disk: &SimDisk, path: &str) -> BaseResult<Vec<(String, String)>> {
    let raw = disk.read(path)?;
    if raw.len() < 4 {
        return Err(BaseError::Corruption(format!("{path}: truncated sstable")));
    }
    let expected = u32::from_le_bytes(raw[..4].try_into().unwrap());
    let payload = &raw[4..];
    if crc32(payload) != expected {
        return Err(BaseError::Corruption(format!(
            "{path}: sstable checksum mismatch"
        )));
    }
    serde_json::from_slice(payload)
        .map_err(|e| BaseError::Corruption(format!("{path}: undecodable sstable: {e}")))
}

/// Validates the checksum at `path` without materializing entries.
// wdog: resource sst/
pub fn validate_sstable(disk: &SimDisk, path: &str) -> BaseResult<()> {
    let raw = disk.read(path)?;
    if raw.len() < 4 {
        return Err(BaseError::Corruption(format!("{path}: truncated sstable")));
    }
    let expected = u32::from_le_bytes(raw[..4].try_into().unwrap());
    if crc32(&raw[4..]) != expected {
        return Err(BaseError::Corruption(format!(
            "{path}: sstable checksum mismatch"
        )));
    }
    Ok(())
}

/// Merges multiple sorted entry lists; later lists win on duplicate keys.
pub fn merge_entries(tables: &[Vec<(String, String)>]) -> Vec<(String, String)> {
    let mut map = std::collections::BTreeMap::new();
    for table in tables {
        for (k, v) in table {
            map.insert(k.clone(), v.clone());
        }
    }
    map.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn write_read_roundtrip() {
        let disk = SimDisk::for_tests();
        let data = entries(&[("a", "1"), ("b", "2")]);
        let meta = write_sstable(&disk, "sst/1", &data).unwrap();
        assert_eq!(meta.entries, 2);
        assert_eq!(meta.min_key, "a");
        assert_eq!(meta.max_key, "b");
        assert_eq!(read_sstable(&disk, "sst/1").unwrap(), data);
        validate_sstable(&disk, "sst/1").unwrap();
    }

    #[test]
    fn empty_table_roundtrips() {
        let disk = SimDisk::for_tests();
        let meta = write_sstable(&disk, "sst/e", &[]).unwrap();
        assert_eq!(meta.entries, 0);
        assert_eq!(meta.min_key, "");
        assert!(read_sstable(&disk, "sst/e").unwrap().is_empty());
    }

    #[test]
    fn injected_write_corruption_caught_on_read() {
        let disk = SimDisk::for_tests();
        disk.inject(simio::disk::FaultRule::scoped(
            "sst/",
            vec![simio::disk::DiskOpKind::Write],
            simio::disk::DiskFault::CorruptWrites,
        ));
        write_sstable(&disk, "sst/1", &entries(&[("a", "1")])).unwrap();
        assert!(matches!(
            read_sstable(&disk, "sst/1"),
            Err(BaseError::Corruption(_))
        ));
        assert!(validate_sstable(&disk, "sst/1").is_err());
    }

    #[test]
    fn truncated_file_is_corruption() {
        let disk = SimDisk::for_tests();
        disk.write_all("sst/t", &[1, 2]).unwrap();
        assert!(matches!(
            read_sstable(&disk, "sst/t"),
            Err(BaseError::Corruption(_))
        ));
    }

    #[test]
    fn merge_later_tables_win() {
        let older = entries(&[("a", "old"), ("b", "old")]);
        let newer = entries(&[("b", "new"), ("c", "new")]);
        let merged = merge_entries(&[older, newer]);
        assert_eq!(merged, entries(&[("a", "old"), ("b", "new"), ("c", "new")]));
    }

    #[test]
    fn merge_output_is_sorted() {
        let t1 = entries(&[("z", "1")]);
        let t2 = entries(&[("a", "2")]);
        let merged = merge_entries(&[t1, t2]);
        assert!(merged.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
