//! The [`WatchdogTarget`] implementation for kvs — the reference target.
//!
//! kvs is the one system wired to the *full* fault surface: simulated disk
//! and network, a stall point for runtime pauses, cooperative toggles in
//! the compaction/indexer/listener paths, and a crash hook. Its catalogue
//! is therefore the entire shared gray-failure catalogue, and the default
//! [`TargetProfile`] already describes its layout.

use std::sync::Arc;
use std::time::Duration;

use wdog_base::clock::SharedClock;
use wdog_base::error::BaseResult;
use wdog_base::rng::derive_seed;

use simio::disk::SimDisk;
use simio::net::SimNet;
use simio::LatencyModel;

use faults::catalog::{Scenario, TargetProfile};
use faults::injector::Injector;

use wdog_core::prelude::*;
use wdog_gen::ir::ProgramIr;
use wdog_gen::plan::WatchdogPlan;

use wdog_target::{
    catalog_for, spawn_workload_on, ApiProbe, CrashSignal, FaultSurface, LivenessProbe,
    RecoverySurface, RequestFn, TargetInstance, WatchdogTarget, WdOptions, WorkloadHandle,
    WorkloadObserver, WorkloadProfile,
};

use crate::config::KvsConfig;
use crate::replication::Replica;
use crate::server::KvsServer;

/// The kvs target: replicated LSM store on simulated disk + network.
#[derive(Debug, Default, Clone, Copy)]
pub struct KvsTarget;

impl WatchdogTarget for KvsTarget {
    fn name(&self) -> &'static str {
        "kvs"
    }

    fn describe_ir(&self) -> ProgramIr {
        crate::wd::describe_ir()
    }

    fn default_options(&self) -> WdOptions {
        WdOptions::default()
    }

    fn catalog(&self) -> Vec<Scenario> {
        catalog_for(&TargetProfile::default(), FaultSurface::FULL)
    }

    fn components(&self) -> Vec<String> {
        // Everything a kvs report can blame, beyond the catalogue's hints:
        // chaos pinpoint accounting treats blame on any of these as a
        // mislocated detection when no active fault implicates it.
        [
            "wal", "sst", "compact", "repl", "index", "memory", "api", "listener", "kvs",
        ]
        .map(str::to_owned)
        .to_vec()
    }

    fn start_on(&self, seed: u64, clock: SharedClock) -> BaseResult<Box<dyn TargetInstance>> {
        let net = SimNet::new(
            LatencyModel::new(30.0, derive_seed(seed, "net")),
            Arc::clone(&clock),
        );
        let disk = SimDisk::new(
            1 << 30,
            LatencyModel::new(20.0, derive_seed(seed, "disk")),
            Arc::clone(&clock),
        );
        let replica = Replica::spawn(net.clone(), "kvs-replica");
        let server = Arc::new(KvsServer::start(
            KvsConfig {
                client_timeout: Duration::from_millis(400),
                flush_interval: Duration::from_millis(30),
                compaction_interval: Duration::from_millis(30),
                compaction_trigger: 3,
                ..KvsConfig::replicated()
            },
            Arc::clone(&clock),
            Arc::clone(&disk),
            Some(net.clone()),
        )?);
        Ok(Box::new(KvsInstance {
            clock,
            net,
            disk,
            server,
            replica: Some(replica),
            workload: None,
        }))
    }
}

/// One booted kvs testbed.
pub struct KvsInstance {
    clock: SharedClock,
    net: SimNet,
    disk: Arc<SimDisk>,
    server: Arc<KvsServer>,
    replica: Option<Replica>,
    workload: Option<WorkloadHandle>,
}

impl TargetInstance for KvsInstance {
    fn clock(&self) -> SharedClock {
        Arc::clone(&self.clock)
    }

    fn build_watchdog(&self, opts: &WdOptions) -> BaseResult<(WatchdogDriver, WatchdogPlan)> {
        crate::wd::build_watchdog(&self.server, opts)
    }

    fn injector(&self, on_crash: CrashSignal) -> Injector {
        let crash_server = Arc::clone(&self.server);
        Injector::new()
            .with_disk(Arc::clone(&self.disk))
            .with_net(self.net.clone())
            .with_stall(self.server.stall())
            .with_toggles(self.server.toggles())
            .with_clock(Arc::clone(&self.clock))
            .with_crash_hook(Arc::new(move || {
                crash_server.crash();
                on_crash();
            }))
    }

    fn start_workload(&mut self, profile: &WorkloadProfile, observer: Option<WorkloadObserver>) {
        let client = self.server.client();
        self.workload = Some(spawn_workload_on(
            &self.clock,
            profile,
            observer,
            Arc::new(move |ticket| {
                let key = format!("wl-key-{}", ticket.key);
                if ticket.write {
                    match ticket.roll {
                        0 => client.del(&key),
                        1 | 2 => client.append(&key, "x"),
                        _ => client.set(&key, &format!("v{}", ticket.value)),
                    }
                } else {
                    client.get(&key).map(|_| ())
                }
            }),
        ));
    }

    fn load_surface(&self, _keys: usize) -> Option<RequestFn> {
        // Same mix as the steady workload; the load plane owns pacing.
        let client = self.server.client();
        Some(Arc::new(move |ticket| {
            let key = format!("wl-key-{}", ticket.key);
            if ticket.write {
                match ticket.roll {
                    0 => client.del(&key),
                    1 | 2 => client.append(&key, "x"),
                    _ => client.set(&key, &format!("v{}", ticket.value)),
                }
            } else {
                client.get(&key).map(|_| ())
            }
        }))
    }

    fn attach_trace(&self, recorder: &std::sync::Arc<wdog_core::TraceRecorder>) -> bool {
        self.server
            .hooks()
            .attach_trace(std::sync::Arc::clone(recorder));
        true
    }

    fn set_hooks_enabled(&self, enabled: bool) {
        self.server.hooks().set_enabled(enabled);
    }

    fn workload_counters(&self) -> (u64, u64) {
        self.workload
            .as_ref()
            .map(|w| w.counters())
            .unwrap_or((0, 0))
    }

    fn stop_workload(&mut self) {
        if let Some(w) = &mut self.workload {
            w.stop();
        }
    }

    fn api_probe(&self) -> ApiProbe {
        let client = self.server.client();
        Arc::new(move || {
            let key = "__ext_probe";
            client.set(key, "x")?;
            client.get(key).map(|_| ())
        })
    }

    fn liveness_probe(&self) -> LivenessProbe {
        let server = Arc::clone(&self.server);
        Arc::new(move || server.is_running())
    }

    fn errors_handled(&self) -> u64 {
        self.server.stats().errors_handled
    }

    fn request_stop(&self) {
        if let Some(w) = &self.workload {
            w.request_stop();
        }
        if let Some(r) = &self.replica {
            r.request_stop();
        }
        self.server.crash();
    }

    fn recovery_surface(&self) -> Option<RecoverySurface> {
        Some(crate::recover::recovery_surface(&self.server))
    }

    fn io_stats(&self) -> Option<(simio::disk::DiskOpStats, simio::net::NetOpStats)> {
        Some((self.disk.op_stats(), self.net.op_stats()))
    }

    fn clear_faults(&self) {
        self.disk.clear_all();
        self.net.clear_all();
        self.server.toggles().clear_all();
        self.server.stall().set_stalled(false);
    }

    fn teardown(&mut self) {
        self.stop_workload();
        // Dropping the replica joins its receive thread; the server's own
        // threads stop when the last Arc drops with the instance.
        self.replica = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kvs_catalog_is_the_full_catalogue() {
        let cat = KvsTarget.catalog();
        assert_eq!(cat.len(), 12);
    }

    #[test]
    fn booted_instance_serves_probe_and_liveness() {
        let mut inst = KvsTarget.start(1).unwrap();
        let probe = inst.api_probe();
        probe().unwrap();
        assert!(inst.liveness_probe()());
        let (driver, plan) = inst.build_watchdog(&KvsTarget.default_options()).unwrap();
        assert!(!plan.checkers.is_empty());
        drop(driver);
        inst.teardown();
    }

    #[test]
    fn workload_runs_through_the_trait() {
        let mut inst = KvsTarget.start(2).unwrap();
        inst.start_workload(
            &WorkloadProfile {
                threads: 2,
                period: Duration::from_millis(2),
                ..WorkloadProfile::default()
            },
            None,
        );
        std::thread::sleep(Duration::from_millis(200));
        inst.stop_workload();
        let (ok, _failed) = inst.workload_counters();
        assert!(ok > 10, "workload too slow: {ok}");
        inst.teardown();
    }
}
