//! The in-memory indexer: a sharded ordered map.
//!
//! The index is sharded to keep worker threads from serializing on one lock.
//! A cooperative corruption flag models the paper's state-corruption gray
//! failure: while set, every stored value has its first byte flipped — a
//! logic bug that returns success, so only a checker that *reads back and
//! compares* (the generated `index_put` mimic op) can catch it.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use simio::resource::ResourceMonitor;

const SHARDS: usize = 8;

fn shard_of(key: &str) -> usize {
    // FNV-1a, then fold into the shard count.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h % SHARDS as u64) as usize
}

fn corrupt(value: &str) -> String {
    let mut bytes = value.as_bytes().to_vec();
    if let Some(b) = bytes.first_mut() {
        *b = b.wrapping_add(1) & 0x7F;
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// A sharded, memory-accounted ordered index.
#[derive(Clone)]
pub struct MemIndex {
    shards: Arc<[RwLock<BTreeMap<String, String>>; SHARDS]>,
    corrupt_flag: Arc<AtomicBool>,
    monitor: ResourceMonitor,
}

impl MemIndex {
    /// Creates an empty index; `corrupt_flag` is the injected-corruption
    /// toggle, `monitor` receives memory accounting.
    pub fn new(corrupt_flag: Arc<AtomicBool>, monitor: ResourceMonitor) -> Self {
        Self {
            shards: Arc::new(std::array::from_fn(|_| RwLock::new(BTreeMap::new()))),
            corrupt_flag,
            monitor,
        }
    }

    /// Creates an index with no corruption toggle, for tests.
    pub fn for_tests() -> Self {
        Self::new(Arc::new(AtomicBool::new(false)), ResourceMonitor::new())
    }

    /// Stores `value` under `key`, returning the previous value.
    pub fn put(&self, key: &str, value: &str) -> Option<String> {
        let value = if self.corrupt_flag.load(Ordering::Relaxed) {
            corrupt(value)
        } else {
            value.to_owned()
        };
        self.monitor.alloc((key.len() + value.len()) as u64);
        let old = self.shards[shard_of(key)]
            .write()
            .insert(key.to_owned(), value);
        if let Some(old) = &old {
            self.monitor.free((key.len() + old.len()) as u64);
        }
        old
    }

    /// Appends `suffix` to the value under `key`, creating it if absent.
    pub fn append(&self, key: &str, suffix: &str) {
        let suffix = if self.corrupt_flag.load(Ordering::Relaxed) {
            corrupt(suffix)
        } else {
            suffix.to_owned()
        };
        self.monitor.alloc(suffix.len() as u64);
        let mut shard = self.shards[shard_of(key)].write();
        match shard.get_mut(key) {
            Some(v) => v.push_str(&suffix),
            None => {
                self.monitor.alloc(key.len() as u64);
                shard.insert(key.to_owned(), suffix);
            }
        }
    }

    /// Reads the value under `key`.
    pub fn get(&self, key: &str) -> Option<String> {
        self.shards[shard_of(key)].read().get(key).cloned()
    }

    /// Removes `key`, returning its value.
    pub fn remove(&self, key: &str) -> Option<String> {
        let old = self.shards[shard_of(key)].write().remove(key);
        if let Some(old) = &old {
            self.monitor.free((key.len() + old.len()) as u64);
        }
        old
    }

    /// Returns the number of keys.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Returns `true` if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns every entry in key order (snapshot for flushing).
    pub fn snapshot(&self) -> Vec<(String, String)> {
        let mut all: Vec<(String, String)> = Vec::with_capacity(self.len());
        for shard in self.shards.iter() {
            for (k, v) in shard.read().iter() {
                all.push((k.clone(), v.clone()));
            }
        }
        all.sort();
        all
    }
}

impl std::fmt::Debug for MemIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemIndex")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_remove_roundtrip() {
        let idx = MemIndex::for_tests();
        assert!(idx.put("k", "v1").is_none());
        assert_eq!(idx.put("k", "v2"), Some("v1".into()));
        assert_eq!(idx.get("k"), Some("v2".into()));
        assert_eq!(idx.remove("k"), Some("v2".into()));
        assert!(idx.get("k").is_none());
        assert!(idx.is_empty());
    }

    #[test]
    fn append_creates_and_extends() {
        let idx = MemIndex::for_tests();
        idx.append("k", "ab");
        idx.append("k", "cd");
        assert_eq!(idx.get("k"), Some("abcd".into()));
    }

    #[test]
    fn snapshot_is_sorted_across_shards() {
        let idx = MemIndex::for_tests();
        for k in ["zebra", "apple", "mango", "kiwi", "pear"] {
            idx.put(k, "x");
        }
        let snap = idx.snapshot();
        let keys: Vec<&str> = snap.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["apple", "kiwi", "mango", "pear", "zebra"]);
    }

    #[test]
    fn corruption_flag_flips_stored_values() {
        let flag = Arc::new(AtomicBool::new(false));
        let idx = MemIndex::new(Arc::clone(&flag), ResourceMonitor::new());
        idx.put("clean", "value");
        flag.store(true, Ordering::Relaxed);
        idx.put("dirty", "value");
        assert_eq!(idx.get("clean"), Some("value".into()));
        let dirty = idx.get("dirty").unwrap();
        assert_ne!(dirty, "value", "corruption flag had no effect");
        assert_eq!(dirty.len(), 5);
    }

    #[test]
    fn memory_accounting_follows_contents() {
        let monitor = ResourceMonitor::new();
        let idx = MemIndex::new(Arc::new(AtomicBool::new(false)), monitor.clone());
        idx.put("key", "value");
        assert_eq!(monitor.memory_bytes(), 8);
        idx.put("key", "v");
        assert_eq!(monitor.memory_bytes(), 4);
        idx.remove("key");
        assert_eq!(monitor.memory_bytes(), 0);
    }

    #[test]
    fn len_counts_across_shards() {
        let idx = MemIndex::for_tests();
        for i in 0..100 {
            idx.put(&format!("key-{i}"), "v");
        }
        assert_eq!(idx.len(), 100);
    }
}
