//! The compaction manager: merges SSTables in the background.
//!
//! Compaction is the paper's flagship example of a task whose silent failure
//! an intrinsic detector must catch ("checking if a Cassandra background
//! task of SSTable compaction is stuck", §1). Two design points make that
//! detection *possible* for a fate-sharing mimic checker:
//!
//! 1. the whole merge runs under `compaction_lock`, and
//! 2. the injected stuck/busy-loop toggles wedge the thread *inside* that
//!    lock —
//!
//! so the generated `compaction_lock` mimic op (a `try_lock_for` on the same
//! real mutex) times out exactly when the real task is wedged, pinpointing
//! the blocked operation the way the paper's watchdog pinpoints the blocked
//! `serializeNode` call in ZOOKEEPER-2201.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use wdog_core::prelude::*;

use crate::server::Shared;
use crate::sstable::{merge_entries, read_sstable, write_sstable};

/// Background compaction thread body; `alive` is this generation's
/// supervision flag — a restart retires it and spawns a fresh loop.
pub(crate) fn compaction_loop(shared: Arc<Shared>, alive: Arc<AtomicBool>) {
    let hook = shared.hooks.site("compaction_loop");
    while shared.is_running() && alive.load(Ordering::Relaxed) {
        shared.clock.sleep(shared.config.compaction_interval);
        shared.stall.pass(shared.clock.as_ref());
        // Hook: publish the oldest table path for the sst_read mimic op.
        let tables = shared.partitions.tables();
        if let Some(first) = tables.first() {
            let path = first.path.clone();
            let count = tables.len() as u64;
            if let Some(mut fire) = hook.fire() {
                fire.field("sst_path", CtxValue::Str(path))
                    .field("table_count", CtxValue::U64(count));
            }
        }
        if tables.len() > shared.config.compaction_trigger {
            // In-place error handler: compaction failures are caught and
            // retried on the next interval.
            if compact_once(&shared).is_err() {
                shared.stats.errors_handled.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Merges the two oldest SSTables into one, under the compaction lock.
pub(crate) fn compact_once(shared: &Arc<Shared>) -> wdog_base::error::BaseResult<()> {
    let _guard = shared.compaction_lock.lock();

    // Injected code-level faults strike *inside* the critical section: the
    // task wedges or spins while holding the lock, exactly like the gray
    // failures the paper catalogues.
    shared
        .toggles
        .stall_while_set("kvs.compaction.stuck", shared.clock.as_ref());
    shared
        .toggles
        .stall_while_set("kvs.compaction.busyloop", shared.clock.as_ref());

    let tables = shared.partitions.tables();
    if tables.len() < 2 {
        return Ok(());
    }
    let (a, b) = (&tables[0], &tables[1]);
    let older = read_sstable(&shared.disk, &a.path)?;
    let newer = read_sstable(&shared.disk, &b.path)?;
    let merged = merge_entries(&[older, newer]);
    let out_path = shared.partitions.next_path();
    let meta = write_sstable(&shared.disk, &out_path, &merged)?;
    shared
        .partitions
        .replace(&[a.path.clone(), b.path.clone()], meta)?;
    shared.stats.compactions.fetch_add(1, Ordering::Relaxed);
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::config::KvsConfig;
    use crate::server::KvsServer;
    use simio::disk::SimDisk;

    use std::time::Duration;
    use wdog_base::clock::RealClock;

    fn wait_for(pred: impl Fn() -> bool, what: &str) {
        let start = std::time::Instant::now();
        while start.elapsed() < Duration::from_secs(10) {
            if pred() {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("timed out waiting for {what}");
    }

    fn busy_server() -> KvsServer {
        let config = KvsConfig {
            flush_interval: Duration::from_millis(10),
            compaction_interval: Duration::from_millis(10),
            compaction_trigger: 3,
            ..KvsConfig::default()
        };
        KvsServer::start(config, RealClock::shared(), SimDisk::for_tests(), None).unwrap()
    }

    #[test]
    fn compaction_bounds_sstable_count() {
        let server = busy_server();
        let client = server.client();
        // Keep writing so flushes keep producing tables.
        for round in 0..30 {
            for i in 0..5 {
                client.set(&format!("k{round}-{i}"), "v").unwrap();
            }
            std::thread::sleep(Duration::from_millis(15));
        }
        wait_for(|| server.stats().compactions >= 1, "a compaction");
        // After a settle period the table count stays bounded.
        std::thread::sleep(Duration::from_millis(300));
        assert!(
            server.sstable_count() <= 8,
            "compaction not keeping up: {} tables",
            server.sstable_count()
        );
    }

    #[test]
    fn compaction_preserves_data() {
        let server = busy_server();
        let client = server.client();
        for i in 0..50 {
            client
                .set(&format!("key-{i:03}"), &format!("val-{i}"))
                .unwrap();
            if i % 10 == 0 {
                std::thread::sleep(Duration::from_millis(20));
            }
        }
        wait_for(|| server.stats().compactions >= 1, "a compaction");
        for i in 0..50 {
            assert_eq!(
                client.get(&format!("key-{i:03}")).unwrap(),
                Some(format!("val-{i}"))
            );
        }
    }

    #[test]
    fn stuck_toggle_wedges_compaction_inside_lock() {
        let server = busy_server();
        let client = server.client();
        server.toggles().set("kvs.compaction.stuck", true);
        for round in 0..10 {
            for i in 0..5 {
                client.set(&format!("k{round}-{i}"), "v").unwrap();
            }
            std::thread::sleep(Duration::from_millis(15));
        }
        // Wait until the compactor is actually wedged inside the lock.
        wait_for(
            || server.shared().compaction_lock.try_lock().is_none(),
            "compaction lock to be held by the wedged task",
        );
        let before = server.stats().compactions;
        std::thread::sleep(Duration::from_millis(200));
        assert_eq!(server.stats().compactions, before, "compaction still ran");
        // Releasing the toggle lets compaction resume.
        server.toggles().set("kvs.compaction.stuck", false);
        wait_for(|| server.stats().compactions > before, "compaction resume");
    }

    #[test]
    fn compaction_context_published() {
        let server = busy_server();
        let client = server.client();
        for i in 0..10 {
            client.set(&format!("k{i}"), "v").unwrap();
        }
        let ctx = server.context();
        wait_for(|| ctx.is_ready("compaction_loop"), "compaction context");
        let snap = ctx.read("compaction_loop").unwrap();
        assert!(snap
            .get("sst_path")
            .unwrap()
            .as_str()
            .unwrap()
            .starts_with("sst/"));
    }
}
