//! Server wiring: shared state, background threads, client handle, and
//! crash semantics.
//!
//! A running [`KvsServer`] matches the paper's Figure 1: worker threads
//! drain the request listener queue; the WAL writer, disk flusher,
//! compaction manager, and replication engine run as background threads; and
//! the watchdog (built separately by [`crate::wd`]) lives in the same
//! address space, fed one-way through hook sites owned here.
//!
//! [`KvsServer::crash`] models fail-stop: every thread observes the running
//! flag and exits, requests time out, and — because an intrinsic watchdog
//! dies with its process — experiment harnesses stop the watchdog driver at
//! the same moment.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use faults::ToggleSet;
use simio::disk::SimDisk;
use simio::net::SimNet;
use simio::resource::{ResourceMonitor, StallPoint};

use wdog_base::clock::{spawn_on, SharedClock};
use wdog_base::error::{BaseError, BaseResult};
use wdog_base::queue::ClockedQueue;
use wdog_base::sync::ClockedMutex;

use wdog_core::prelude::*;

use crate::api::{Request, Response};
use crate::config::KvsConfig;
use crate::index::MemIndex;
use crate::partition::PartitionManager;
use crate::sstable::read_sstable;
use crate::supervise::{SupervisionStats, Supervisor};
use crate::wal::Wal;

/// Counters exposed for experiments and assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvsStats {
    /// Completed GET requests.
    pub gets: u64,
    /// Completed SET requests.
    pub sets: u64,
    /// Completed APPEND requests.
    pub appends: u64,
    /// Completed DEL requests.
    pub dels: u64,
    /// WAL records made durable.
    pub wal_records: u64,
    /// Index snapshots flushed to SSTables.
    pub flushes: u64,
    /// Compactions completed.
    pub compactions: u64,
    /// Operations shipped to the replica.
    pub repl_sent: u64,
    /// Explicit errors caught by in-place error handlers (the paper's
    /// error-handler abstraction, measured as a detection baseline in E1).
    pub errors_handled: u64,
}

#[derive(Default)]
pub(crate) struct StatsInner {
    pub(crate) gets: AtomicU64,
    pub(crate) sets: AtomicU64,
    pub(crate) appends: AtomicU64,
    pub(crate) dels: AtomicU64,
    pub(crate) wal_records: AtomicU64,
    pub(crate) flushes: AtomicU64,
    pub(crate) compactions: AtomicU64,
    pub(crate) repl_sent: AtomicU64,
    pub(crate) errors_handled: AtomicU64,
}

impl StatsInner {
    fn snapshot(&self) -> KvsStats {
        KvsStats {
            gets: self.gets.load(Ordering::Relaxed),
            sets: self.sets.load(Ordering::Relaxed),
            appends: self.appends.load(Ordering::Relaxed),
            dels: self.dels.load(Ordering::Relaxed),
            wal_records: self.wal_records.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            repl_sent: self.repl_sent.load(Ordering::Relaxed),
            errors_handled: self.errors_handled.load(Ordering::Relaxed),
        }
    }
}

/// State shared by every kvs thread and the watchdog integration.
pub(crate) struct Shared {
    pub(crate) config: KvsConfig,
    pub(crate) clock: SharedClock,
    pub(crate) disk: Arc<SimDisk>,
    pub(crate) net: Option<SimNet>,
    pub(crate) monitor: ResourceMonitor,
    pub(crate) stall: StallPoint,
    pub(crate) toggles: ToggleSet,
    pub(crate) index: MemIndex,
    /// Clock-visible: held across WAL disk appends and flush rotation.
    pub(crate) wal: ClockedMutex<Wal>,
    pub(crate) wal_q: ClockedQueue<Vec<u8>>,
    /// Shared handle: a restarted replication loop resumes the same queue.
    pub(crate) repl_q: ClockedQueue<Vec<u8>>,
    pub(crate) partitions: PartitionManager,
    /// Clock-visible: held across whole compaction merges (disk IO).
    pub(crate) compaction_lock: ClockedMutex<()>,
    pub(crate) supervisor: Supervisor,
    pub(crate) index_rebuilds: AtomicU64,
    pub(crate) running: AtomicBool,
    pub(crate) hooks: Hooks,
    pub(crate) context: Arc<ContextTable>,
    pub(crate) stats: StatsInner,
}

impl Shared {
    pub(crate) fn is_running(&self) -> bool {
        self.running.load(Ordering::Relaxed)
    }
}

/// The request queue element: a request plus its single-slot reply queue.
pub(crate) type RequestItem = (Request, ClockedQueue<Response>);

/// The assembled kvs process.
pub struct KvsServer {
    shared: Arc<Shared>,
    request_q: ClockedQueue<RequestItem>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl KvsServer {
    /// Builds, recovers, and starts a server.
    ///
    /// `net` is required when `config.replication` is set.
    pub fn start(
        config: KvsConfig,
        clock: SharedClock,
        disk: Arc<SimDisk>,
        net: Option<SimNet>,
    ) -> BaseResult<Self> {
        if config.replication.is_some() && net.is_none() {
            return Err(BaseError::InvalidState(
                "replication configured but no network provided".into(),
            ));
        }
        let monitor = ResourceMonitor::new();
        let toggles = ToggleSet::new();
        let corrupt_flag = toggles.flag("kvs.indexer.corrupt");
        let index = MemIndex::new(corrupt_flag, monitor.clone());
        let partitions = PartitionManager::new(Arc::clone(&disk));
        let context = ContextTable::new(Arc::clone(&clock));
        let hooks = Hooks::new(Arc::clone(&context));

        // Recovery: SSTables first (oldest to newest), then the WAL tail.
        if config.durable {
            recover(&disk, &index, &partitions)?;
        }

        let wal_q = ClockedQueue::<Vec<u8>>::unbounded(&clock);
        let repl_q = ClockedQueue::<Vec<u8>>::unbounded(&clock);
        let request_q = ClockedQueue::<RequestItem>::bounded(&clock, config.request_queue_cap);

        let wal = ClockedMutex::new(&clock, Wal::new(Arc::clone(&disk), "wal/current"));
        let compaction_lock = ClockedMutex::new(&clock, ());
        let shared = Arc::new(Shared {
            wal,
            config: config.clone(),
            clock,
            disk,
            net,
            monitor: monitor.clone(),
            stall: StallPoint::new(),
            toggles,
            index,
            wal_q: wal_q.clone(),
            repl_q: repl_q.clone(),
            partitions,
            compaction_lock,
            supervisor: Supervisor::new(),
            index_rebuilds: AtomicU64::new(0),
            running: AtomicBool::new(true),
            hooks,
            context,
            stats: StatsInner::default(),
        });

        // Expose queue depths to signal checkers.
        let rq = request_q.clone();
        monitor.register_queue("requests", Arc::new(move || rq.len()));
        let wq = wal_q.clone();
        monitor.register_queue("wal", Arc::new(move || wq.len()));
        let pq = repl_q.clone();
        monitor.register_queue("replication", Arc::new(move || pq.len()));

        let mut threads = Vec::new();
        for i in 0..config.workers.max(1) {
            let s = Arc::clone(&shared);
            let rx = request_q.clone();
            threads.push(spawn_on(
                &shared.clock,
                &format!("kvs-worker-{i}"),
                move || crate::listener::worker_loop(s, rx),
            ));
        }
        if config.durable {
            let s = Arc::clone(&shared);
            threads.push(spawn_on(&shared.clock, "kvs-wal", move || {
                crate::listener::wal_loop(s, wal_q)
            }));
            let s = Arc::clone(&shared);
            let alive = s.supervisor.flusher.flag();
            threads.push(spawn_on(&shared.clock, "kvs-flusher", move || {
                crate::flusher::flusher_loop(s, alive)
            }));
            let s = Arc::clone(&shared);
            let alive = s.supervisor.compaction.flag();
            threads.push(spawn_on(&shared.clock, "kvs-compaction", move || {
                crate::compaction::compaction_loop(s, alive)
            }));
        }
        if config.replication.is_some() {
            let s = Arc::clone(&shared);
            let alive = s.supervisor.replication.flag();
            threads.push(spawn_on(&shared.clock, "kvs-replication", move || {
                crate::replication::replication_loop(s, repl_q, alive)
            }));
        }

        Ok(Self {
            shared,
            request_q,
            threads,
        })
    }

    /// Starts a default-configured server on fresh test substrates.
    pub fn for_tests() -> Self {
        Self::start(
            KvsConfig::default(),
            wdog_base::clock::RealClock::shared(),
            SimDisk::for_tests(),
            None,
        )
        .expect("test server")
    }

    /// Returns a client handle.
    pub fn client(&self) -> KvsClient {
        KvsClient {
            q: self.request_q.clone(),
            clock: Arc::clone(&self.shared.clock),
            timeout: self.shared.config.client_timeout,
        }
    }

    /// Simulates fail-stop: all threads exit, requests time out.
    pub fn crash(&self) {
        self.shared.running.store(false, Ordering::Relaxed);
    }

    /// Returns `true` until [`KvsServer::crash`] or [`KvsServer::stop`].
    pub fn is_running(&self) -> bool {
        self.shared.is_running()
    }

    /// Graceful shutdown: signals threads and joins them.
    ///
    /// Threads wedged inside an armed fault are detached rather than
    /// awaited; they unwedge (and exit) when the fault clears.
    pub fn stop(&mut self) {
        self.shared.running.store(false, Ordering::Relaxed);
        let handles: Vec<_> = self.threads.drain(..).collect();
        wdog_base::join::join_all_timeout(handles, std::time::Duration::from_millis(500));
    }

    /// Returns a statistics snapshot.
    pub fn stats(&self) -> KvsStats {
        self.shared.stats.snapshot()
    }

    /// Returns the resource monitor (for signal checkers).
    pub fn monitor(&self) -> ResourceMonitor {
        self.shared.monitor.clone()
    }

    /// Returns the process stall gate (for pause injection).
    pub fn stall(&self) -> StallPoint {
        self.shared.stall.clone()
    }

    /// Returns the cooperative fault toggles.
    pub fn toggles(&self) -> ToggleSet {
        self.shared.toggles.clone()
    }

    /// Returns the disk this server persists to.
    pub fn disk(&self) -> Arc<SimDisk> {
        Arc::clone(&self.shared.disk)
    }

    /// Returns the watchdog context table fed by this server's hooks.
    pub fn context(&self) -> Arc<ContextTable> {
        Arc::clone(&self.shared.context)
    }

    /// Returns the hook infrastructure (for the E5/E6 hook ablations).
    pub fn hooks(&self) -> Hooks {
        self.shared.hooks.clone()
    }

    /// Returns the number of live SSTables.
    pub fn sstable_count(&self) -> usize {
        self.shared.partitions.table_count()
    }

    /// Validates every live SSTable's checksum.
    pub fn validate_partitions(&self) -> BaseResult<()> {
        self.shared.partitions.validate_all()
    }

    /// Cheap recovery (paper §5.2): replaces the on-disk partitions with a
    /// single fresh SSTable rebuilt from the authoritative in-memory index.
    ///
    /// This is the "replacing corrupted objects/files" recovery a watchdog's
    /// precise localization enables, instead of a full process restart.
    /// Returns the number of old tables replaced.
    pub fn rebuild_partitions(&self) -> BaseResult<usize> {
        let _guard = self.shared.compaction_lock.lock();
        let old: Vec<String> = self
            .shared
            .partitions
            .tables()
            .into_iter()
            .map(|t| t.path)
            .collect();
        let entries = self.shared.index.snapshot();
        let path = self.shared.partitions.next_path();
        let meta = crate::sstable::write_sstable(&self.shared.disk, &path, &entries)?;
        self.shared.partitions.replace(&old, meta)?;
        Ok(old.len())
    }

    /// Component-scoped restart (paper §5.2): retires the named component's
    /// current generation, clears the cooperative faults a fresh instance
    /// would discard with its in-memory state, and spawns a replacement.
    ///
    /// `component` is matched loosely (`kvs.flusher`, `flush`, `compact`,
    /// `repl`, `index`/`sst`, `kvs`/`listener`/`memory`) so watchdog blame
    /// at any granularity maps onto the owning component. Returns `false`
    /// when nothing restartable matches.
    pub fn restart_component(&self, component: &str) -> bool {
        let c = component;
        if c.contains("flush") || c.contains("wal") {
            if !self.shared.config.durable {
                return false;
            }
            let s = Arc::clone(&self.shared);
            let alive = s.supervisor.flusher.next_generation();
            spawn_on(&self.shared.clock, "kvs-flusher", move || {
                crate::flusher::flusher_loop(s, alive)
            });
            true
        } else if c.contains("compact") {
            if !self.shared.config.durable {
                return false;
            }
            // A fresh compactor has no wedged/spinning state: the toggles
            // model in-memory state the retired generation takes with it.
            self.shared.toggles.set("kvs.compaction.stuck", false);
            self.shared.toggles.set("kvs.compaction.busyloop", false);
            let s = Arc::clone(&self.shared);
            let alive = s.supervisor.compaction.next_generation();
            spawn_on(&self.shared.clock, "kvs-compaction", move || {
                crate::compaction::compaction_loop(s, alive)
            });
            true
        } else if c.contains("repl") {
            if self.shared.config.replication.is_none() {
                return false;
            }
            let s = Arc::clone(&self.shared);
            let rx = self.shared.repl_q.clone();
            let alive = s.supervisor.replication.next_generation();
            spawn_on(&self.shared.clock, "kvs-replication", move || {
                crate::replication::replication_loop(s, rx, alive)
            });
            true
        } else if c.contains("index") || c.contains("sst") {
            // "Restarting" the indexer replaces its corrupted on-disk
            // objects: drop the corrupting state and rebuild the partitions
            // from the authoritative in-memory index.
            self.shared.toggles.set("kvs.indexer.corrupt", false);
            let ok = self.rebuild_partitions().is_ok();
            if ok {
                self.shared.index_rebuilds.fetch_add(1, Ordering::Relaxed);
            }
            ok
        } else if c.contains("api") || c.contains("listener") || c.contains("memory") || c == "kvs"
        {
            // Restarting the request path re-initializes its in-process
            // state: stop the leak, release what it accumulated, and — when
            // the indexer has been corrupting entries — replace the
            // corrupted objects like an index restart would.
            self.shared.toggles.set("kvs.listener.leak", false);
            let leaked = self.shared.monitor.memory_bytes();
            if leaked > 0 {
                self.shared.monitor.free(leaked);
            }
            if self.shared.toggles.is_set("kvs.indexer.corrupt") {
                self.shared.toggles.set("kvs.indexer.corrupt", false);
                if self.rebuild_partitions().is_ok() {
                    self.shared.index_rebuilds.fetch_add(1, Ordering::Relaxed);
                }
            }
            true
        } else {
            false
        }
    }

    /// Sheds the named component's workload without a replacement (the
    /// recovery ladder's degrade rung). Returns `false` when the component
    /// has no sheddable generation.
    pub fn degrade_component(&self, component: &str) -> bool {
        let c = component;
        if c.contains("flush") || c.contains("wal") {
            self.shared.supervisor.flusher.shed();
            true
        } else if c.contains("compact") {
            // Unwedge the retiring generation so it releases the lock.
            self.shared.toggles.set("kvs.compaction.stuck", false);
            self.shared.toggles.set("kvs.compaction.busyloop", false);
            self.shared.supervisor.compaction.shed();
            true
        } else if c.contains("repl") {
            self.shared.supervisor.replication.shed();
            true
        } else {
            false
        }
    }

    /// Returns supervision bookkeeping for experiments and assertions.
    pub fn supervision(&self) -> SupervisionStats {
        let sup = &self.shared.supervisor;
        let degraded = [&sup.flusher, &sup.compaction, &sup.replication]
            .into_iter()
            .filter(|s| s.is_degraded())
            .count() as u32;
        SupervisionStats {
            flusher_restarts: sup.flusher.restarts(),
            compaction_restarts: sup.compaction.restarts(),
            replication_restarts: sup.replication.restarts(),
            index_rebuilds: self.shared.index_rebuilds.load(Ordering::Relaxed),
            degraded,
        }
    }

    /// Returns the configuration the server was started with.
    pub fn config(&self) -> &KvsConfig {
        &self.shared.config
    }

    pub(crate) fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }
}

impl Drop for KvsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for KvsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvsServer")
            .field("running", &self.is_running())
            .field("stats", &self.stats())
            .finish()
    }
}

fn recover(disk: &Arc<SimDisk>, index: &MemIndex, partitions: &PartitionManager) -> BaseResult<()> {
    // SSTables, oldest first (paths sort by id).
    for path in disk.list("sst/") {
        let entries = read_sstable(disk, &path)?;
        for (k, v) in &entries {
            index.put(k, v);
        }
        let meta = crate::sstable::SstMeta {
            path: path.clone(),
            entries: entries.len(),
            min_key: entries.first().map(|(k, _)| k.clone()).unwrap_or_default(),
            max_key: entries.last().map(|(k, _)| k.clone()).unwrap_or_default(),
            checksum: 0, // Recomputed lazily by validate_all.
            bytes: disk.len(&path)?,
        };
        partitions.register(meta);
    }
    // Bring the id counter past recovered tables.
    let max_id = disk
        .list("sst/")
        .iter()
        .filter_map(|p| p.strip_prefix("sst/").and_then(|s| s.parse::<u64>().ok()))
        .max();
    if let Some(id) = max_id {
        partitions.ensure_next_id_above(id);
    }
    // WAL tail: a rotated log left by a crash mid-flush replays first
    // (its records are older), then the current log. Records are
    // after-images, so replay is idempotent.
    for path in [crate::flusher::WAL_ROTATED_PATH, "wal/current"] {
        for record in Wal::replay(disk, path)? {
            let req = Request::decode(&record)?;
            apply_to_index(index, &req);
        }
    }
    Ok(())
}

pub(crate) fn apply_to_index(index: &MemIndex, req: &Request) {
    match req {
        Request::Set { key, value } => {
            index.put(key, value);
        }
        Request::Append { key, value } => {
            index.append(key, value);
        }
        Request::Del { key } => {
            index.remove(key);
        }
        Request::Get { .. } => {}
    }
}

/// A handle for submitting requests to a running server.
#[derive(Clone)]
pub struct KvsClient {
    q: ClockedQueue<RequestItem>,
    clock: SharedClock,
    timeout: std::time::Duration,
}

impl KvsClient {
    /// Submits a request and waits for the response.
    ///
    /// Returns [`BaseError::Exhausted`] when the request queue is full and
    /// [`BaseError::Timeout`] when no response arrives in time (the
    /// observable behaviour of a crashed or wedged server). The wait is
    /// clock-paced, so a simulated clock sees it as a discrete-event wait.
    pub fn request(&self, req: Request) -> BaseResult<Response> {
        let reply = ClockedQueue::<Response>::bounded(&self.clock, 1);
        self.q
            .push((req, reply.clone()))
            .map_err(|_| BaseError::Exhausted("request queue full or closed".into()))?;
        reply
            .pop_timeout(self.timeout)
            .ok_or_else(|| BaseError::Timeout {
                what: "kvs request".into(),
                after_ms: self.timeout.as_millis() as u64,
            })
    }

    /// Convenience GET.
    pub fn get(&self, key: &str) -> BaseResult<Option<String>> {
        match self.request(Request::Get { key: key.into() })? {
            Response::Value(v) => Ok(v),
            Response::Error(e) => Err(BaseError::Io(e)),
            Response::Ok => Err(BaseError::InvalidState("unexpected Ok for GET".into())),
        }
    }

    /// Convenience SET.
    pub fn set(&self, key: &str, value: &str) -> BaseResult<()> {
        match self.request(Request::Set {
            key: key.into(),
            value: value.into(),
        })? {
            Response::Error(e) => Err(BaseError::Io(e)),
            _ => Ok(()),
        }
    }

    /// Convenience APPEND.
    pub fn append(&self, key: &str, value: &str) -> BaseResult<()> {
        match self.request(Request::Append {
            key: key.into(),
            value: value.into(),
        })? {
            Response::Error(e) => Err(BaseError::Io(e)),
            _ => Ok(()),
        }
    }

    /// Convenience DEL.
    pub fn del(&self, key: &str) -> BaseResult<()> {
        match self.request(Request::Del { key: key.into() })? {
            Response::Error(e) => Err(BaseError::Io(e)),
            _ => Ok(()),
        }
    }
}

impl std::fmt::Debug for KvsClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("KvsClient")
    }
}
