//! The disk flusher: persists index snapshots as SSTables.
//!
//! Every `flush_interval`, if the WAL has grown since the last flush, the
//! flusher snapshots the index into a fresh checksummed SSTable, registers
//! it with the partition manager, and truncates the WAL. Its hook publishes
//! a bounded sample of the flushed payload so the generated `sst_write`
//! mimic op writes realistically sized data into the watchdog namespace.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use wdog_core::prelude::*;

use crate::server::Shared;
use crate::sstable::write_sstable;

/// Cap on the payload sample published into the flusher context.
const SAMPLE_BYTES: usize = 4096;

/// Where the WAL is parked during a flush (replayed first on recovery).
pub(crate) const WAL_ROTATED_PATH: &str = "wal/flushing";

/// Background flusher thread body; `alive` is this generation's
/// supervision flag — a restart retires it and spawns a fresh loop.
pub(crate) fn flusher_loop(shared: Arc<Shared>, alive: Arc<AtomicBool>) {
    let hook = shared.hooks.site("flusher_loop");
    while shared.is_running() && alive.load(Ordering::Relaxed) {
        shared.clock.sleep(shared.config.flush_interval);
        shared.stall.pass(shared.clock.as_ref());
        let appended = shared.wal.lock().appended_bytes();
        if appended == 0 {
            continue;
        }
        // In-place error handler: flush failures are caught and retried on
        // the next interval.
        if flush_once(&shared, &hook).is_err() {
            shared
                .stats
                .errors_handled
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }
}

/// Performs one flush cycle; errors are surfaced to the caller (and show up
/// as a growing WAL for signal checkers) rather than crashing the loop.
pub(crate) fn flush_once(
    shared: &Arc<Shared>,
    hook: &HookSite,
) -> wdog_base::error::BaseResult<()> {
    // Rotate the WAL first, under the WAL lock so no append straddles the
    // boundary. The index snapshot taken *after* rotation necessarily
    // covers every record in the rotated file, so deleting that file once
    // the SSTable is durable can never lose an acknowledged write. A
    // leftover rotated file (crash mid-flush) is left in place; recovery
    // replays it and this flush subsumes it.
    {
        let mut wal = shared.wal.lock();
        let current = wal.path().to_owned();
        if !shared.disk.exists(WAL_ROTATED_PATH)
            && shared.disk.exists(&current)
            && shared.disk.len(&current)? > 0
        {
            shared.disk.rename(&current, WAL_ROTATED_PATH)?;
        }
        wal.reset_appended();
    }
    let entries = shared.index.snapshot();
    let path = shared.partitions.next_path();

    // Hook before the vulnerable write: publish a sample of what is about
    // to be written.
    let sample: Vec<u8> = serde_json::to_vec(&entries)
        .unwrap_or_default()
        .into_iter()
        .take(SAMPLE_BYTES)
        .collect();
    let entry_count = entries.len() as u64;
    if let Some(mut fire) = hook.fire() {
        fire.field("sst_payload", CtxValue::Bytes(sample))
            .field("entry_count", CtxValue::U64(entry_count));
    }

    let meta = write_sstable(&shared.disk, &path, &entries)?;
    shared.partitions.register(meta);
    // The rotated records are now durable in the SSTable.
    if shared.disk.exists(WAL_ROTATED_PATH) {
        shared.disk.remove(WAL_ROTATED_PATH)?;
    }
    shared.stats.flushes.fetch_add(1, Ordering::Relaxed);
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::config::KvsConfig;
    use crate::server::KvsServer;
    use simio::disk::SimDisk;
    use std::sync::Arc;
    use std::time::Duration;
    use wdog_base::clock::RealClock;

    fn wait_for(pred: impl Fn() -> bool, what: &str) {
        let start = std::time::Instant::now();
        while start.elapsed() < Duration::from_secs(5) {
            if pred() {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("timed out waiting for {what}");
    }

    #[test]
    fn writes_eventually_flush_to_sstables() {
        let disk = SimDisk::for_tests();
        let server = KvsServer::start(
            KvsConfig::default(),
            RealClock::shared(),
            Arc::clone(&disk),
            None,
        )
        .unwrap();
        let client = server.client();
        for i in 0..20 {
            client.set(&format!("k{i}"), "v").unwrap();
        }
        wait_for(|| server.stats().flushes >= 1, "first flush");
        assert!(server.sstable_count() >= 1);
        assert!(!disk.list("sst/").is_empty());
    }

    #[test]
    fn quiet_server_does_not_flush() {
        let server = KvsServer::for_tests();
        std::thread::sleep(Duration::from_millis(200));
        assert_eq!(server.stats().flushes, 0);
    }

    #[test]
    fn flusher_context_published_with_payload_sample() {
        let server = KvsServer::for_tests();
        let client = server.client();
        client.set("k", "v").unwrap();
        let ctx = server.context();
        wait_for(|| ctx.is_ready("flusher_loop"), "flusher context");
        let snap = ctx.read("flusher_loop").unwrap();
        assert!(snap.get("sst_payload").unwrap().as_bytes().is_some());
        assert!(snap.get("entry_count").unwrap().as_u64().unwrap() >= 1);
    }

    #[test]
    fn flush_truncates_wal() {
        let server = KvsServer::for_tests();
        let client = server.client();
        client.set("k", "v").unwrap();
        wait_for(|| server.stats().flushes >= 1, "flush");
        // After a flush with no new writes, WAL replay must be empty.
        std::thread::sleep(Duration::from_millis(100));
        let records = crate::wal::Wal::replay(&server.disk(), "wal/current").unwrap();
        assert!(
            records.is_empty(),
            "wal not truncated: {} records",
            records.len()
        );
    }
}
