//! kvs component supervision: one [`Supervised`] generation flag per
//! restartable background component (see `wdog_target::supervise` for the
//! mechanism and the §5.2 rationale).

pub(crate) use wdog_target::Supervised;

/// Supervision state for every restartable kvs component.
pub(crate) struct Supervisor {
    pub(crate) flusher: Supervised,
    pub(crate) compaction: Supervised,
    pub(crate) replication: Supervised,
}

impl Supervisor {
    pub(crate) fn new() -> Self {
        Self {
            flusher: Supervised::new(),
            compaction: Supervised::new(),
            replication: Supervised::new(),
        }
    }
}

/// Snapshot of supervision bookkeeping, for experiments and assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisionStats {
    /// Flusher generations retired by restart.
    pub flusher_restarts: u64,
    /// Compaction generations retired by restart.
    pub compaction_restarts: u64,
    /// Replication generations retired by restart.
    pub replication_restarts: u64,
    /// Index/partition rebuilds performed as component restarts.
    pub index_rebuilds: u64,
    /// Components currently shed (degraded, no live generation).
    pub degraded: u32,
}
