//! `kvs`: the paper's running-example key-value store (Figure 1).
//!
//! "Despite its simple interface (GET, SET, APPEND, DEL), kvs has complex
//! internals, including the request listener, indexer, disk flusher,
//! replication engine, etc." — this crate builds those internals for real,
//! on the [`simio`] substrates, so that every gray-failure class from the
//! paper has a concrete code path to strike:
//!
//! - [`listener`]: a bounded request queue drained by worker threads;
//! - [`index`]: the in-memory sharded indexer;
//! - [`wal`]: a checksummed write-ahead log with a dedicated writer thread;
//! - [`sstable`] + [`partition`]: checksummed on-disk partitions and their
//!   manager;
//! - [`flusher`]: the background disk flusher persisting index snapshots;
//! - [`compaction`]: the background SSTable compactor (the paper's §1
//!   example of a task that can silently get stuck);
//! - [`replication`]: an async primary→replica engine over [`simio::SimNet`];
//! - [`server`]: the wiring, client handle, and crash semantics;
//! - [`wd`]: the watchdog integration — the IR self-description consumed by
//!   AutoWatchdog (`wdog-gen`), the [`wdog_gen::OpTable`] binding generated
//!   checkers to real kvs operations, hand-written probe and signal
//!   checkers, and hook sites publishing context one-way.
//!
//! Cooperative fault hooks ([`faults::ToggleSet`]) are polled at the code
//! sites the scenario catalogue names: the compaction loop can wedge or
//! busy-spin *while holding the compaction lock*, the indexer can start
//! corrupting values, the request path can leak memory.

pub mod api;
pub mod compaction;
pub mod config;
pub mod flusher;
pub mod index;
pub mod listener;
pub mod partition;
pub mod recover;
pub mod replication;
pub mod server;
pub mod sstable;
pub mod supervise;
pub mod target;
pub mod wal;
pub mod wd;

pub use api::{Request, Response};
pub use config::{KvsConfig, ReplicationConfig};
pub use server::{KvsClient, KvsServer};
pub use supervise::SupervisionStats;
