//! The request listener: worker threads and the WAL writer thread.
//!
//! Workers drain the bounded request queue, apply requests to the index, and
//! enqueue durability (WAL) and replication work asynchronously — so a slow
//! or stuck disk does *not* block the client-facing path. That asynchrony is
//! deliberate: it is what makes WAL faults *gray* (clients keep getting
//! `Ok`, probe checkers stay green) and therefore detectable only by
//! checkers with internal visibility.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use wdog_base::queue::ClockedQueue;

use wdog_core::prelude::*;

use crate::api::{Request, Response};
use crate::server::{RequestItem, Shared};

/// How long loops wait on their queues before re-checking the running flag.
const IDLE_WAIT: Duration = Duration::from_millis(10);

/// Bytes leaked per request while the leak toggle is set.
const LEAK_BYTES: u64 = 4096;

/// Drains the request queue until the server stops running.
pub(crate) fn worker_loop(shared: Arc<Shared>, rx: ClockedQueue<RequestItem>) {
    let leak_flag = shared.toggles.flag("kvs.listener.leak");
    let listener_hook = shared.hooks.site("listener_loop");
    while shared.is_running() {
        // Cooperative stop-the-world gate (runtime-pause injection).
        shared.stall.pass(shared.clock.as_ref());
        let Some((req, reply)) = rx.pop_timeout(IDLE_WAIT) else {
            continue;
        };
        shared.monitor.op_start();
        if leak_flag.load(Ordering::Relaxed) {
            // Injected leak: allocation with no matching free.
            shared.monitor.alloc(LEAK_BYTES);
        }
        // Hook: publish the live request payload for the indexer mimic op.
        let key = req.key().to_owned();
        let value = match &req {
            Request::Set { value, .. } | Request::Append { value, .. } => value.clone(),
            _ => String::new(),
        };
        if let Some(mut fire) = listener_hook.fire() {
            fire.field("probe_key", CtxValue::Str(key))
                .field("probe_val", CtxValue::Str(value));
        }
        let resp = handle_request(&shared, req);
        let _ = reply.push(resp);
        shared.monitor.op_end();
    }
}

/// Applies one request to the index and fans out durability/replication.
pub(crate) fn handle_request(shared: &Arc<Shared>, req: Request) -> Response {
    let resp = match &req {
        Request::Get { key } => Response::Value(shared.index.get(key)),
        Request::Set { key, value } => {
            // wdog: vulnerable name=index_put resource=index
            shared.index.put(key, value);
            shared.stats.sets.fetch_add(1, Ordering::Relaxed);
            Response::Ok
        }
        Request::Append { key, value } => {
            shared.index.append(key, value);
            shared.stats.appends.fetch_add(1, Ordering::Relaxed);
            Response::Ok
        }
        Request::Del { key } => {
            shared.index.remove(key);
            shared.stats.dels.fetch_add(1, Ordering::Relaxed);
            Response::Ok
        }
    };
    if matches!(req, Request::Get { .. }) {
        shared.stats.gets.fetch_add(1, Ordering::Relaxed);
        return resp;
    }
    // Writes fan out asynchronously as *after-images*: the logged record
    // carries the resulting value rather than the operation, so WAL replay
    // is idempotent (APPEND records could otherwise double-apply when a
    // record survives in both an SSTable and the log across a crash).
    let logical = match &req {
        Request::Set { key, .. } | Request::Append { key, .. } => Request::Set {
            key: key.clone(),
            value: shared.index.get(req.key()).unwrap_or_default(),
        },
        Request::Del { key } => Request::Del { key: key.clone() },
        Request::Get { .. } => unreachable!("gets returned above"),
    };
    let encoded = logical.encode();
    if shared.config.durable {
        let _ = shared.wal_q.push(encoded.clone());
    }
    if shared.config.replication.is_some() {
        let _ = shared.repl_q.push(encoded);
    }
    resp
}

/// Drains the WAL queue, making records durable one at a time.
pub(crate) fn wal_loop(shared: Arc<Shared>, rx: ClockedQueue<Vec<u8>>) {
    let hook = shared.hooks.site("wal_loop");
    while shared.is_running() {
        let Some(record) = rx.pop_timeout(IDLE_WAIT) else {
            continue;
        };
        // Hook placed before the vulnerable append, publishing the payload
        // the mimic op will write into the redirected WAL.
        let payload = record.clone();
        hook.fire_kv("payload", CtxValue::Bytes(payload));
        // In-place error handler: a failed append is caught and the record
        // is retried on the next cycle. The handler mitigates; it does not
        // assess overall health (Table 1).
        match shared.wal.lock().append_record(&record) {
            Ok(()) => {
                shared.stats.wal_records.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                shared.stats.errors_handled.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KvsConfig;
    use crate::server::KvsServer;
    use simio::disk::SimDisk;
    use wdog_base::clock::RealClock;

    fn wait_for(pred: impl Fn() -> bool, what: &str) {
        let start = std::time::Instant::now();
        while start.elapsed() < Duration::from_secs(5) {
            if pred() {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("timed out waiting for {what}");
    }

    #[test]
    fn set_get_del_roundtrip() {
        let server = KvsServer::for_tests();
        let client = server.client();
        client.set("k", "v").unwrap();
        assert_eq!(client.get("k").unwrap(), Some("v".into()));
        client.append("k", "2").unwrap();
        assert_eq!(client.get("k").unwrap(), Some("v2".into()));
        client.del("k").unwrap();
        assert_eq!(client.get("k").unwrap(), None);
    }

    #[test]
    fn writes_reach_the_wal() {
        let server = KvsServer::for_tests();
        let client = server.client();
        for i in 0..10 {
            client.set(&format!("k{i}"), "v").unwrap();
        }
        wait_for(|| server.stats().wal_records >= 10, "wal records");
    }

    #[test]
    fn in_memory_mode_never_touches_disk() {
        let disk = SimDisk::for_tests();
        let server = KvsServer::start(
            KvsConfig::in_memory(),
            RealClock::shared(),
            Arc::clone(&disk),
            None,
        )
        .unwrap();
        let client = server.client();
        for i in 0..20 {
            client.set(&format!("k{i}"), "v").unwrap();
        }
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(disk.stats().writes, 0);
        assert_eq!(client.get("k7").unwrap(), Some("v".into()));
    }

    #[test]
    fn crash_makes_requests_time_out() {
        let config = KvsConfig {
            client_timeout: Duration::from_millis(100),
            ..KvsConfig::default()
        };
        let server =
            KvsServer::start(config, RealClock::shared(), SimDisk::for_tests(), None).unwrap();
        let client = server.client();
        client.set("k", "v").unwrap();
        server.crash();
        // Give workers a moment to observe the flag and exit.
        std::thread::sleep(Duration::from_millis(50));
        let err = client.set("k", "v2");
        assert!(err.is_err(), "crashed server still served a request");
    }

    #[test]
    fn leak_toggle_grows_memory() {
        let server = KvsServer::for_tests();
        let client = server.client();
        let before = server.monitor().memory_bytes();
        server.toggles().set("kvs.listener.leak", true);
        for i in 0..50 {
            client.set(&format!("k{i}"), "v").unwrap();
        }
        let after = server.monitor().memory_bytes();
        assert!(
            after >= before + 50 * LEAK_BYTES,
            "leak toggle had no effect: {before} -> {after}"
        );
    }

    #[test]
    fn corruption_toggle_breaks_read_back() {
        let server = KvsServer::for_tests();
        let client = server.client();
        server.toggles().set("kvs.indexer.corrupt", true);
        client.set("key", "value").unwrap();
        let got = client.get("key").unwrap().unwrap();
        assert_ne!(got, "value");
    }

    #[test]
    fn hooks_publish_listener_context() {
        let server = KvsServer::for_tests();
        let client = server.client();
        client.set("hello", "world").unwrap();
        let ctx = server.context();
        wait_for(|| ctx.is_ready("listener_loop"), "listener context");
        let snap = ctx.read("listener_loop").unwrap();
        assert_eq!(snap.get("probe_key").unwrap().as_str(), Some("hello"));
        assert_eq!(snap.get("probe_val").unwrap().as_str(), Some("world"));
    }

    #[test]
    fn recovery_restores_index_after_crash() {
        let disk = SimDisk::for_tests();
        {
            let mut server = KvsServer::start(
                KvsConfig::default(),
                RealClock::shared(),
                Arc::clone(&disk),
                None,
            )
            .unwrap();
            let client = server.client();
            for i in 0..20 {
                client
                    .set(&format!("key-{i}"), &format!("val-{i}"))
                    .unwrap();
            }
            wait_for(|| server.stats().wal_records >= 20, "wal records");
            server.stop();
        }
        disk.crash();
        let server = KvsServer::start(
            KvsConfig::default(),
            RealClock::shared(),
            Arc::clone(&disk),
            None,
        )
        .unwrap();
        let client = server.client();
        for i in 0..20 {
            assert_eq!(
                client.get(&format!("key-{i}")).unwrap(),
                Some(format!("val-{i}")),
                "key-{i} lost across crash"
            );
        }
    }
}
