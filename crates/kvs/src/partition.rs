//! The partition manager: the registry of live SSTables.
//!
//! The paper's §3.3 names two checks over partitions: checksum validation
//! (worth a watchdog checker, because partitions "may be corrupted in
//! production due to either hardware problems or unexpected code bugs") and
//! key-range ordering (logically deterministic — unit-test material, which
//! [`PartitionManager::ordering_violations`] makes testable). Both live
//! here.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use simio::disk::SimDisk;

use wdog_base::error::BaseResult;

use crate::sstable::{validate_sstable, SstMeta};

/// Tracks the set of live SSTables in creation order.
pub struct PartitionManager {
    disk: Arc<SimDisk>,
    tables: Mutex<Vec<SstMeta>>,
    next_id: AtomicU64,
}

impl PartitionManager {
    /// Creates an empty manager over `disk`.
    pub fn new(disk: Arc<SimDisk>) -> Self {
        Self {
            disk,
            tables: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(0),
        }
    }

    /// Reserves the path for the next SSTable.
    pub fn next_path(&self) -> String {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        format!("sst/{id:08}")
    }

    /// Registers a freshly written table.
    pub fn register(&self, meta: SstMeta) {
        self.tables.lock().push(meta);
    }

    /// Ensures future [`PartitionManager::next_path`] ids exceed `id`.
    ///
    /// Used by recovery so fresh tables never collide with files found on
    /// disk.
    pub fn ensure_next_id_above(&self, id: u64) {
        self.next_id.fetch_max(id + 1, Ordering::Relaxed);
    }

    /// Returns metadata for all live tables, oldest first.
    pub fn tables(&self) -> Vec<SstMeta> {
        self.tables.lock().clone()
    }

    /// Returns the number of live tables.
    pub fn table_count(&self) -> usize {
        self.tables.lock().len()
    }

    /// Atomically replaces `old_paths` with `replacement` in the registry
    /// and removes the old files from disk. Used by compaction.
    pub fn replace(&self, old_paths: &[String], replacement: SstMeta) -> BaseResult<()> {
        {
            let mut tables = self.tables.lock();
            tables.retain(|t| !old_paths.contains(&t.path));
            tables.push(replacement);
            tables.sort_by(|a, b| a.path.cmp(&b.path));
        }
        for p in old_paths {
            self.disk.remove(p)?;
        }
        Ok(())
    }

    /// Validates the checksum of every live table; returns the first error.
    ///
    /// This is the paper's "checker that computes and validates the checksum
    /// of each partition".
    pub fn validate_all(&self) -> BaseResult<()> {
        let tables = self.tables();
        for t in &tables {
            validate_sstable(&self.disk, &t.path)?;
        }
        Ok(())
    }

    /// Returns key-range ordering violations between adjacent tables — the
    /// logically deterministic invariant the paper assigns to unit testing
    /// rather than to watchdog checking.
    pub fn ordering_violations(&self) -> Vec<String> {
        let tables = self.tables();
        let mut out = Vec::new();
        for t in &tables {
            if t.entries > 0 && t.min_key > t.max_key {
                out.push(format!("{}: min {} > max {}", t.path, t.min_key, t.max_key));
            }
        }
        out
    }
}

impl std::fmt::Debug for PartitionManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartitionManager")
            .field("tables", &self.table_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sstable::write_sstable;

    fn entries(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn next_path_is_monotone() {
        let pm = PartitionManager::new(SimDisk::for_tests());
        let a = pm.next_path();
        let b = pm.next_path();
        assert!(a < b);
        assert!(a.starts_with("sst/"));
    }

    #[test]
    fn register_and_list_in_order() {
        let disk = SimDisk::for_tests();
        let pm = PartitionManager::new(Arc::clone(&disk));
        for _ in 0..3 {
            let p = pm.next_path();
            let meta = write_sstable(&disk, &p, &entries(&[("a", "1")])).unwrap();
            pm.register(meta);
        }
        assert_eq!(pm.table_count(), 3);
        let paths: Vec<String> = pm.tables().iter().map(|t| t.path.clone()).collect();
        assert!(paths.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn replace_swaps_registry_and_deletes_files() {
        let disk = SimDisk::for_tests();
        let pm = PartitionManager::new(Arc::clone(&disk));
        let p1 = pm.next_path();
        let p2 = pm.next_path();
        pm.register(write_sstable(&disk, &p1, &entries(&[("a", "1")])).unwrap());
        pm.register(write_sstable(&disk, &p2, &entries(&[("b", "2")])).unwrap());
        let merged_path = pm.next_path();
        let merged =
            write_sstable(&disk, &merged_path, &entries(&[("a", "1"), ("b", "2")])).unwrap();
        pm.replace(&[p1.clone(), p2.clone()], merged).unwrap();
        assert_eq!(pm.table_count(), 1);
        assert!(!disk.exists(&p1));
        assert!(!disk.exists(&p2));
        assert!(disk.exists(&merged_path));
    }

    #[test]
    fn validate_all_passes_on_clean_tables() {
        let disk = SimDisk::for_tests();
        let pm = PartitionManager::new(Arc::clone(&disk));
        let p = pm.next_path();
        pm.register(write_sstable(&disk, &p, &entries(&[("a", "1")])).unwrap());
        pm.validate_all().unwrap();
    }

    #[test]
    fn validate_all_catches_bit_rot() {
        let disk = SimDisk::for_tests();
        let pm = PartitionManager::new(Arc::clone(&disk));
        let p = pm.next_path();
        pm.register(write_sstable(&disk, &p, &entries(&[("a", "1")])).unwrap());
        // Corrupt the stored file directly.
        let mut raw = disk.read(&p).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0xFF;
        disk.write_all(&p, &raw).unwrap();
        assert!(pm.validate_all().is_err());
    }

    #[test]
    fn no_ordering_violations_on_valid_tables() {
        let disk = SimDisk::for_tests();
        let pm = PartitionManager::new(Arc::clone(&disk));
        let p = pm.next_path();
        pm.register(write_sstable(&disk, &p, &entries(&[("a", "1"), ("z", "2")])).unwrap());
        assert!(pm.ordering_violations().is_empty());
    }

    #[test]
    fn ordering_violation_detected_on_bad_metadata() {
        let disk = SimDisk::for_tests();
        let pm = PartitionManager::new(Arc::clone(&disk));
        pm.register(SstMeta {
            path: "sst/bad".into(),
            entries: 2,
            min_key: "z".into(),
            max_key: "a".into(),
            checksum: 0,
            bytes: 0,
        });
        assert_eq!(pm.ordering_violations().len(), 1);
    }
}
