//! The kvs client API: request and response types and their wire encoding.

use serde::{Deserialize, Serialize};

use wdog_base::error::{BaseError, BaseResult};

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Request {
    /// Read the value of a key.
    Get {
        /// Key to read.
        key: String,
    },
    /// Set a key to a value.
    Set {
        /// Key to write.
        key: String,
        /// Value to store.
        value: String,
    },
    /// Append to a key's value (creates the key if absent).
    Append {
        /// Key to append to.
        key: String,
        /// Suffix to append.
        value: String,
    },
    /// Delete a key.
    Del {
        /// Key to delete.
        key: String,
    },
}

impl Request {
    /// Returns the key this request touches.
    pub fn key(&self) -> &str {
        match self {
            Request::Get { key }
            | Request::Set { key, .. }
            | Request::Append { key, .. }
            | Request::Del { key } => key,
        }
    }

    /// Returns `true` if the request mutates state.
    pub fn is_write(&self) -> bool {
        !matches!(self, Request::Get { .. })
    }

    /// Encodes the request for the WAL and the replication stream.
    pub fn encode(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("request serialization is infallible")
    }

    /// Decodes a request from its wire form.
    pub fn decode(bytes: &[u8]) -> BaseResult<Self> {
        serde_json::from_slice(bytes)
            .map_err(|e| BaseError::Corruption(format!("undecodable request: {e}")))
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Response {
    /// Value of a `Get` (`None` if the key is absent).
    Value(Option<String>),
    /// A write was applied.
    Ok,
    /// The request failed.
    Error(String),
}

impl Response {
    /// Returns `true` unless this is an error response.
    pub fn is_ok(&self) -> bool {
        !matches!(self, Response::Error(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_extracted_from_all_variants() {
        assert_eq!(Request::Get { key: "a".into() }.key(), "a");
        assert_eq!(
            Request::Set {
                key: "b".into(),
                value: "v".into()
            }
            .key(),
            "b"
        );
        assert_eq!(
            Request::Append {
                key: "c".into(),
                value: "v".into()
            }
            .key(),
            "c"
        );
        assert_eq!(Request::Del { key: "d".into() }.key(), "d");
    }

    #[test]
    fn write_classification() {
        assert!(!Request::Get { key: "a".into() }.is_write());
        assert!(Request::Del { key: "a".into() }.is_write());
        assert!(Request::Set {
            key: "a".into(),
            value: "v".into()
        }
        .is_write());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let r = Request::Append {
            key: "k".into(),
            value: "suffix".into(),
        };
        assert_eq!(Request::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn garbage_decodes_to_corruption_error() {
        assert!(matches!(
            Request::decode(b"\xFF\xFEnot json"),
            Err(BaseError::Corruption(_))
        ));
    }

    #[test]
    fn response_ok_classification() {
        assert!(Response::Ok.is_ok());
        assert!(Response::Value(None).is_ok());
        assert!(!Response::Error("x".into()).is_ok());
    }
}
