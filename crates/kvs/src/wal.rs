//! The checksummed write-ahead log.
//!
//! Records are framed as `[len: u32 LE][crc32: u32 LE][payload]` and
//! appended to a single log file, fsynced per record. Replay validates every
//! checksum and stops at the first torn record (a crash mid-append), so
//! recovery after [`simio::SimDisk::crash`] yields exactly the durable
//! prefix.

use std::sync::Arc;

use simio::disk::SimDisk;

use wdog_base::checksum::crc32;
use wdog_base::error::{BaseError, BaseResult};

/// Frame header size: length + checksum.
const HEADER: usize = 8;

/// An append-only checksummed log over one [`SimDisk`] file.
pub struct Wal {
    disk: Arc<SimDisk>,
    path: String,
    appended_bytes: u64,
}

impl Wal {
    /// Opens (creating if needed) the log at `path`.
    pub fn new(disk: Arc<SimDisk>, path: impl Into<String>) -> Self {
        Self {
            disk,
            path: path.into(),
            appended_bytes: 0,
        }
    }

    /// Returns the log's path on the disk.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Returns bytes appended since the last [`Wal::truncate`].
    pub fn appended_bytes(&self) -> u64 {
        self.appended_bytes
    }

    /// Appends one record and makes it durable.
    // wdog: resource wal/
    pub fn append_record(&mut self, payload: &[u8]) -> BaseResult<()> {
        let mut frame = Vec::with_capacity(HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.disk.append(&self.path, &frame)?;
        self.disk.fsync(&self.path)?;
        self.appended_bytes += frame.len() as u64;
        Ok(())
    }

    /// Replays all intact records from `path` on `disk`.
    ///
    /// Returns the decoded payloads. A truncated final record (torn write)
    /// ends replay silently; a checksum mismatch on a complete record is
    /// reported as [`BaseError::Corruption`]. A missing file replays empty.
    pub fn replay(disk: &SimDisk, path: &str) -> BaseResult<Vec<Vec<u8>>> {
        let data = match disk.read(path) {
            Ok(d) => d,
            Err(BaseError::NotFound(_)) => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut out = Vec::new();
        let mut off = 0usize;
        while off + HEADER <= data.len() {
            let len = u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as usize;
            let expected = u32::from_le_bytes(data[off + 4..off + 8].try_into().unwrap());
            let start = off + HEADER;
            if start + len > data.len() {
                break; // Torn final record: crash mid-append.
            }
            let payload = &data[start..start + len];
            if crc32(payload) != expected {
                return Err(BaseError::Corruption(format!(
                    "wal record at offset {off} fails checksum"
                )));
            }
            out.push(payload.to_vec());
            off = start + len;
        }
        Ok(out)
    }

    /// Resets the appended-bytes counter after the log file was rotated
    /// away (the file itself now lives under the rotation path).
    pub fn reset_appended(&mut self) {
        self.appended_bytes = 0;
    }

    /// Discards the log contents after a successful flush.
    // wdog: resource wal/
    pub fn truncate(&mut self) -> BaseResult<()> {
        self.disk.write_all(&self.path, &[])?;
        self.disk.fsync(&self.path)?;
        self.appended_bytes = 0;
        Ok(())
    }
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("appended_bytes", &self.appended_bytes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_replay_roundtrip() {
        let disk = SimDisk::for_tests();
        let mut wal = Wal::new(Arc::clone(&disk), "wal/current");
        wal.append_record(b"one").unwrap();
        wal.append_record(b"two").unwrap();
        let records = Wal::replay(&disk, "wal/current").unwrap();
        assert_eq!(records, vec![b"one".to_vec(), b"two".to_vec()]);
    }

    #[test]
    fn replay_of_missing_file_is_empty() {
        let disk = SimDisk::for_tests();
        assert!(Wal::replay(&disk, "wal/none").unwrap().is_empty());
    }

    #[test]
    fn crash_preserves_synced_records() {
        let disk = SimDisk::for_tests();
        let mut wal = Wal::new(Arc::clone(&disk), "wal/current");
        wal.append_record(b"durable").unwrap();
        // A torn append: raw frame bytes without the trailing fsync.
        disk.append("wal/current", &[5, 0, 0, 0]).unwrap();
        disk.crash();
        let records = Wal::replay(&disk, "wal/current").unwrap();
        assert_eq!(records, vec![b"durable".to_vec()]);
    }

    #[test]
    fn torn_final_record_ends_replay() {
        let disk = SimDisk::for_tests();
        let mut wal = Wal::new(Arc::clone(&disk), "wal/current");
        wal.append_record(b"good").unwrap();
        // Header claims 100 bytes but only 3 follow.
        let mut torn = Vec::new();
        torn.extend_from_slice(&100u32.to_le_bytes());
        torn.extend_from_slice(&0u32.to_le_bytes());
        torn.extend_from_slice(b"abc");
        disk.append("wal/current", &torn).unwrap();
        let records = Wal::replay(&disk, "wal/current").unwrap();
        assert_eq!(records, vec![b"good".to_vec()]);
    }

    #[test]
    fn corrupted_record_detected() {
        let disk = SimDisk::for_tests();
        let mut wal = Wal::new(Arc::clone(&disk), "wal/current");
        wal.append_record(b"record-payload").unwrap();
        // Flip a payload byte in place.
        let mut raw = disk.read("wal/current").unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0xFF;
        disk.write_all("wal/current", &raw).unwrap();
        assert!(matches!(
            Wal::replay(&disk, "wal/current"),
            Err(BaseError::Corruption(_))
        ));
    }

    #[test]
    fn truncate_resets_log() {
        let disk = SimDisk::for_tests();
        let mut wal = Wal::new(Arc::clone(&disk), "wal/current");
        wal.append_record(b"x").unwrap();
        assert!(wal.appended_bytes() > 0);
        wal.truncate().unwrap();
        assert_eq!(wal.appended_bytes(), 0);
        assert!(Wal::replay(&disk, "wal/current").unwrap().is_empty());
    }

    #[test]
    fn empty_payload_roundtrips() {
        let disk = SimDisk::for_tests();
        let mut wal = Wal::new(Arc::clone(&disk), "wal/current");
        wal.append_record(b"").unwrap();
        let records = Wal::replay(&disk, "wal/current").unwrap();
        assert_eq!(records, vec![Vec::<u8>::new()]);
    }
}
