//! Watchdog integration for kvs.
//!
//! This module is the glue AutoWatchdog needs around a target system:
//!
//! - [`describe_ir`] — the program self-description consumed by program
//!   logic reduction (the substitution for bytecode analysis; see
//!   `DESIGN.md`);
//! - [`op_table`] — implementations of every vulnerable IR operation,
//!   executing *real* kvs operations under watchdog isolation: probe files
//!   live in the same volume as real data (`wal/__wd_probe`) so substrate
//!   faults strike them identically, probe keys live in the `__wd:`
//!   namespace, probe replication frames are tagged so replicas skip them,
//!   and the compaction-lock op try-locks the *same* mutex the real
//!   compactor holds;
//! - [`probe_checkers`] / [`signal_checkers`] — the hand-written Table 2
//!   complements to the generated mimic checkers;
//! - [`build_watchdog`] — one call assembling the full in-process watchdog;
//! - [`op_table_unsynced`] / [`publish_assumed_contexts`] — the E6 ablation
//!   reproducing §3.1's spurious-report example (checkers running with
//!   pre-supplied state instead of synchronized contexts).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use wdog_base::clock::SharedClock;
use wdog_base::error::{BaseError, BaseResult};

use wdog_checkers::probe::ProbeChecker;
use wdog_checkers::signal::{
    DiskSpaceChecker, MemoryWatermarkChecker, QueueDepthChecker, SleepDriftChecker,
};
use wdog_core::prelude::*;

use wdog_gen::interp::{instantiate, InstantiateOptions, OpTable};
use wdog_gen::ir::{ArgType, OpKind, ProgramBuilder, ProgramIr};
use wdog_gen::plan::{generate_plan, WatchdogPlan};
use wdog_gen::reduce::ReductionConfig;

use crate::replication::WD_PROBE_PREFIX;
use crate::server::KvsServer;
use crate::sstable::validate_sstable;

/// Probe file sharing the WAL volume (so WAL-scoped faults strike it).
pub const WAL_PROBE_PATH: &str = "wal/__wd_probe";
/// Probe file sharing the SSTable volume.
pub const SST_PROBE_PATH: &str = "sst/__wd_probe";
/// Probe keys live under this index namespace.
pub const KEY_PROBE_PREFIX: &str = "__wd:";
/// Probe files are reset once they grow past this.
const PROBE_FILE_CAP: usize = 64 * 1024;

/// Tunables for the assembled kvs watchdog.
///
/// The shared [`wdog_target::WdOptions`] type's defaults are kvs's
/// historical tuning, so the re-export is an exact replacement for the old
/// per-target struct; family toggles moved into [`Families`].
pub use wdog_target::{Families, WdOptions};

/// Builds kvs's IR: every component of Figure 1 as functions, call edges,
/// and operations, with the five continuously-executing entry points marked.
pub fn describe_ir() -> ProgramIr {
    ProgramBuilder::new("kvs")
        // Request path.
        .function("listener_loop", |f| {
            f.long_running().call_in_loop("handle_request")
        })
        .function("handle_request", |f| {
            f.compute("decode_request")
                .op("index_put", OpKind::Compute, |o| {
                    // The indexer write is a developer-annotated vulnerable
                    // op: logically it cannot fail, but production state
                    // corruption says otherwise (§3.3).
                    o.annotate_vulnerable()
                        .resource("index")
                        .arg("probe_key", ArgType::Str)
                        .arg("probe_val", ArgType::Str)
                })
                .compute("enqueue_wal")
                .compute("enqueue_replication")
        })
        // Durability path.
        .function("wal_loop", |f| {
            f.long_running().call_in_loop("wal_write_record")
        })
        .function("wal_write_record", |f| {
            // The WAL mutex guards every append; the flusher takes the same
            // lock when rotating the log, so a wedged holder stalls both.
            f.op("wal_lock", OpKind::LockAcquire, |o| o.resource("wal"))
                .op("wal_append", OpKind::DiskWrite, |o| {
                    o.resource("wal/").in_loop().arg("payload", ArgType::Bytes)
                })
                .op("wal_sync", OpKind::DiskSync, |o| o.resource("wal/"))
        })
        // Flush path.
        .function("flusher_loop", |f| {
            f.long_running().call_in_loop("flush_once")
        })
        .function("flush_once", |f| {
            f.compute("snapshot_index")
                .op("sst_write", OpKind::DiskWrite, |o| {
                    o.resource("sst/").arg("sst_payload", ArgType::Bytes)
                })
                .op("sst_sync", OpKind::DiskSync, |o| o.resource("sst/"))
                .compute("truncate_wal")
        })
        // Compaction path.
        .function("compaction_loop", |f| {
            f.long_running().call_in_loop("compact_once")
        })
        .function("compact_once", |f| {
            f.op("compaction_lock", OpKind::LockAcquire, |o| {
                o.resource("compaction_lock")
            })
            .op("sst_read", OpKind::DiskRead, |o| {
                o.resource("sst/").in_loop().arg("sst_path", ArgType::Str)
            })
            .compute("merge_entries")
            .op("sst_merge_write", OpKind::DiskWrite, |o| o.resource("sst/"))
            .simple_op("compaction_unlock", OpKind::LockRelease)
        })
        // Replication path.
        .function("replication_loop", |f| {
            f.long_running().call_in_loop("replicate_op")
        })
        .function("replicate_op", |f| {
            f.op("repl_send", OpKind::NetSend, |o| {
                o.resource("replica")
                    .in_loop()
                    .arg("op_payload", ArgType::Bytes)
            })
        })
        // Initialization (excluded from checking by region extraction).
        .function("startup_recover", |f| {
            f.init_only()
                .op("read_sstables", OpKind::DiskRead, |o| o.resource("sst/"))
                .op("read_wal", OpKind::DiskRead, |o| o.resource("wal/"))
                .compute("rebuild_index")
        })
        .build()
}

/// Runs the AutoWatchdog pipeline over kvs's IR.
pub fn generate_kvs_plan(config: &ReductionConfig) -> WatchdogPlan {
    generate_plan(&describe_ir(), config)
}

/// Documented exceptions to the `wdog-lint` drift gate. Empty: the kvs
/// description fully accounts for what extraction sees.
pub fn drift_allowlist() -> Vec<wdog_gen::AllowEntry> {
    Vec::new()
}

fn probe_write(disk: &simio::disk::SimDisk, path: &str, payload: &[u8]) -> BaseResult<()> {
    // Reset the probe file when it grows, keeping watchdog I/O bounded.
    if disk.len(path).map(|l| l > PROBE_FILE_CAP).unwrap_or(false) {
        disk.write_all(path, &[])?;
    }
    disk.append(path, payload)
}

/// Builds the op table binding every vulnerable kvs IR op to a real,
/// isolated implementation.
pub fn op_table(server: &KvsServer) -> OpTable {
    let shared = Arc::clone(server.shared());
    let mut table = OpTable::new();

    // handle_request#index_put: insert a probe key, read it back, compare.
    {
        let s = Arc::clone(&shared);
        let counter = AtomicU64::new(0);
        table.register("handle_request#index_put", move |snap| {
            let val = snap
                .get("probe_val")
                .and_then(|v| v.as_str())
                .unwrap_or("probe-value");
            let n = counter.fetch_add(1, Ordering::Relaxed);
            let key = format!("{KEY_PROBE_PREFIX}put:{}", n % 8);
            s.index.put(&key, val);
            let got = s.index.get(&key);
            if got.as_deref() != Some(val) {
                return Err(BaseError::Corruption(format!(
                    "index put/get mismatch: wrote {:?}, read {:?}",
                    val, got
                )));
            }
            s.index.remove(&key);
            Ok(())
        });
    }

    // wal_write_record#wal_append: append the live payload to the probe
    // file on the SAME volume, so WAL-scoped faults strike it.
    {
        let s = Arc::clone(&shared);
        table.register("wal_write_record#wal_append", move |snap| {
            let payload = snap
                .get("payload")
                .and_then(|v| v.as_bytes())
                .unwrap_or(b"probe");
            probe_write(&s.disk, WAL_PROBE_PATH, payload)
        });
    }
    {
        let s = Arc::clone(&shared);
        table.register("wal_write_record#wal_sync", move |_snap| {
            if !s.disk.exists(WAL_PROBE_PATH) {
                s.disk.append(WAL_PROBE_PATH, b"")?;
            }
            s.disk.fsync(WAL_PROBE_PATH)
        });
    }

    // wal_write_record#wal_lock: try the real WAL mutex with a bounded
    // wait. A writer wedged mid-append holds it — fate sharing.
    {
        let s = Arc::clone(&shared);
        table.register("wal_write_record#wal_lock", move |_snap| {
            match s.wal.try_lock_for(Duration::from_millis(500)) {
                Some(_guard) => Ok(()),
                None => Err(BaseError::Timeout {
                    what: "wal lock acquisition".into(),
                    after_ms: 500,
                }),
            }
        });
    }

    // flush_once#sst_write: write a checksummed probe table with the live
    // payload sample, then read it back and validate — catching silent
    // write corruption on the sst volume.
    {
        let s = Arc::clone(&shared);
        table.register("flush_once#sst_write", move |snap| {
            let payload = snap
                .get("sst_payload")
                .and_then(|v| v.as_bytes())
                .unwrap_or(b"probe");
            let sum = wdog_base::checksum::crc32(payload);
            let mut file = Vec::with_capacity(4 + payload.len());
            file.extend_from_slice(&sum.to_le_bytes());
            file.extend_from_slice(payload);
            s.disk.write_all(SST_PROBE_PATH, &file)?;
            validate_sstable(&s.disk, SST_PROBE_PATH)
        });
    }
    {
        let s = Arc::clone(&shared);
        table.register("flush_once#sst_sync", move |_snap| {
            if !s.disk.exists(SST_PROBE_PATH) {
                s.disk.append(SST_PROBE_PATH, &0u32.to_le_bytes())?;
            }
            s.disk.fsync(SST_PROBE_PATH)
        });
    }

    // compact_once#compaction_lock: try the real lock with a bounded wait.
    // A wedged compactor holds it, so this times out — fate sharing.
    {
        let s = Arc::clone(&shared);
        table.register("compact_once#compaction_lock", move |_snap| {
            match s.compaction_lock.try_lock_for(Duration::from_millis(500)) {
                Some(_guard) => Ok(()),
                None => Err(BaseError::Timeout {
                    what: "compaction lock acquisition".into(),
                    after_ms: 500,
                }),
            }
        });
    }

    // compact_once#sst_read: validate the checksums of every live table —
    // the paper's "checker that computes and validates the checksum of
    // each partition".
    {
        let s = Arc::clone(&shared);
        table.register("compact_once#sst_read", move |_snap| {
            s.partitions.validate_all()
        });
    }

    // compact_once#sst_merge_write: a checksummed write probe with
    // read-back validation, catching silent write corruption on the
    // SSTable volume the moment it starts.
    {
        let s = Arc::clone(&shared);
        table.register("compact_once#sst_merge_write", move |snap| {
            let payload = snap
                .get("sst_path")
                .and_then(|v| v.as_str())
                .map(|p| p.as_bytes().to_vec())
                .unwrap_or_else(|| b"merge-probe".to_vec());
            let sum = wdog_base::checksum::crc32(&payload);
            let mut file = Vec::with_capacity(4 + payload.len());
            file.extend_from_slice(&sum.to_le_bytes());
            file.extend_from_slice(&payload);
            s.disk.write_all(SST_PROBE_PATH, &file)?;
            validate_sstable(&s.disk, SST_PROBE_PATH)
        });
    }

    // replicate_op#repl_send: send a tagged probe frame on the real link.
    {
        let s = Arc::clone(&shared);
        table.register("replicate_op#repl_send", move |snap| {
            let (Some(repl), Some(net)) = (s.config.replication.clone(), s.net.clone()) else {
                return Ok(()); // Replication disabled; nothing to mimic.
            };
            let payload = snap
                .get("op_payload")
                .and_then(|v| v.as_bytes())
                .unwrap_or(b"probe");
            let mut frame = WD_PROBE_PREFIX.to_vec();
            frame.extend_from_slice(payload);
            net.send(&repl.src_addr, &repl.dst_addr, bytes::Bytes::from(frame))
        });
    }

    table
}

/// The paper's probe checkers: special clients exercising the public API.
pub fn probe_checkers(server: &KvsServer, opts: &WdOptions) -> Vec<Box<dyn Checker>> {
    let clock: SharedClock = Arc::clone(&server.shared().clock);
    let mut v: Vec<Box<dyn Checker>> = Vec::new();

    // SET-then-GET with a pre-supplied key: perfect accuracy, API level.
    {
        let client = server.client();
        let n = AtomicU64::new(0);
        v.push(Box::new(
            ProbeChecker::new(
                "kvs.probe.set_get",
                "kvs.api",
                "set_get",
                Arc::clone(&clock),
                move || -> BaseResult<()> {
                    let i = n.fetch_add(1, Ordering::Relaxed);
                    let key = format!("{KEY_PROBE_PREFIX}probe:{}", i % 4);
                    let val = format!("probe-{i}");
                    client.set(&key, &val)?;
                    let got = client.get(&key)?;
                    if got.as_deref() != Some(val.as_str()) {
                        return Err(BaseError::Corruption(format!(
                            "probe read back {:?}, expected {:?}",
                            got, val
                        )));
                    }
                    Ok(())
                },
            )
            .with_slow_threshold(opts.probe_slow_threshold)
            .with_timeout(opts.checker_timeout),
        ));
    }

    // DEL contract: delete then read must observe absence.
    {
        let client = server.client();
        v.push(Box::new(
            ProbeChecker::new(
                "kvs.probe.del",
                "kvs.api",
                "del",
                Arc::clone(&clock),
                move || -> BaseResult<()> {
                    let key = format!("{KEY_PROBE_PREFIX}probe:del");
                    client.set(&key, "x")?;
                    client.del(&key)?;
                    if client.get(&key)?.is_some() {
                        return Err(BaseError::Corruption(
                            "deleted probe key still readable".into(),
                        ));
                    }
                    Ok(())
                },
            )
            .with_slow_threshold(opts.probe_slow_threshold)
            .with_timeout(opts.checker_timeout),
        ));
    }

    // APPEND contract.
    {
        let client = server.client();
        v.push(Box::new(
            ProbeChecker::new(
                "kvs.probe.append",
                "kvs.api",
                "append",
                clock,
                move || -> BaseResult<()> {
                    let key = format!("{KEY_PROBE_PREFIX}probe:app");
                    client.set(&key, "a")?;
                    client.append(&key, "b")?;
                    let got = client.get(&key)?;
                    if got.as_deref() != Some("ab") {
                        return Err(BaseError::Corruption(format!(
                            "append probe read back {:?}",
                            got
                        )));
                    }
                    client.del(&key)?;
                    Ok(())
                },
            )
            .with_slow_threshold(opts.probe_slow_threshold)
            .with_timeout(opts.checker_timeout),
        ));
    }

    v
}

/// The paper's signal checkers: health-indicator monitors.
pub fn signal_checkers(server: &KvsServer, opts: &WdOptions) -> Vec<Box<dyn Checker>> {
    let monitor = server.monitor();
    let clock: SharedClock = Arc::clone(&server.shared().clock);
    let mut v: Vec<Box<dyn Checker>> = vec![
        Box::new(MemoryWatermarkChecker::new(
            "kvs.signal.memory",
            "kvs",
            monitor.clone(),
            opts.memory_watermark,
        )),
        Box::new(QueueDepthChecker::new(
            "kvs.signal.request_queue",
            "kvs.listener",
            monitor.clone(),
            "requests",
            opts.queue_threshold,
        )),
        Box::new(QueueDepthChecker::new(
            "kvs.signal.wal_queue",
            "kvs.flusher",
            monitor.clone(),
            "wal",
            opts.queue_threshold,
        )),
        Box::new(SleepDriftChecker::new(
            "kvs.signal.sleep_drift",
            "kvs",
            Arc::clone(&clock),
            server.stall(),
            Duration::from_millis(10),
            Duration::from_millis(500),
        )),
        Box::new(DiskSpaceChecker::new(
            "kvs.signal.disk_space",
            "kvs",
            server.disk(),
            0.9,
        )),
    ];
    if server.config().replication.is_some() {
        v.push(Box::new(QueueDepthChecker::new(
            "kvs.signal.repl_queue",
            "kvs.replication",
            monitor,
            "replication",
            opts.queue_threshold,
        )));
    }
    v
}

/// Assembles the complete in-process watchdog for a running server.
///
/// Returns the driver (not yet started) and the generation plan, so callers
/// can inspect what AutoWatchdog produced before calling
/// [`WatchdogDriver::start`].
pub fn build_watchdog(
    server: &KvsServer,
    opts: &WdOptions,
) -> BaseResult<(WatchdogDriver, WatchdogPlan)> {
    let clock: SharedClock = Arc::clone(&server.shared().clock);
    let mut builder = WatchdogDriver::builder()
        .config(WatchdogConfig {
            policy: SchedulePolicy::every(opts.interval),
            default_timeout: opts.checker_timeout,
            health_window: Duration::from_secs(30),
            spawn_order_seed: opts.spawn_order_seed,
        })
        .clock(Arc::clone(&clock));
    if let Some(registry) = &opts.telemetry {
        builder = builder.telemetry(Arc::clone(registry));
        server.hooks().attach_telemetry(Arc::clone(registry));
    }
    if let Some(trace) = &opts.trace {
        server.hooks().attach_trace(Arc::clone(trace));
    }
    for action in &opts.actions {
        builder = builder.action(Arc::clone(action));
    }

    let plan = generate_kvs_plan(&ReductionConfig::default());
    if opts.families.mimics {
        let table = op_table(server);
        let reader = server.context().reader();
        let mimics = instantiate(
            &plan,
            &table,
            &reader,
            &clock,
            &InstantiateOptions {
                timeout: Some(opts.checker_timeout),
                max_context_age: opts.max_context_age,
                slow_threshold: Some(opts.slow_threshold),
                trace: opts.trace.clone(),
            },
        )?;
        for c in mimics {
            builder = builder.checker(Box::new(c));
        }
    }
    if opts.families.probes {
        builder = builder.checkers(probe_checkers(server, opts));
    }
    if opts.families.signals {
        builder = builder.checkers(signal_checkers(server, opts));
    }
    builder = builder.checkers(wdog_target::inferred_checkers(
        opts,
        &server.context().reader(),
    ));
    Ok((builder.build()?, plan))
}

/// Builds the §5.2 cheap-recovery action: on a corruption report that
/// pinpoints the SSTable volume, rebuild the partitions from the in-memory
/// index instead of restarting the process.
///
/// Returns the action plus a counter of performed repairs.
pub fn sst_recovery_action(
    server: &KvsServer,
) -> (
    Arc<CallbackAction<impl Fn(&FailureReport) + Send + Sync>>,
    Arc<AtomicU64>,
) {
    let shared = Arc::clone(server.shared());
    let repairs = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&repairs);
    let action = Arc::new(CallbackAction::new(move |report: &FailureReport| {
        if report.kind != FailureKind::Corruption {
            return;
        }
        if !report.location.to_string().contains("sst") {
            return;
        }
        // Rebuild everything on the sst volume from the index.
        let _guard = shared.compaction_lock.lock();
        let old: Vec<String> = shared
            .partitions
            .tables()
            .into_iter()
            .map(|t| t.path)
            .collect();
        let entries = shared.index.snapshot();
        let path = shared.partitions.next_path();
        if let Ok(meta) = crate::sstable::write_sstable(&shared.disk, &path, &entries) {
            if shared.partitions.replace(&old, meta).is_ok() {
                counter.fetch_add(1, Ordering::Relaxed);
            }
        }
    }));
    (action, repairs)
}

/// E6 ablation: an op table that trusts pre-supplied context instead of
/// live lookups (the `sst_read` op reads exactly the path in its context).
pub fn op_table_unsynced(server: &KvsServer) -> OpTable {
    let mut table = op_table(server);
    let shared = Arc::clone(server.shared());
    table.register("compact_once#sst_read", move |snap| {
        let path = snap
            .get("sst_path")
            .and_then(|v| v.as_str())
            .unwrap_or("sst/00000000")
            .to_owned();
        validate_sstable(&shared.disk, &path)
    });
    table
}

/// E6 ablation: publish the *assumed* default contexts once, as a watchdog
/// without state synchronization would have been configured. On an
/// in-memory kvs this reproduces the paper's §3.1 spurious report: the disk
/// checker fires even though the main program never touches the disk.
pub fn publish_assumed_contexts(table: &Arc<ContextTable>) {
    table.publish(
        "listener_loop",
        vec![
            ("probe_key".into(), CtxValue::Str("assumed".into())),
            ("probe_val".into(), CtxValue::Str("assumed".into())),
        ],
    );
    table.publish(
        "wal_loop",
        vec![("payload".into(), CtxValue::Bytes(b"assumed".to_vec()))],
    );
    table.publish(
        "flusher_loop",
        vec![
            ("sst_payload".into(), CtxValue::Bytes(b"assumed".to_vec())),
            ("entry_count".into(), CtxValue::U64(0)),
        ],
    );
    table.publish(
        "compaction_loop",
        vec![
            ("sst_path".into(), CtxValue::Str("sst/00000000".into())),
            ("table_count".into(), CtxValue::U64(1)),
        ],
    );
    table.publish(
        "replication_loop",
        vec![("op_payload".into(), CtxValue::Bytes(b"assumed".to_vec()))],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KvsConfig;
    use simio::disk::SimDisk;
    use wdog_base::clock::RealClock;

    #[test]
    fn ir_is_well_formed() {
        let ir = describe_ir();
        assert!(ir.dangling_callees().is_empty());
        assert!(ir.functions.len() >= 10);
        let long_running = ir.functions.values().filter(|f| f.long_running).count();
        assert_eq!(long_running, 5, "five continuously-executing regions");
    }

    #[test]
    fn plan_generates_checker_per_active_region() {
        let plan = generate_kvs_plan(&ReductionConfig::default());
        assert_eq!(plan.checkers.len(), 5, "{:#?}", plan.checkers);
        // Initialization code must never be checked.
        for c in &plan.checkers {
            for op in &c.ops {
                assert_ne!(op.function, "startup_recover");
            }
        }
    }

    #[test]
    fn op_table_covers_every_planned_op() {
        let server = KvsServer::for_tests();
        let table = op_table(&server);
        let plan = generate_kvs_plan(&ReductionConfig::default());
        for c in &plan.checkers {
            for op in &c.ops {
                assert!(
                    table.get(op.op_id.as_str()).is_some(),
                    "missing op impl: {}",
                    op.op_id
                );
            }
        }
    }

    #[test]
    fn op_table_covers_no_dedup_ablation_too() {
        let server = KvsServer::for_tests();
        let table = op_table(&server);
        let plan = generate_kvs_plan(&ReductionConfig {
            dedupe_similar: false,
            global_reduction: false,
            ..ReductionConfig::default()
        });
        for c in &plan.checkers {
            for op in &c.ops {
                assert!(
                    table.get(op.op_id.as_str()).is_some(),
                    "missing op impl for ablation: {}",
                    op.op_id
                );
            }
        }
    }

    #[test]
    fn build_watchdog_assembles_all_families() {
        let server = KvsServer::for_tests();
        let (driver, plan) = build_watchdog(&server, &WdOptions::default()).unwrap();
        let ids = driver.checker_ids();
        assert!(ids.len() >= plan.checkers.len() + 3 + 5);
        assert!(ids.iter().any(|i| i.as_str().contains("probe")));
        assert!(ids.iter().any(|i| i.as_str().contains("signal")));
        assert!(ids.iter().any(|i| i.as_str().contains("_checker")));
    }

    #[test]
    fn trace_arming_journals_publishes_and_inferred_family_registers() {
        use wdog_checkers::{InferredPredicate, InferredSpec};
        let server = KvsServer::for_tests();
        let clock: SharedClock = Arc::clone(&server.shared().clock);
        let recorder = TraceRecorder::new(clock);
        let opts = WdOptions {
            trace: Some(Arc::clone(&recorder)),
            inferred: vec![InferredSpec {
                id: "kvs.inferred.staleness.wal_loop".into(),
                component: "kvs.wal_loop".into(),
                key: "wal_loop".into(),
                support: 8,
                predicate: InferredPredicate::Staleness {
                    max_gap_us: 60_000_000,
                },
            }],
            ..WdOptions::default()
        };
        let (driver, _) = build_watchdog(&server, &opts).unwrap();
        assert!(
            driver
                .checker_ids()
                .iter()
                .any(|i| i.as_str() == "kvs.inferred.staleness.wal_loop"),
            "inferred spec not registered: {:?}",
            driver.checker_ids()
        );
        assert!(server.hooks().trace_attached());
        let client = server.client();
        let start = std::time::Instant::now();
        while recorder.is_empty() && start.elapsed() < Duration::from_secs(5) {
            client.set("traced", "v").unwrap();
            std::thread::sleep(Duration::from_millis(5));
        }
        let events = recorder.drain();
        assert!(!events.is_empty(), "no publishes journaled");
        assert!(events.iter().all(|e| !e.key.is_empty()));
    }

    #[test]
    fn watchdog_runs_clean_on_healthy_server() {
        let server = KvsServer::for_tests();
        let client = server.client();
        let opts = WdOptions {
            interval: Duration::from_millis(50),
            ..WdOptions::default()
        };
        let (mut driver, _) = build_watchdog(&server, &opts).unwrap();
        driver.start().unwrap();
        for i in 0..50 {
            client.set(&format!("k{i}"), "v").unwrap();
        }
        let start = std::time::Instant::now();
        while start.elapsed() < Duration::from_secs(5) && driver.stats().passes < 20 {
            std::thread::sleep(Duration::from_millis(10));
        }
        driver.stop();
        assert!(
            driver.log().is_empty(),
            "false alarms on healthy server: {:#?}",
            driver.log().reports()
        );
        assert!(driver.stats().passes >= 20);
    }

    #[test]
    fn hook_sites_match_generated_hook_plan() {
        // Every context key the plan's hooks publish to must be one the
        // server actually fires.
        let plan = generate_kvs_plan(&ReductionConfig::default());
        let fired = [
            "listener_loop",
            "wal_loop",
            "flusher_loop",
            "compaction_loop",
            "replication_loop",
        ];
        for h in &plan.hooks {
            assert!(
                fired.contains(&h.context_key.as_str()),
                "plan hook targets unfired context {}",
                h.context_key
            );
        }
    }

    #[test]
    fn unsynced_contexts_cause_spurious_report_on_in_memory_kvs() {
        // The paper's §3.1 example, as an executable test.
        let server = KvsServer::start(
            KvsConfig::in_memory(),
            RealClock::shared(),
            SimDisk::for_tests(),
            None,
        )
        .unwrap();
        let plan = generate_kvs_plan(&ReductionConfig::default());
        let clock: SharedClock = RealClock::shared();

        // Properly synchronized: contexts never become ready, no reports.
        {
            let table = op_table(&server);
            let mut checkers = instantiate(
                &plan,
                &table,
                &server.context().reader(),
                &clock,
                &InstantiateOptions::default(),
            )
            .unwrap();
            for c in &mut checkers {
                assert_eq!(
                    c.check(),
                    CheckStatus::NotReady,
                    "synchronized checker ran without main-program state"
                );
            }
        }

        // Unsynced (assumed) contexts: the compaction checker validates a
        // snapshot file that was never created — a spurious failure.
        {
            let table = op_table_unsynced(&server);
            publish_assumed_contexts(&server.context());
            let mut checkers = instantiate(
                &plan,
                &table,
                &server.context().reader(),
                &clock,
                &InstantiateOptions::default(),
            )
            .unwrap();
            let spurious = checkers
                .iter_mut()
                .map(|c| c.check())
                .filter(|s| s.is_fail())
                .count();
            assert!(
                spurious >= 1,
                "expected at least one spurious report from assumed contexts"
            );
        }
    }
}
