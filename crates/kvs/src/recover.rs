//! The kvs recovery surface: component restarts, workload shedding, and
//! verification re-checks for the closed-loop recovery coordinator.
//!
//! This is the target-side half of the paper's §5.2 argument: because the
//! watchdog pinpoints *which* component failed, recovery can stay component
//! scoped — respawn the compactor, rebuild the corrupted partitions, free
//! the leaking request path — and every mitigation is verified by
//! re-dispatching a fresh check against the same real resources the blaming
//! checker used (the compaction lock, the WAL volume, the replication
//! link), so a "recovered" verdict means the fault is actually gone.

use std::sync::Arc;
use std::time::Duration;

use wdog_base::ids::ComponentId;

use wdog_core::prelude::*;

use wdog_target::{RecoverySurface, VerifierFactory};

use crate::replication::WD_PROBE_PREFIX;
use crate::server::KvsServer;
use crate::wd::{KEY_PROBE_PREFIX, WAL_PROBE_PATH};

/// Bounded wait when a verifier try-locks a real mutex.
const VERIFY_LOCK_WAIT: Duration = Duration::from_millis(300);

/// Memory level a restarted request path must be back under (matches the
/// default signal-checker watermark).
const VERIFY_MEMORY_BYTES: u64 = 64 * 1024 * 1024;

fn fail(kind: FailureKind, component: &ComponentId, detail: String) -> CheckStatus {
    CheckStatus::Fail(CheckFailure::new(
        kind,
        FaultLocation::new(component.clone(), "recovery_verify"),
        detail,
    ))
}

/// Builds the full [`RecoverySurface`] for a running server.
pub fn recovery_surface(server: &Arc<KvsServer>) -> RecoverySurface {
    struct KvsRestart(Arc<KvsServer>);
    impl Restartable for KvsRestart {
        fn restart(&self, component: &ComponentId) {
            self.0.restart_component(component.as_str());
        }
    }
    struct KvsDegrade(Arc<KvsServer>);
    impl Degradable for KvsDegrade {
        fn degrade(&self, component: &ComponentId) {
            self.0.degrade_component(component.as_str());
        }
    }
    RecoverySurface {
        restart: Arc::new(KvsRestart(Arc::clone(server))),
        degrade: Arc::new(KvsDegrade(Arc::clone(server))),
        verifier: verifier_factory(server),
    }
}

/// Builds verification re-checks per blamed component. Each verifier
/// exercises the same real resource the blaming checker watched, so it
/// fate-shares with a still-present fault (and the coordinator's verify
/// timeout bounds a wedged verifier).
pub fn verifier_factory(server: &Arc<KvsServer>) -> VerifierFactory {
    let server = Arc::clone(server);
    Arc::new(move |component: &ComponentId| {
        let c = component.as_str();
        let comp = component.clone();
        if c.contains("compact") {
            // The compaction mimic blames a held lock; recovered means the
            // real lock is takeable again.
            let s = Arc::clone(&server);
            Some(Box::new(FnChecker::new(
                "kvs.verify.compaction",
                comp.clone(),
                move || match s.shared().compaction_lock.try_lock_for(VERIFY_LOCK_WAIT) {
                    Some(_guard) => CheckStatus::Pass,
                    None => fail(
                        FailureKind::Stuck,
                        &comp,
                        "compaction lock still held".into(),
                    ),
                },
            )) as Box<dyn Checker>)
        } else if c.contains("flush") || c.contains("wal") {
            // A probe write + sync on the WAL volume: wedges under a disk
            // fault exactly like the real flusher.
            let disk = server.disk();
            Some(Box::new(FnChecker::new(
                "kvs.verify.flusher",
                comp.clone(),
                move || {
                    let r = disk
                        .append(WAL_PROBE_PATH, b"rv")
                        .and_then(|()| disk.fsync(WAL_PROBE_PATH));
                    match r {
                        Ok(()) => CheckStatus::Pass,
                        Err(e) => fail(FailureKind::Error, &comp, format!("wal probe: {e}")),
                    }
                },
            )) as Box<dyn Checker>)
        } else if c.contains("repl") {
            // A tagged probe frame on the real link; blocks while the link
            // is wedged, fails while it errors.
            let s = Arc::clone(&server);
            Some(Box::new(FnChecker::new(
                "kvs.verify.replication",
                comp.clone(),
                move || {
                    let (Some(repl), Some(net)) = (
                        s.shared().config.replication.clone(),
                        s.shared().net.clone(),
                    ) else {
                        return fail(FailureKind::Error, &comp, "replication disabled".into());
                    };
                    let mut frame = WD_PROBE_PREFIX.to_vec();
                    frame.extend_from_slice(b"recovery-verify");
                    match net.send(&repl.src_addr, &repl.dst_addr, bytes::Bytes::from(frame)) {
                        Ok(()) => CheckStatus::Pass,
                        Err(e) => fail(FailureKind::Error, &comp, format!("repl probe: {e}")),
                    }
                },
            )) as Box<dyn Checker>)
        } else if c.contains("index") || c.contains("sst") {
            // Recovered means the index round-trips values again AND every
            // live partition passes checksum validation.
            let s = Arc::clone(&server);
            Some(Box::new(FnChecker::new(
                "kvs.verify.index",
                comp.clone(),
                move || {
                    let shared = s.shared();
                    let key = format!("{KEY_PROBE_PREFIX}recover");
                    shared.index.put(&key, "rv");
                    let got = shared.index.get(&key);
                    shared.index.remove(&key);
                    if got.as_deref() != Some("rv") {
                        return fail(
                            FailureKind::Corruption,
                            &comp,
                            format!("index read back {got:?}"),
                        );
                    }
                    match shared.partitions.validate_all() {
                        Ok(()) => CheckStatus::Pass,
                        Err(e) => fail(FailureKind::Corruption, &comp, format!("partitions: {e}")),
                    }
                },
            )) as Box<dyn Checker>)
        } else if c.contains("api") || c.contains("listener") {
            // A full client round trip through the request path.
            let client = server.client();
            Some(
                Box::new(FnChecker::new("kvs.verify.api", comp.clone(), move || {
                    let key = format!("{KEY_PROBE_PREFIX}verify");
                    let r = client.set(&key, "rv").and_then(|()| client.get(&key));
                    match r {
                        Ok(Some(v)) if v == "rv" => CheckStatus::Pass,
                        Ok(got) => fail(
                            FailureKind::Corruption,
                            &comp,
                            format!("api read back {got:?}"),
                        ),
                        Err(e) => fail(FailureKind::Error, &comp, format!("api probe: {e}")),
                    }
                })) as Box<dyn Checker>,
            )
        } else if c == "kvs" || c.contains("memory") {
            // Process-level blame (memory watermark, sleep drift, disk
            // space): memory back under the watermark plus a live round
            // trip — wedged workers (runtime pause) fail the round trip.
            let s = Arc::clone(&server);
            let client = server.client();
            Some(Box::new(FnChecker::new(
                "kvs.verify.process",
                comp.clone(),
                move || {
                    let used = s.monitor().memory_bytes();
                    if used > VERIFY_MEMORY_BYTES {
                        return fail(
                            FailureKind::AssertViolation,
                            &comp,
                            format!("memory still at {used} B"),
                        );
                    }
                    let key = format!("{KEY_PROBE_PREFIX}verify");
                    match client.set(&key, "rv") {
                        Ok(()) => CheckStatus::Pass,
                        Err(e) => fail(FailureKind::Error, &comp, format!("round trip: {e}")),
                    }
                },
            )) as Box<dyn Checker>)
        } else {
            None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn wait_for(mut pred: impl FnMut() -> bool, what: &str) {
        let start = std::time::Instant::now();
        while start.elapsed() < Duration::from_secs(10) {
            if pred() {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("timed out waiting for {what}");
    }

    fn busy_server() -> Arc<KvsServer> {
        let config = crate::config::KvsConfig {
            flush_interval: Duration::from_millis(10),
            compaction_interval: Duration::from_millis(10),
            compaction_trigger: 3,
            ..crate::config::KvsConfig::default()
        };
        Arc::new(
            KvsServer::start(
                config,
                wdog_base::clock::RealClock::shared(),
                simio::disk::SimDisk::for_tests(),
                None,
            )
            .unwrap(),
        )
    }

    #[test]
    fn restart_unwedges_stuck_compaction_without_process_restart() {
        let server = busy_server();
        let client = server.client();
        server.toggles().set("kvs.compaction.stuck", true);
        for round in 0..10 {
            for i in 0..5 {
                client.set(&format!("k{round}-{i}"), "v").unwrap();
            }
            std::thread::sleep(Duration::from_millis(15));
        }
        wait_for(
            || server.shared().compaction_lock.try_lock().is_none(),
            "compaction to wedge inside the lock",
        );
        let before = server.stats().compactions;

        assert!(server.restart_component("kvs.compaction"));
        assert_eq!(server.supervision().compaction_restarts, 1);

        // The fresh generation compacts again; the process never restarted.
        for round in 0..10 {
            for i in 0..5 {
                client.set(&format!("r{round}-{i}"), "v").unwrap();
            }
            std::thread::sleep(Duration::from_millis(15));
        }
        wait_for(
            || server.stats().compactions > before,
            "fresh compaction generation to run",
        );
        assert!(server.is_running());

        // And the verifier agrees.
        let factory = verifier_factory(&server);
        let mut checker = factory(&ComponentId::new("kvs.compaction")).unwrap();
        wait_for(|| checker.check().is_pass(), "verifier to pass");
    }

    #[test]
    fn index_restart_repairs_corruption() {
        let server = busy_server();
        let client = server.client();
        for i in 0..20 {
            client.set(&format!("k{i}"), "v").unwrap();
        }
        wait_for(|| server.sstable_count() >= 1, "a flushed table");
        server.toggles().set("kvs.indexer.corrupt", true);

        assert!(server.restart_component("kvs.index"));
        assert_eq!(server.supervision().index_rebuilds, 1);
        assert!(
            !server.toggles().is_set("kvs.indexer.corrupt"),
            "restart must drop the corrupting state"
        );
        let factory = verifier_factory(&server);
        let mut checker = factory(&ComponentId::new("kvs.index")).unwrap();
        assert!(checker.check().is_pass());
    }

    #[test]
    fn memory_restart_releases_leak() {
        let server = busy_server();
        let client = server.client();
        server.toggles().set("kvs.listener.leak", true);
        for i in 0..50 {
            client.set(&format!("k{i}"), "v").unwrap();
        }
        assert!(server.monitor().memory_bytes() > 0);
        assert!(server.restart_component("kvs"));
        assert_eq!(server.monitor().memory_bytes(), 0);
        assert!(!server.toggles().is_set("kvs.listener.leak"));
    }

    #[test]
    fn flusher_restart_spawns_fresh_generation() {
        let server = busy_server();
        let client = server.client();
        assert!(server.restart_component("kvs.flusher"));
        assert_eq!(server.supervision().flusher_restarts, 1);
        let before = server.stats().flushes;
        for i in 0..20 {
            client.set(&format!("k{i}"), "v").unwrap();
        }
        wait_for(
            || server.stats().flushes > before,
            "fresh flusher generation to flush",
        );
    }

    #[test]
    fn degrade_sheds_component() {
        let server = busy_server();
        assert!(server.degrade_component("kvs.flusher"));
        assert_eq!(server.supervision().degraded, 1);
        // The rest of the server keeps serving.
        let client = server.client();
        client.set("k", "v").unwrap();
        assert_eq!(client.get("k").unwrap().as_deref(), Some("v"));
    }

    #[test]
    fn unknown_component_has_no_verifier_or_restart() {
        let server = busy_server();
        assert!(!server.restart_component("something.else"));
        assert!(!server.degrade_component("something.else"));
        let factory = verifier_factory(&server);
        assert!(factory(&ComponentId::new("something.else")).is_none());
    }
}
