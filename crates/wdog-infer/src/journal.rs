//! On-disk trace journal format (`wdog-infer/v1`).
//!
//! A [`TraceJournal`] is one recorded execution: the events a
//! [`TraceRecorder`](wdog_core::TraceRecorder) drained after a target's
//! test workload ran, stamped with which target produced it, a label for
//! the execution (test name, chaos schedule, load profile) and the seed it
//! booted with. Journals are the unit the miner consumes — invariants are
//! judged per-journal (orderings, staleness) or across all journals
//! (bounds, deltas), so keeping executions separate matters.

use serde::{Deserialize, Serialize};
use wdog_core::{TraceEvent, TraceEventKind};

/// Schema tag written into every journal and corpus artifact.
pub const SCHEMA: &str = "wdog-infer/v1";

/// One recorded execution of an instrumented target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceJournal {
    /// Format tag; always [`SCHEMA`] for journals this crate writes.
    pub schema: String,
    /// Target program that produced the trace (`kvs`, `minizk`, ...).
    pub target: String,
    /// Human label for the execution the trace came from.
    pub label: String,
    /// Seed the execution booted with.
    pub seed: u64,
    /// Drained recorder events, in sequence order.
    pub events: Vec<TraceEvent>,
}

impl TraceJournal {
    /// Wraps drained recorder events into a schema-tagged journal.
    pub fn new(
        target: impl Into<String>,
        label: impl Into<String>,
        seed: u64,
        events: Vec<TraceEvent>,
    ) -> Self {
        Self {
            schema: SCHEMA.to_owned(),
            target: target.into(),
            label: label.into(),
            seed,
            events,
        }
    }

    /// Iterates the journal's publish events as `(event, fields)` pairs.
    pub fn publishes(
        &self,
    ) -> impl Iterator<Item = (&TraceEvent, &[(String, wdog_core::CtxValue)])> {
        self.events.iter().filter_map(|e| match &e.kind {
            TraceEventKind::Publish { fields } => Some((e, fields.as_slice())),
            TraceEventKind::Op { .. } => None,
        })
    }

    /// The journal's end-of-recording timestamp: the latest event time.
    ///
    /// Used as the closing bound when measuring publish gaps, so a key that
    /// goes quiet before the recording ends is charged for its silence.
    pub fn end_us(&self) -> u64 {
        self.events.iter().map(|e| e.at_us).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdog_core::CtxValue;

    fn publish(seq: u64, at_us: u64, key: &str) -> TraceEvent {
        TraceEvent {
            seq,
            at_us,
            key: key.into(),
            kind: TraceEventKind::Publish {
                fields: vec![("n".into(), CtxValue::U64(seq))],
            },
        }
    }

    #[test]
    fn journal_round_trips_and_exposes_publishes() {
        let mut j = TraceJournal::new("kvs", "unit", 7, vec![publish(1, 10, "wal_loop")]);
        j.events.push(TraceEvent {
            seq: 2,
            at_us: 25,
            key: "wal_loop".into(),
            kind: TraceEventKind::Op {
                op: "flush#wal_sync".into(),
                ok: true,
            },
        });
        assert_eq!(j.schema, SCHEMA);
        assert_eq!(j.publishes().count(), 1);
        assert_eq!(j.end_us(), 25);
        let json = serde_json::to_string(&j).unwrap();
        let back: TraceJournal = serde_json::from_str(&json).unwrap();
        assert_eq!(back, j);
    }
}
