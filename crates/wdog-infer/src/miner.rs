//! Invariant mining over trace journals.
//!
//! The miner replays [`TraceJournal`]s and proposes value-level invariants
//! the recorded executions never violated:
//!
//! * **Range** — a numeric context field stayed within `[min, max]`.
//! * **Len** — a string/bytes field never exceeded `max_len`.
//! * **Delta** — a numeric field never moved more than `max_step` between
//!   consecutive publishes of its key within one execution.
//! * **Order** — in every execution where both keys published, `first`'s
//!   first publish preceded `then`'s first publish.
//! * **Staleness** — a key never went longer than `max_gap_us` between
//!   publishes (including the tail gap to the end of the recording).
//!
//! Every invariant carries a *support* count (how many observations backed
//! it); [`MinerConfig`] sets the confidence floors below which candidates
//! are discarded. All aggregation is order-independent and the output is
//! sorted by invariant id, so mining is deterministic under any reordering
//! of the input journals.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use wdog_core::CtxValue;

use crate::journal::TraceJournal;

/// Confidence floors for mined invariants.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MinerConfig {
    /// Minimum observation count for value invariants (range/len/delta).
    pub min_support: u64,
    /// Minimum number of co-appearing journals for an ordering.
    pub min_order_journals: u64,
    /// Minimum publishes of a key in *every* journal it appears in before a
    /// staleness window is proposed — one-shot keys have no cadence.
    pub min_staleness_publishes: u64,
}

impl Default for MinerConfig {
    fn default() -> Self {
        Self {
            min_support: 3,
            min_order_journals: 1,
            min_staleness_publishes: 4,
        }
    }
}

/// One invariant the recorded executions never violated, without slack.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Invariant {
    /// Numeric field of `key` stayed within `[min, max]`.
    Range {
        key: String,
        field: String,
        min: i64,
        max: i64,
    },
    /// Str/Bytes field of `key` never exceeded `max_len`.
    Len {
        key: String,
        field: String,
        max_len: u64,
    },
    /// Numeric field of `key` never stepped more than `max_step` between
    /// consecutive publishes within one execution.
    Delta {
        key: String,
        field: String,
        max_step: u64,
    },
    /// `first`'s first publish preceded `then`'s in every co-appearance.
    Order { first: String, then: String },
    /// `key` never went more than `max_gap_us` between publishes.
    Staleness { key: String, max_gap_us: u64 },
}

impl Invariant {
    /// Stable identifier used for sorting, dedup and corpus diffs.
    pub fn id(&self) -> String {
        match self {
            Invariant::Range { key, field, .. } => format!("range.{key}.{field}"),
            Invariant::Len { key, field, .. } => format!("len.{key}.{field}"),
            Invariant::Delta { key, field, .. } => format!("delta.{key}.{field}"),
            Invariant::Order { first, then } => format!("order.{then}.after.{first}"),
            Invariant::Staleness { key, .. } => format!("staleness.{key}"),
        }
    }

    /// The context key the invariant constrains (the *dependent* key for
    /// orderings — the one whose checker would fire).
    pub fn key(&self) -> &str {
        match self {
            Invariant::Range { key, .. }
            | Invariant::Len { key, .. }
            | Invariant::Delta { key, .. }
            | Invariant::Staleness { key, .. } => key,
            Invariant::Order { then, .. } => then,
        }
    }
}

/// An invariant plus the evidence behind it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinedInvariant {
    pub invariant: Invariant,
    /// Observation count: publishes seen (range/len), consecutive pairs
    /// (delta/staleness gaps), or co-appearing journals (order).
    pub support: u64,
}

/// The miner's output: invariants sorted by [`Invariant::id`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct InvariantSet {
    pub invariants: Vec<MinedInvariant>,
}

impl InvariantSet {
    /// Looks up a mined invariant by id.
    pub fn get(&self, id: &str) -> Option<&MinedInvariant> {
        self.invariants.iter().find(|m| m.invariant.id() == id)
    }

    /// The sorted list of invariant ids.
    pub fn ids(&self) -> Vec<String> {
        self.invariants.iter().map(|m| m.invariant.id()).collect()
    }
}

fn numeric(v: &CtxValue) -> Option<i64> {
    match v {
        CtxValue::U64(u) => Some((*u).min(i64::MAX as u64) as i64),
        CtxValue::I64(i) => Some(*i),
        _ => None,
    }
}

fn length(v: &CtxValue) -> Option<u64> {
    match v {
        CtxValue::Str(s) => Some(s.len() as u64),
        CtxValue::Bytes(b) => Some(b.len() as u64),
        _ => None,
    }
}

#[derive(Default)]
struct NumStat {
    min: i64,
    max: i64,
    count: u64,
}

#[derive(Default)]
struct LenStat {
    max_len: u64,
    count: u64,
}

#[derive(Default)]
struct DeltaStat {
    max_step: u64,
    pairs: u64,
}

#[derive(Default)]
struct GapStat {
    max_gap_us: u64,
    gaps: u64,
    /// Fewest publishes of the key in any journal where it appeared.
    min_publishes_per_journal: u64,
}

/// Mines every invariant the journals support at the configured floors.
pub fn mine(journals: &[TraceJournal], cfg: &MinerConfig) -> InvariantSet {
    let mut ranges: BTreeMap<(String, String), NumStat> = BTreeMap::new();
    let mut lens: BTreeMap<(String, String), LenStat> = BTreeMap::new();
    let mut deltas: BTreeMap<(String, String), DeltaStat> = BTreeMap::new();
    let mut gaps: BTreeMap<String, GapStat> = BTreeMap::new();
    // (first, then) -> journals where first's first publish preceded then's.
    let mut before: BTreeMap<(String, String), u64> = BTreeMap::new();

    for journal in journals {
        let end_us = journal.end_us();
        // Per-journal state for deltas, gaps and first-publish order.
        let mut last_value: BTreeMap<(String, String), i64> = BTreeMap::new();
        let mut last_at: BTreeMap<String, u64> = BTreeMap::new();
        let mut publish_counts: BTreeMap<String, u64> = BTreeMap::new();
        let mut first_at: BTreeMap<String, u64> = BTreeMap::new();

        for (event, fields) in journal.publishes() {
            // First publish by *virtual time*, not sequence number: two
            // program threads recording at the same frozen sim instant can
            // claim sequences in either order, so orderings built on `seq`
            // would wobble between same-seed recordings.
            let first = first_at.entry(event.key.clone()).or_insert(event.at_us);
            *first = (*first).min(event.at_us);
            *publish_counts.entry(event.key.clone()).or_insert(0) += 1;
            if let Some(prev_at) = last_at.insert(event.key.clone(), event.at_us) {
                let stat = gaps.entry(event.key.clone()).or_default();
                stat.max_gap_us = stat.max_gap_us.max(event.at_us.saturating_sub(prev_at));
                stat.gaps += 1;
            }
            for (field, value) in fields {
                let slot = (event.key.clone(), field.clone());
                if let Some(n) = numeric(value) {
                    let stat = ranges.entry(slot.clone()).or_insert(NumStat {
                        min: n,
                        max: n,
                        count: 0,
                    });
                    stat.min = stat.min.min(n);
                    stat.max = stat.max.max(n);
                    stat.count += 1;
                    if let Some(prev) = last_value.insert(slot.clone(), n) {
                        let stat = deltas.entry(slot.clone()).or_default();
                        stat.max_step = stat.max_step.max(prev.abs_diff(n));
                        stat.pairs += 1;
                    }
                }
                if let Some(len) = length(value) {
                    let stat = lens.entry(slot).or_default();
                    stat.max_len = stat.max_len.max(len);
                    stat.count += 1;
                }
            }
        }

        // Charge each key's tail silence against its staleness window, so a
        // key that bursts early and then goes quiet gets a wide (harmless)
        // window instead of a tight false-positive one.
        for (key, at) in &last_at {
            if publish_counts.get(key).copied().unwrap_or(0) < 2 {
                continue;
            }
            let stat = gaps.entry(key.clone()).or_default();
            stat.max_gap_us = stat.max_gap_us.max(end_us.saturating_sub(*at));
        }
        for (key, count) in &publish_counts {
            let stat = gaps.entry(key.clone()).or_default();
            stat.min_publishes_per_journal = if stat.min_publishes_per_journal == 0 {
                *count
            } else {
                stat.min_publishes_per_journal.min(*count)
            };
        }

        let keys: Vec<&String> = first_at.keys().collect();
        for a in &keys {
            for b in &keys {
                if a >= b {
                    continue;
                }
                let (fa, fb) = (first_at[*a], first_at[*b]);
                if fa < fb {
                    *before.entry(((*a).clone(), (*b).clone())).or_insert(0) += 1;
                } else if fb < fa {
                    *before.entry(((*b).clone(), (*a).clone())).or_insert(0) += 1;
                } else {
                    // A virtual-time tie means no determined order: poison
                    // both directions so neither survives the
                    // consistency check below.
                    *before.entry(((*a).clone(), (*b).clone())).or_insert(0) += 1;
                    *before.entry(((*b).clone(), (*a).clone())).or_insert(0) += 1;
                }
            }
        }
    }

    let mut out = Vec::new();
    for ((key, field), stat) in &ranges {
        if stat.count >= cfg.min_support {
            out.push(MinedInvariant {
                invariant: Invariant::Range {
                    key: key.clone(),
                    field: field.clone(),
                    min: stat.min,
                    max: stat.max,
                },
                support: stat.count,
            });
        }
    }
    for ((key, field), stat) in &lens {
        if stat.count >= cfg.min_support {
            out.push(MinedInvariant {
                invariant: Invariant::Len {
                    key: key.clone(),
                    field: field.clone(),
                    max_len: stat.max_len,
                },
                support: stat.count,
            });
        }
    }
    for ((key, field), stat) in &deltas {
        if stat.pairs >= cfg.min_support {
            out.push(MinedInvariant {
                invariant: Invariant::Delta {
                    key: key.clone(),
                    field: field.clone(),
                    max_step: stat.max_step,
                },
                support: stat.pairs,
            });
        }
    }
    for (key, stat) in &gaps {
        if stat.gaps >= cfg.min_support
            && stat.min_publishes_per_journal >= cfg.min_staleness_publishes
        {
            out.push(MinedInvariant {
                invariant: Invariant::Staleness {
                    key: key.clone(),
                    max_gap_us: stat.max_gap_us,
                },
                support: stat.gaps,
            });
        }
    }
    for ((first, then), forward) in &before {
        let reverse = before
            .get(&(then.clone(), first.clone()))
            .copied()
            .unwrap_or(0);
        if reverse == 0 && *forward >= cfg.min_order_journals {
            out.push(MinedInvariant {
                invariant: Invariant::Order {
                    first: first.clone(),
                    then: then.clone(),
                },
                support: *forward,
            });
        }
    }

    out.sort_by_key(|a| a.invariant.id());
    InvariantSet { invariants: out }
}

/// Returns whether `invariant` holds on `journal`.
///
/// This is the ground-truth re-check the property tests lean on: anything
/// [`mine`] emits must hold on every journal it was mined from. Invariants
/// about keys or fields the journal never publishes hold vacuously.
pub fn holds_on(invariant: &Invariant, journal: &TraceJournal) -> bool {
    match invariant {
        Invariant::Range {
            key,
            field,
            min,
            max,
        } => field_values(journal, key, field)
            .filter_map(numeric)
            .all(|n| n >= *min && n <= *max),
        Invariant::Len {
            key,
            field,
            max_len,
        } => field_values(journal, key, field)
            .filter_map(length)
            .all(|len| len <= *max_len),
        Invariant::Delta {
            key,
            field,
            max_step,
        } => {
            let values: Vec<i64> = field_values(journal, key, field)
                .filter_map(numeric)
                .collect();
            values.windows(2).all(|w| w[0].abs_diff(w[1]) <= *max_step)
        }
        Invariant::Order { first, then } => {
            let fa = first_publish_at(journal, first);
            let fb = first_publish_at(journal, then);
            match (fa, fb) {
                (Some(a), Some(b)) => a < b,
                _ => true,
            }
        }
        Invariant::Staleness { key, max_gap_us } => {
            let times: Vec<u64> = journal
                .publishes()
                .filter(|(e, _)| e.key == *key)
                .map(|(e, _)| e.at_us)
                .collect();
            if times.len() < 2 {
                return true;
            }
            let within = times
                .windows(2)
                .all(|w| w[1].saturating_sub(w[0]) <= *max_gap_us);
            let tail = journal.end_us().saturating_sub(*times.last().unwrap());
            within && tail <= *max_gap_us
        }
    }
}

fn field_values<'a>(
    journal: &'a TraceJournal,
    key: &'a str,
    field: &'a str,
) -> impl Iterator<Item = &'a CtxValue> {
    journal
        .publishes()
        .filter(move |(e, _)| e.key == key)
        .flat_map(move |(_, fields)| {
            fields
                .iter()
                .filter(move |(name, _)| name == field)
                .map(|(_, v)| v)
        })
}

fn first_publish_at(journal: &TraceJournal, key: &str) -> Option<u64> {
    journal
        .publishes()
        .filter(|(e, _)| e.key == key)
        .map(|(e, _)| e.at_us)
        .min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdog_core::{TraceEvent, TraceEventKind};

    fn publish(seq: u64, at_us: u64, key: &str, fields: Vec<(&str, CtxValue)>) -> TraceEvent {
        TraceEvent {
            seq,
            at_us,
            key: key.into(),
            kind: TraceEventKind::Publish {
                fields: fields.into_iter().map(|(n, v)| (n.to_owned(), v)).collect(),
            },
        }
    }

    fn counter_journal(label: &str, values: &[u64]) -> TraceJournal {
        let events = values
            .iter()
            .enumerate()
            .map(|(i, v)| {
                publish(
                    i as u64 + 1,
                    (i as u64 + 1) * 1_000,
                    "flusher_loop",
                    vec![("entry_count", CtxValue::U64(*v))],
                )
            })
            .collect();
        TraceJournal::new("kvs", label, 1, events)
    }

    #[test]
    fn mines_range_delta_and_staleness_from_a_counter() {
        let set = mine(
            &[counter_journal("a", &[10, 12, 13, 17, 15])],
            &MinerConfig::default(),
        );
        let range = set.get("range.flusher_loop.entry_count").unwrap();
        assert_eq!(
            range.invariant,
            Invariant::Range {
                key: "flusher_loop".into(),
                field: "entry_count".into(),
                min: 10,
                max: 17,
            }
        );
        assert_eq!(range.support, 5);
        let delta = set.get("delta.flusher_loop.entry_count").unwrap();
        assert_eq!(
            delta.invariant,
            Invariant::Delta {
                key: "flusher_loop".into(),
                field: "entry_count".into(),
                max_step: 4,
            }
        );
        let stale = set.get("staleness.flusher_loop").unwrap();
        assert_eq!(
            stale.invariant,
            Invariant::Staleness {
                key: "flusher_loop".into(),
                max_gap_us: 1_000,
            }
        );
    }

    #[test]
    fn mines_len_bounds_for_payload_fields() {
        let events = (1..=4)
            .map(|i| {
                publish(
                    i,
                    i * 500,
                    "wal_loop",
                    vec![("payload", CtxValue::Bytes(vec![0u8; 8 * i as usize]))],
                )
            })
            .collect();
        let set = mine(
            &[TraceJournal::new("kvs", "t", 1, events)],
            &MinerConfig::default(),
        );
        let len = set.get("len.wal_loop.payload").unwrap();
        assert_eq!(
            len.invariant,
            Invariant::Len {
                key: "wal_loop".into(),
                field: "payload".into(),
                max_len: 32,
            }
        );
    }

    #[test]
    fn mines_orderings_only_when_direction_is_consistent() {
        let ab = TraceJournal::new(
            "kvs",
            "ab",
            1,
            vec![
                publish(1, 10, "a", vec![("v", CtxValue::U64(1))]),
                publish(2, 20, "b", vec![("v", CtxValue::U64(1))]),
            ],
        );
        let ba = TraceJournal::new(
            "kvs",
            "ba",
            2,
            vec![
                publish(1, 10, "b", vec![("v", CtxValue::U64(1))]),
                publish(2, 20, "c", vec![("v", CtxValue::U64(1))]),
            ],
        );
        let set = mine(&[ab.clone(), ba.clone()], &MinerConfig::default());
        assert!(set.get("order.b.after.a").is_some(), "consistent pair kept");
        assert!(set.get("order.c.after.b").is_some());
        // Flip b/c in a third journal: the pair becomes inconsistent.
        let cb = TraceJournal::new(
            "kvs",
            "cb",
            3,
            vec![
                publish(1, 10, "c", vec![("v", CtxValue::U64(1))]),
                publish(2, 20, "b", vec![("v", CtxValue::U64(1))]),
            ],
        );
        let set = mine(&[ab, ba, cb], &MinerConfig::default());
        assert!(set.get("order.c.after.b").is_none(), "inconsistent dropped");
        assert!(set.get("order.b.after.c").is_none());
    }

    #[test]
    fn virtual_time_ties_poison_orderings() {
        // Both keys first publish at the same virtual instant: there is no
        // determined order, whichever sequence numbers the threads drew.
        let tie = TraceJournal::new(
            "kvs",
            "tie",
            1,
            vec![
                publish(1, 10, "a", vec![("v", CtxValue::U64(1))]),
                publish(2, 10, "b", vec![("v", CtxValue::U64(1))]),
            ],
        );
        let set = mine(&[tie], &MinerConfig::default());
        assert!(set.get("order.b.after.a").is_none());
        assert!(set.get("order.a.after.b").is_none());
    }

    #[test]
    fn support_floor_discards_thin_evidence() {
        let set = mine(
            &[counter_journal("a", &[5, 6])],
            &MinerConfig {
                min_support: 3,
                ..MinerConfig::default()
            },
        );
        assert!(set.get("range.flusher_loop.entry_count").is_none());
        let set = mine(&[counter_journal("a", &[5, 6, 7])], &MinerConfig::default());
        assert!(set.get("range.flusher_loop.entry_count").is_some());
    }

    #[test]
    fn staleness_needs_cadence_in_every_journal() {
        let steady = counter_journal("steady", &[1, 2, 3, 4, 5, 6]);
        let one_shot = counter_journal("one-shot", &[9]);
        let set = mine(std::slice::from_ref(&steady), &MinerConfig::default());
        assert!(set.get("staleness.flusher_loop").is_some());
        let set = mine(&[steady, one_shot], &MinerConfig::default());
        assert!(
            set.get("staleness.flusher_loop").is_none(),
            "a journal where the key fired once kills the cadence claim"
        );
    }

    #[test]
    fn mining_is_deterministic_under_journal_reordering() {
        let a = counter_journal("a", &[10, 12, 13, 17]);
        let b = counter_journal("b", &[11, 14, 13, 12]);
        let forward = mine(&[a.clone(), b.clone()], &MinerConfig::default());
        let reversed = mine(&[b, a], &MinerConfig::default());
        assert_eq!(forward, reversed);
    }

    #[test]
    fn everything_mined_holds_on_its_source_journals() {
        let journals = vec![
            counter_journal("a", &[10, 12, 13, 17, 15]),
            counter_journal("b", &[11, 14, 13, 12, 20, 21]),
        ];
        let set = mine(&journals, &MinerConfig::default());
        assert!(!set.invariants.is_empty());
        for mined in &set.invariants {
            for journal in &journals {
                assert!(
                    holds_on(&mined.invariant, journal),
                    "{} violated on {}",
                    mined.invariant.id(),
                    journal.label
                );
            }
        }
    }
}
