//! Lowering mined invariants into registrable checker specs.
//!
//! The miner reports exact observed envelopes; running those raw as
//! checkers would flag the first execution that strays one unit past what
//! the recorded tests happened to do. The emitter folds in slack — wider
//! for looser invariant kinds — and tags each spec with the id and
//! component conventions the rest of the stack expects:
//!
//! * id: `{target}.inferred.{kind}.{key}[.{field}]`
//! * component: `{target}.{key}`, so chaos fault attribution's
//!   longest-substring match lands on the loop that owns the key.
//!
//! All slack arithmetic is integer and saturating, which keeps the emitted
//! corpus byte-stable across runs and platforms.

use serde::{Deserialize, Serialize};
use wdog_checkers::{InferredPredicate, InferredSpec};

use crate::miner::{Invariant, InvariantSet};

/// Slack policy applied when lowering invariants to checker specs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmitConfig {
    /// Target name folded into spec ids and components.
    pub target: String,
    /// Range widens each side by `max(1, span / range_slack_divisor)`.
    pub range_slack_divisor: i64,
    /// Len bound grows by `max(1, max_len / len_slack_divisor)`.
    pub len_slack_divisor: u64,
    /// Allowed per-publish step is `observed * delta_multiplier + 1`.
    pub delta_multiplier: u64,
    /// Allowed gap is `observed * staleness_multiplier + staleness_pad_us`.
    pub staleness_multiplier: u64,
    /// Absolute pad on staleness windows (microseconds).
    pub staleness_pad_us: u64,
}

impl EmitConfig {
    /// Default slack policy for `target`.
    pub fn for_target(target: impl Into<String>) -> Self {
        Self {
            target: target.into(),
            range_slack_divisor: 4,
            len_slack_divisor: 4,
            delta_multiplier: 2,
            staleness_multiplier: 4,
            staleness_pad_us: 250_000,
        }
    }
}

/// Lowers every mined invariant into an [`InferredSpec`], slack folded in.
///
/// Output order follows the input set's (id-sorted) order, so the emitted
/// corpus is deterministic whenever mining is.
pub fn emit(set: &InvariantSet, cfg: &EmitConfig) -> Vec<InferredSpec> {
    set.invariants
        .iter()
        .map(|mined| {
            let t = &cfg.target;
            let key = mined.invariant.key().to_owned();
            let (id, predicate) = match &mined.invariant {
                Invariant::Range {
                    key,
                    field,
                    min,
                    max,
                } => {
                    let span = max.saturating_sub(*min);
                    let slack = (span / cfg.range_slack_divisor.max(1)).max(1);
                    (
                        format!("{t}.inferred.range.{key}.{field}"),
                        InferredPredicate::Range {
                            field: field.clone(),
                            min: min.saturating_sub(slack),
                            max: max.saturating_add(slack),
                        },
                    )
                }
                Invariant::Len {
                    key,
                    field,
                    max_len,
                } => {
                    let slack = (max_len / cfg.len_slack_divisor.max(1)).max(1);
                    (
                        format!("{t}.inferred.len.{key}.{field}"),
                        InferredPredicate::LenBound {
                            field: field.clone(),
                            max_len: max_len.saturating_add(slack),
                        },
                    )
                }
                Invariant::Delta {
                    key,
                    field,
                    max_step,
                } => (
                    format!("{t}.inferred.delta.{key}.{field}"),
                    InferredPredicate::Delta {
                        field: field.clone(),
                        max_step: max_step
                            .saturating_mul(cfg.delta_multiplier.max(1))
                            .saturating_add(1),
                    },
                ),
                Invariant::Order { first, then } => (
                    format!("{t}.inferred.order.{then}.{first}"),
                    InferredPredicate::Order {
                        prerequisite: first.clone(),
                    },
                ),
                Invariant::Staleness { key, max_gap_us } => (
                    format!("{t}.inferred.staleness.{key}"),
                    InferredPredicate::Staleness {
                        max_gap_us: max_gap_us
                            .saturating_mul(cfg.staleness_multiplier.max(1))
                            .saturating_add(cfg.staleness_pad_us),
                    },
                ),
            };
            InferredSpec {
                id,
                component: format!("{t}.{key}"),
                key,
                support: mined.support,
                predicate,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::MinedInvariant;

    #[test]
    fn emits_slacked_specs_with_id_and_component_conventions() {
        let set = InvariantSet {
            invariants: vec![
                MinedInvariant {
                    invariant: Invariant::Range {
                        key: "flusher_loop".into(),
                        field: "entry_count".into(),
                        min: 10,
                        max: 18,
                    },
                    support: 9,
                },
                MinedInvariant {
                    invariant: Invariant::Staleness {
                        key: "compaction_loop".into(),
                        max_gap_us: 100_000,
                    },
                    support: 4,
                },
                MinedInvariant {
                    invariant: Invariant::Order {
                        first: "wal_loop".into(),
                        then: "flusher_loop".into(),
                    },
                    support: 2,
                },
            ],
        };
        let specs = emit(&set, &EmitConfig::for_target("kvs"));
        assert_eq!(specs.len(), 3);

        assert_eq!(specs[0].id, "kvs.inferred.range.flusher_loop.entry_count");
        assert_eq!(specs[0].component, "kvs.flusher_loop");
        assert_eq!(specs[0].key, "flusher_loop");
        assert_eq!(specs[0].support, 9);
        // span 8 / divisor 4 = slack 2 each side.
        assert_eq!(
            specs[0].predicate,
            InferredPredicate::Range {
                field: "entry_count".into(),
                min: 8,
                max: 20,
            }
        );

        assert_eq!(specs[1].id, "kvs.inferred.staleness.compaction_loop");
        assert_eq!(
            specs[1].predicate,
            InferredPredicate::Staleness {
                max_gap_us: 650_000
            }
        );

        assert_eq!(specs[2].id, "kvs.inferred.order.flusher_loop.wal_loop");
        assert_eq!(specs[2].component, "kvs.flusher_loop");
        assert_eq!(
            specs[2].predicate,
            InferredPredicate::Order {
                prerequisite: "wal_loop".into()
            }
        );
    }

    #[test]
    fn tight_envelopes_still_get_minimum_slack() {
        let set = InvariantSet {
            invariants: vec![MinedInvariant {
                invariant: Invariant::Range {
                    key: "k".into(),
                    field: "f".into(),
                    min: 5,
                    max: 5,
                },
                support: 3,
            }],
        };
        let specs = emit(&set, &EmitConfig::for_target("kvs"));
        assert_eq!(
            specs[0].predicate,
            InferredPredicate::Range {
                field: "f".into(),
                min: 4,
                max: 6,
            }
        );
    }
}
