//! Trace-driven checker inference.
//!
//! System software ships with tests that exercise its healthy behavior.
//! `wdog-infer` turns those executions into *checkers*: a
//! [`TraceRecorder`](wdog_core::TraceRecorder) journals every context-key
//! publish and op-table execution while the tests run, the [`miner`]
//! replays the journals and proposes value-level invariants the recorded
//! behavior never violated, and the [`emit`] pass lowers surviving
//! candidates into [`InferredSpec`](wdog_checkers::InferredSpec)s that
//! register through `DriverBuilder` beside the structural mimics.
//!
//! The pipeline is record → mine → emit → score:
//!
//! ```text
//! tests ──TraceRecorder──▶ TraceJournal (wdog-infer/v1)
//!       ──mine(journals)──▶ InvariantSet  (bounds, deltas, orders, staleness)
//!       ──emit(set)───────▶ Vec<InferredSpec>  (slack folded in)
//!       ──WdOptions.inferred──▶ scored in chaos sim beside mimics
//! ```
//!
//! Everything downstream of recording is a pure function of the journals,
//! and journals recorded on the simulation substrate are themselves
//! deterministic — so the emitted corpus is byte-stable and diffable.

pub mod emit;
pub mod journal;
pub mod miner;

pub use emit::{emit, EmitConfig};
pub use journal::{TraceJournal, SCHEMA};
pub use miner::{holds_on, mine, Invariant, InvariantSet, MinedInvariant, MinerConfig};

use wdog_checkers::InferredSpec;

/// Record-side output of one mining run: the mined set plus the specs it
/// lowered to, under one schema tag. This is the shape the corpus
/// artifacts in `results/inferred/` serialize.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct InferenceReport {
    /// Always [`SCHEMA`].
    pub schema: String,
    /// Target the journals came from.
    pub target: String,
    /// Labels of the journals that were mined, sorted.
    pub journals: Vec<String>,
    /// Total trace events consumed.
    pub events: u64,
    /// Invariants that survived the confidence floors.
    pub mined: InvariantSet,
    /// Registrable checker specs, slack folded in.
    pub specs: Vec<InferredSpec>,
}

/// Runs mine + emit over `journals` and wraps the result for archiving.
pub fn infer(
    target: &str,
    journals: &[TraceJournal],
    miner_cfg: &MinerConfig,
    emit_cfg: &EmitConfig,
) -> InferenceReport {
    let mined = mine(journals, miner_cfg);
    let specs = emit(&mined, emit_cfg);
    let mut labels: Vec<String> = journals.iter().map(|j| j.label.clone()).collect();
    labels.sort();
    InferenceReport {
        schema: SCHEMA.to_owned(),
        target: target.to_owned(),
        journals: labels,
        events: journals.iter().map(|j| j.events.len() as u64).sum(),
        mined,
        specs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdog_core::{CtxValue, TraceEvent, TraceEventKind};

    #[test]
    fn infer_wraps_mine_and_emit_under_the_schema() {
        let events = (1..=5u64)
            .map(|i| TraceEvent {
                seq: i,
                at_us: i * 1_000,
                key: "wal_loop".into(),
                kind: TraceEventKind::Publish {
                    fields: vec![("n".into(), CtxValue::U64(i))],
                },
            })
            .collect();
        let journals = vec![TraceJournal::new("kvs", "unit", 3, events)];
        let report = infer(
            "kvs",
            &journals,
            &MinerConfig::default(),
            &EmitConfig::for_target("kvs"),
        );
        assert_eq!(report.schema, SCHEMA);
        assert_eq!(report.events, 5);
        assert_eq!(report.journals, vec!["unit".to_owned()]);
        assert_eq!(report.mined.invariants.len(), report.specs.len());
        assert!(report
            .specs
            .iter()
            .any(|s| s.id == "kvs.inferred.staleness.wal_loop"));
        let json = serde_json::to_string(&report).unwrap();
        let back: InferenceReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
