//! Property coverage for the invariant miner (ISSUE 10 satellite):
//!
//! 1. every mined invariant holds on every journal it was mined from;
//! 2. mining is deterministic under any reordering of the input journals;
//! 3. invariant sets only shrink under trace union — more evidence can
//!    kill an invariant, never invent one;
//! 4. emitted specs never tighten the mined envelope.

use proptest::prelude::*;

use wdog_core::{CtxValue, TraceEvent, TraceEventKind};
use wdog_infer::emit::{emit, EmitConfig};
use wdog_infer::journal::TraceJournal;
use wdog_infer::miner::{holds_on, mine, Invariant, MinerConfig};

const KEYS: [&str; 3] = ["alpha_loop", "beta_loop", "gamma_loop"];

/// One raw publish draw: key index, virtual-time gap to the previous
/// event, a numeric field value, and an optional payload length.
fn event_strategy() -> impl Strategy<Value = (usize, u64, u64, Option<usize>)> {
    (
        0..KEYS.len(),
        0..2_000u64,
        0..60u64,
        prop_oneof![Just(None), (0..24usize).prop_map(Some)],
    )
}

fn journal_strategy() -> impl Strategy<Value = TraceJournal> {
    (
        proptest::collection::vec(event_strategy(), 1..40),
        0..1_000_000u64,
    )
        .prop_map(|(draws, seed)| {
            let mut at_us = 0u64;
            let events = draws
                .into_iter()
                .enumerate()
                .map(|(i, (key, gap, n, payload))| {
                    at_us += gap;
                    let mut fields = vec![("n".to_owned(), CtxValue::U64(n))];
                    if let Some(len) = payload {
                        fields.push(("payload".to_owned(), CtxValue::Bytes(vec![0u8; len])));
                    }
                    TraceEvent {
                        seq: i as u64 + 1,
                        at_us,
                        key: KEYS[key].to_owned(),
                        kind: TraceEventKind::Publish { fields },
                    }
                })
                .collect();
            TraceJournal::new("prop", format!("j{seed}"), seed, events)
        })
}

/// Floors low enough that every invariant family gets exercised.
fn low_floors() -> MinerConfig {
    MinerConfig {
        min_support: 1,
        min_order_journals: 1,
        min_staleness_publishes: 2,
    }
}

fn ids(journals: &[TraceJournal], cfg: &MinerConfig) -> Vec<String> {
    mine(journals, cfg).ids()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn mined_invariants_hold_on_their_sources(
        journals in proptest::collection::vec(journal_strategy(), 1..4),
    ) {
        let set = mine(&journals, &low_floors());
        for mined in &set.invariants {
            for journal in &journals {
                prop_assert!(
                    holds_on(&mined.invariant, journal),
                    "{} violated on source journal {}",
                    mined.invariant.id(),
                    journal.label,
                );
            }
        }
    }

    #[test]
    fn mining_is_deterministic_under_reordering(
        journals in proptest::collection::vec(journal_strategy(), 1..5),
        rotation in 0..5usize,
    ) {
        let baseline = mine(&journals, &low_floors());
        let mut rotated = journals.clone();
        rotated.rotate_left(rotation % journals.len().max(1));
        prop_assert_eq!(&mine(&rotated, &low_floors()), &baseline);
        let mut reversed = journals;
        reversed.reverse();
        prop_assert_eq!(&mine(&reversed, &low_floors()), &baseline);
    }

    #[test]
    fn union_of_traces_only_shrinks_the_invariant_set(
        a in proptest::collection::vec(journal_strategy(), 1..3),
        b in proptest::collection::vec(journal_strategy(), 1..3),
    ) {
        // At floor 1 the property is exact: every observation in the union
        // came from one of the parts, so an invariant consistent with the
        // union is consistent with (and mined from) at least one part.
        // Support floors above 1 deliberately break this — pooled support
        // can cross the floor — which is why they are confidence knobs,
        // not soundness ones. Per-journal guards (staleness cadence) and
        // direction consistency (orders) stay union-safe at any setting.
        let cfg = low_floors();
        let part_ids: Vec<String> = ids(&a, &cfg)
            .into_iter()
            .chain(ids(&b, &cfg))
            .collect();
        let union: Vec<TraceJournal> = a.into_iter().chain(b).collect();
        for id in ids(&union, &cfg) {
            prop_assert!(
                part_ids.contains(&id),
                "union invented {id}, absent from both parts",
            );
        }
    }

    #[test]
    fn emitted_specs_never_tighten_the_mined_envelope(
        journals in proptest::collection::vec(journal_strategy(), 1..4),
    ) {
        let set = mine(&journals, &low_floors());
        let specs = emit(&set, &EmitConfig::for_target("prop"));
        prop_assert_eq!(specs.len(), set.invariants.len());
        for (mined, spec) in set.invariants.iter().zip(&specs) {
            prop_assert_eq!(spec.support, mined.support);
            use wdog_checkers::InferredPredicate as P;
            match (&mined.invariant, &spec.predicate) {
                (Invariant::Range { min, max, .. }, P::Range { min: emin, max: emax, .. }) => {
                    prop_assert!(emin < min && emax > max);
                }
                (Invariant::Len { max_len, .. }, P::LenBound { max_len: elen, .. }) => {
                    prop_assert!(elen > max_len);
                }
                (Invariant::Delta { max_step, .. }, P::Delta { max_step: estep, .. }) => {
                    prop_assert!(estep > max_step);
                }
                (Invariant::Staleness { max_gap_us, .. }, P::Staleness { max_gap_us: egap }) => {
                    prop_assert!(egap > max_gap_us);
                }
                (Invariant::Order { first, .. }, P::Order { prerequisite }) => {
                    prop_assert_eq!(prerequisite, first);
                }
                (inv, pred) => prop_assert!(false, "kind mismatch: {:?} vs {:?}", inv, pred),
            }
        }
    }
}
