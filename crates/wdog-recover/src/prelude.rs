//! The supported public surface of the recovery plane, re-exported flat.
//!
//! Use alongside `wdog_core::prelude` (this crate depends on wdog-core, so
//! its types cannot live in that prelude without a cycle):
//!
//! ```ignore
//! use wdog_core::prelude::*;
//! use wdog_recover::prelude::*;
//! ```

pub use crate::coordinator::{
    RecoveryCoordinator, RecoveryCoordinatorBuilder, RecoverySurface, VerifierFactory,
    RECOVERY_MTTR_METRIC, RECOVERY_OUTCOME_METRIC, RECOVERY_RUNG_METRIC,
    RECOVERY_VERIFICATION_METRIC,
};
pub use crate::incident::{Incident, RecoveryOutcome};
pub use crate::policy::{BackoffPolicy, RecoveryPolicy};
