//! The recovery coordinator: consumes failure reports, walks the policy
//! ladder, verifies every mitigation, and keeps the books.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;

use wdog_base::clock::SharedClock;
use wdog_base::ids::ComponentId;
use wdog_base::rng::derive_seed;

use wdog_core::prelude::*;
use wdog_telemetry::TelemetryRegistry;

use crate::incident::{Incident, RecoveryOutcome};
use crate::policy::RecoveryPolicy;

/// Histogram of incident MTTR, labeled by blamed component.
pub const RECOVERY_MTTR_METRIC: &str = "recovery_mttr_ms";
/// Counter of closed incidents, labeled by terminal outcome.
pub const RECOVERY_OUTCOME_METRIC: &str = "recovery_outcome_total";
/// Counter of ladder rung executions, labeled by rung
/// (`retry`/`restart`/`degrade`/`escalate`/`pin`).
pub const RECOVERY_RUNG_METRIC: &str = "recovery_rung_total";
/// Counter of verification re-checks, labeled `pass`/`fail`.
pub const RECOVERY_VERIFICATION_METRIC: &str = "recovery_verification_total";

/// Builds a fresh instance of the check that blamed a component, so a
/// mitigation can be verified by re-dispatching it. Returns `None` when the
/// component has no re-checkable probe (verification then fails closed: the
/// ladder keeps climbing).
pub type VerifierFactory = Arc<dyn Fn(&ComponentId) -> Option<Box<dyn Checker>> + Send + Sync>;

/// Everything a target exposes for component-scoped recovery: how to restart
/// a component, how to shed its workload, and how to re-check it afterwards.
#[derive(Clone)]
pub struct RecoverySurface {
    /// Component-scoped restart handle (§5.2 "cheap recovery").
    pub restart: Arc<dyn Restartable>,
    /// Workload-shedding handle for the degrade rung.
    pub degrade: Arc<dyn Degradable>,
    /// Builds verification re-checks per component.
    pub verifier: VerifierFactory,
}

/// Capacity of the report inbox; overflow increments a drop counter instead
/// of blocking the driver's action thread.
const INBOX_CAP: usize = 128;

/// Configures and starts a [`RecoveryCoordinator`].
pub struct RecoveryCoordinatorBuilder {
    clock: SharedClock,
    surface: RecoverySurface,
    default_policy: RecoveryPolicy,
    policies: HashMap<ComponentId, RecoveryPolicy>,
    escalation: Option<Arc<dyn Action>>,
    seed: u64,
    telemetry: Option<Arc<TelemetryRegistry>>,
}

impl RecoveryCoordinatorBuilder {
    /// Overrides the policy used for components without a specific one.
    pub fn default_policy(mut self, policy: RecoveryPolicy) -> Self {
        self.default_policy = policy;
        self
    }

    /// Sets the policy for one component.
    pub fn policy_for(mut self, component: impl Into<ComponentId>, policy: RecoveryPolicy) -> Self {
        self.policies.insert(component.into(), policy);
        self
    }

    /// Sets the action fired when an incident escalates.
    pub fn escalation(mut self, action: Arc<dyn Action>) -> Self {
        self.escalation = Some(action);
        self
    }

    /// Seeds the deterministic backoff jitter.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Attaches a telemetry registry: the coordinator then records per-rung
    /// counters, verification pass/fail counts, per-component MTTR
    /// histograms, and incident open/close flight events.
    pub fn telemetry(mut self, registry: Arc<TelemetryRegistry>) -> Self {
        self.telemetry = Some(registry);
        self
    }

    /// Spawns the coordinator worker and returns the shared handle.
    pub fn start(self) -> Arc<RecoveryCoordinator> {
        let (tx, rx) = bounded::<FailureReport>(INBOX_CAP);
        let shared = Arc::new(CoordShared {
            state: Mutex::new(CoordState::default()),
            dropped: AtomicU64::new(0),
            pinned_hits: AtomicU64::new(0),
            busy: AtomicBool::new(false),
            backlog_len: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        });
        let worker = Worker {
            rx,
            clock: Arc::clone(&self.clock),
            surface: self.surface,
            default_policy: self.default_policy,
            policies: self.policies,
            escalation: self.escalation,
            seed: self.seed,
            telemetry: self.telemetry,
            shared: Arc::clone(&shared),
            backlog: VecDeque::new(),
            incident_seq: 0,
        };
        let clock = Arc::clone(&self.clock);
        let handle = wdog_base::clock::spawn_on(&clock, "wdog-recover", move || worker.run());
        Arc::new(RecoveryCoordinator {
            tx,
            shared,
            clock,
            worker: Mutex::new(Some(handle)),
        })
    }
}

#[derive(Default)]
struct CoordState {
    incidents: Vec<Incident>,
    pinned: HashSet<ComponentId>,
    /// Per-component incident-open timestamps inside the flap window.
    flap: HashMap<ComponentId, Vec<u64>>,
}

struct CoordShared {
    state: Mutex<CoordState>,
    dropped: AtomicU64,
    pinned_hits: AtomicU64,
    busy: AtomicBool,
    backlog_len: AtomicUsize,
    shutdown: AtomicBool,
}

/// Closed-loop recovery driver (see crate docs for the ladder).
///
/// Registered with a [`WatchdogDriver`](wdog_core::driver::WatchdogDriver)
/// as an [`Action`]; reports are handed to a dedicated worker thread through
/// a bounded inbox so recovery work never blocks detection.
pub struct RecoveryCoordinator {
    tx: Sender<FailureReport>,
    shared: Arc<CoordShared>,
    clock: SharedClock,
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl RecoveryCoordinator {
    /// Starts configuring a coordinator for a target's recovery surface.
    pub fn builder(clock: SharedClock, surface: RecoverySurface) -> RecoveryCoordinatorBuilder {
        RecoveryCoordinatorBuilder {
            clock,
            surface,
            default_policy: RecoveryPolicy::default(),
            policies: HashMap::new(),
            escalation: None,
            seed: 0,
            telemetry: None,
        }
    }

    /// Returns all closed incidents so far, in close order.
    pub fn incidents(&self) -> Vec<Incident> {
        self.shared.state.lock().incidents.clone()
    }

    /// Returns reports dropped because the inbox was full.
    pub fn dropped_reports(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// Returns reports ignored because their component is pinned.
    pub fn pinned_reports(&self) -> u64 {
        self.shared.pinned_hits.load(Ordering::Relaxed)
    }

    /// Returns the components currently pinned in degraded mode.
    pub fn pinned_components(&self) -> Vec<ComponentId> {
        let mut v: Vec<ComponentId> = self.shared.state.lock().pinned.iter().cloned().collect();
        v.sort();
        v
    }

    /// Returns `true` when no report is queued or being processed.
    pub fn is_idle(&self) -> bool {
        self.tx.is_empty()
            && self.shared.backlog_len.load(Ordering::Relaxed) == 0
            && !self.shared.busy.load(Ordering::Relaxed)
    }

    /// Polls until the coordinator is idle or `timeout` elapses, pacing on
    /// the coordinator's clock so the wait is virtual under simulation.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = self.clock.now() + timeout;
        while self.clock.now() < deadline {
            if self.is_idle() {
                return true;
            }
            self.clock.sleep(Duration::from_millis(10));
        }
        self.is_idle()
    }

    /// Stops the worker after it finishes the incident in hand.
    pub fn stop(&self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.worker.lock().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for RecoveryCoordinator {
    fn drop(&mut self) {
        self.stop();
    }
}

impl Action for RecoveryCoordinator {
    fn on_failure(&self, report: &FailureReport) {
        if self.shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        if self.tx.try_send(report.clone()).is_err() {
            self.shared.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

struct Worker {
    rx: Receiver<FailureReport>,
    clock: SharedClock,
    surface: RecoverySurface,
    default_policy: RecoveryPolicy,
    policies: HashMap<ComponentId, RecoveryPolicy>,
    escalation: Option<Arc<dyn Action>>,
    seed: u64,
    telemetry: Option<Arc<TelemetryRegistry>>,
    shared: Arc<CoordShared>,
    /// Reports for *other* components received while a ladder was running.
    backlog: VecDeque<FailureReport>,
    incident_seq: u64,
}

impl Worker {
    fn run(mut self) {
        loop {
            let report = if let Some(r) = self.backlog.pop_front() {
                self.shared
                    .backlog_len
                    .store(self.backlog.len(), Ordering::Relaxed);
                r
            } else {
                // Poll the inbox on the clock rather than blocking inside
                // crossbeam: under a simulated clock this sleep is what
                // lets virtual time advance past an idle coordinator.
                match self.rx.try_recv() {
                    Ok(r) => r,
                    Err(TryRecvError::Empty) => {
                        if self.shared.shutdown.load(Ordering::Relaxed) {
                            return;
                        }
                        self.clock.sleep(Duration::from_millis(25));
                        continue;
                    }
                    Err(TryRecvError::Disconnected) => return,
                }
            };
            self.shared.busy.store(true, Ordering::Relaxed);
            self.handle(report);
            self.shared.busy.store(false, Ordering::Relaxed);
        }
    }

    fn policy_for(&self, component: &ComponentId) -> RecoveryPolicy {
        self.policies
            .get(component)
            .unwrap_or(&self.default_policy)
            .clone()
    }

    /// Bumps the rung counter for one ladder rung execution.
    fn rung(&self, label: &str) {
        if let Some(t) = &self.telemetry {
            t.counter(RECOVERY_RUNG_METRIC, label).inc();
        }
    }

    fn handle(&mut self, report: FailureReport) {
        let component = report.location.component.clone();
        if self.shared.state.lock().pinned.contains(&component) {
            self.shared.pinned_hits.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let policy = self.policy_for(&component);
        let opened_at_ms = self.clock.now_millis();
        if let Some(t) = &self.telemetry {
            t.flight(
                opened_at_ms,
                "incident-open",
                &format!("{component} blamed by {}", report.checker),
            );
        }

        // Flap damping: a component whose incidents keep reopening inside
        // the window is not recovering — pin it degraded instead of cycling
        // restarts forever.
        let flapping = {
            let mut st = self.shared.state.lock();
            let window_ms = policy.flap_window.as_millis() as u64;
            let hist = st.flap.entry(component.clone()).or_default();
            hist.retain(|t| t.saturating_add(window_ms) >= opened_at_ms);
            hist.push(opened_at_ms);
            hist.len() as u32 >= policy.flap_threshold
        };
        if flapping {
            self.rung("pin");
            self.surface.degrade.degrade(&component);
            self.shared.state.lock().pinned.insert(component.clone());
            self.close(Incident {
                component: component.to_string(),
                checker: report.checker.to_string(),
                kind: report.kind.label().to_string(),
                opened_at_ms,
                closed_at_ms: self.clock.now_millis(),
                mttr_ms: self.clock.now_millis().saturating_sub(opened_at_ms),
                reports: 1,
                retries: 0,
                restarts: 0,
                verifications: 0,
                verified: false,
                outcome: RecoveryOutcome::Degraded,
                pinned: true,
            });
            return;
        }

        self.run_ladder(report, component, policy, opened_at_ms);
    }

    fn run_ladder(
        &mut self,
        report: FailureReport,
        component: ComponentId,
        policy: RecoveryPolicy,
        opened_at_ms: u64,
    ) {
        self.incident_seq += 1;
        let incident_seed = derive_seed(
            self.seed,
            &format!("{component}#{seq}", seq = self.incident_seq),
        );
        let mut reports = 1u64;
        let mut retries = 0u32;
        let mut restarts = 0u32;
        let mut verifications = 0u32;

        let close = |w: &mut Worker,
                     outcome: RecoveryOutcome,
                     verified: bool,
                     reports: u64,
                     retries: u32,
                     restarts: u32,
                     verifications: u32| {
            let closed_at_ms = w.clock.now_millis();
            w.close(Incident {
                component: component.to_string(),
                checker: report.checker.to_string(),
                kind: report.kind.label().to_string(),
                opened_at_ms,
                closed_at_ms,
                mttr_ms: closed_at_ms.saturating_sub(opened_at_ms),
                reports,
                retries,
                restarts,
                verifications,
                verified,
                outcome,
                pinned: false,
            });
        };

        // Rung 1 — retry: wait out a transient. Pointless for corrupted
        // state or failed assertions, which never heal by themselves.
        let skip_retry = matches!(
            report.kind,
            FailureKind::Corruption | FailureKind::AssertViolation
        );
        if !skip_retry {
            for attempt in 0..policy.max_retries {
                self.rung("retry");
                self.clock
                    .sleep(policy.backoff.delay(attempt, incident_seed));
                retries += 1;
                reports += self.coalesce(&component);
                verifications += 1;
                if self.verify(&component, &policy) {
                    close(
                        self,
                        RecoveryOutcome::VerifiedRecovered,
                        true,
                        reports,
                        retries,
                        restarts,
                        verifications,
                    );
                    return;
                }
            }
        }

        // Rung 2 — component-scoped restart (§5.2 cheap recovery).
        for _ in 0..policy.max_restarts {
            self.rung("restart");
            self.surface.restart.restart(&component);
            restarts += 1;
            self.clock.sleep(policy.settle);
            reports += self.coalesce(&component);
            verifications += 1;
            if self.verify(&component, &policy) {
                close(
                    self,
                    RecoveryOutcome::VerifiedRecovered,
                    true,
                    reports,
                    retries,
                    restarts,
                    verifications,
                );
                return;
            }
        }

        // Rung 3 — degrade: shed the workload, keep the process.
        if policy.allow_degrade {
            self.rung("degrade");
            self.surface.degrade.degrade(&component);
            reports += self.coalesce(&component);
            close(
                self,
                RecoveryOutcome::Degraded,
                false,
                reports,
                retries,
                restarts,
                verifications,
            );
            return;
        }

        // Rung 4 — escalate: nothing helped, hand off.
        self.rung("escalate");
        if let Some(esc) = &self.escalation {
            esc.on_failure(&report);
        }
        close(
            self,
            RecoveryOutcome::Escalated,
            false,
            reports,
            retries,
            restarts,
            verifications,
        );
    }

    /// Absorbs queued reports blaming `component` into the open incident;
    /// reports for other components are kept for later handling.
    fn coalesce(&mut self, component: &ComponentId) -> u64 {
        let mut absorbed = 0u64;
        while let Ok(r) = self.rx.try_recv() {
            if &r.location.component == component {
                absorbed += 1;
            } else {
                self.backlog.push_back(r);
            }
        }
        self.shared
            .backlog_len
            .store(self.backlog.len(), Ordering::Relaxed);
        absorbed
    }

    /// Re-dispatches the blaming check on a scratch thread; `true` only when
    /// it passes within the policy's verify timeout. A wedged verifier is
    /// abandoned (the scratch thread exits whenever the check completes) so
    /// it can never wedge the coordinator — exactly the executor-abandonment
    /// discipline the driver applies to checkers.
    fn verify(&self, component: &ComponentId, policy: &RecoveryPolicy) -> bool {
        let pass = self.verify_inner(component, policy);
        if let Some(t) = &self.telemetry {
            t.counter(
                RECOVERY_VERIFICATION_METRIC,
                if pass { "pass" } else { "fail" },
            )
            .inc();
        }
        pass
    }

    fn verify_inner(&self, component: &ComponentId, policy: &RecoveryPolicy) -> bool {
        let Some(mut checker) = (self.surface.verifier)(component) else {
            return false;
        };
        let (tx, rx) = bounded::<bool>(1);
        wdog_base::clock::spawn_on(&self.clock, "wdog-verify", move || {
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| checker.check()));
            let pass = matches!(outcome, Ok(s) if s.is_pass());
            let _ = tx.send(pass);
        });
        let deadline = self.clock.now() + policy.verify_timeout;
        loop {
            match rx.try_recv() {
                Ok(pass) => return pass,
                Err(TryRecvError::Disconnected) => return false,
                Err(TryRecvError::Empty) => {}
            }
            let now = self.clock.now();
            if now >= deadline {
                return false;
            }
            self.clock
                .sleep(Duration::from_millis(5).min(deadline - now));
        }
    }

    fn close(&self, incident: Incident) {
        if let Some(t) = &self.telemetry {
            t.histogram(RECOVERY_MTTR_METRIC, &incident.component)
                .record(incident.mttr_ms);
            t.counter(RECOVERY_OUTCOME_METRIC, incident.outcome.label())
                .inc();
            t.flight(
                incident.closed_at_ms,
                "incident-close",
                &format!(
                    "{} {} mttr={}ms",
                    incident.component,
                    incident.outcome.label(),
                    incident.mttr_ms
                ),
            );
        }
        self.shared.state.lock().incidents.push(incident);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use wdog_base::clock::RealClock;
    use wdog_base::ids::CheckerId;

    /// Recovery surface harness: a shared "health" flag per component, a
    /// restart handle that can be told to heal on the Nth attempt, and a
    /// verifier that reads the flag.
    struct Fixture {
        healthy: Arc<AtomicBool>,
        restarts: Arc<AtomicU64>,
        degraded: Arc<Mutex<Vec<ComponentId>>>,
        /// Restart attempts needed before the component heals; u64::MAX
        /// means restarts never help.
        heal_after: Arc<AtomicU64>,
    }

    impl Fixture {
        fn new(initially_healthy: bool, heal_after: u64) -> Self {
            Self {
                healthy: Arc::new(AtomicBool::new(initially_healthy)),
                restarts: Arc::new(AtomicU64::new(0)),
                degraded: Arc::new(Mutex::new(Vec::new())),
                heal_after: Arc::new(AtomicU64::new(heal_after)),
            }
        }

        fn surface(&self) -> RecoverySurface {
            struct R {
                healthy: Arc<AtomicBool>,
                restarts: Arc<AtomicU64>,
                heal_after: Arc<AtomicU64>,
            }
            impl Restartable for R {
                fn restart(&self, _c: &ComponentId) {
                    let n = self.restarts.fetch_add(1, Ordering::Relaxed) + 1;
                    if n >= self.heal_after.load(Ordering::Relaxed) {
                        self.healthy.store(true, Ordering::Relaxed);
                    }
                }
            }
            struct D(Arc<Mutex<Vec<ComponentId>>>);
            impl Degradable for D {
                fn degrade(&self, c: &ComponentId) {
                    self.0.lock().push(c.clone());
                }
            }
            let healthy = Arc::clone(&self.healthy);
            RecoverySurface {
                restart: Arc::new(R {
                    healthy: Arc::clone(&self.healthy),
                    restarts: Arc::clone(&self.restarts),
                    heal_after: Arc::clone(&self.heal_after),
                }),
                degrade: Arc::new(D(Arc::clone(&self.degraded))),
                verifier: Arc::new(move |c: &ComponentId| {
                    let h = Arc::clone(&healthy);
                    let comp = c.clone();
                    Some(Box::new(FnChecker::new("verify", comp.clone(), move || {
                        if h.load(Ordering::Relaxed) {
                            CheckStatus::Pass
                        } else {
                            CheckStatus::Fail(CheckFailure::new(
                                FailureKind::Error,
                                FaultLocation::new(comp.clone(), "verify"),
                                "still failing",
                            ))
                        }
                    })) as Box<dyn Checker>)
                }),
            }
        }
    }

    fn report(component: &str, kind: FailureKind) -> FailureReport {
        FailureReport {
            checker: CheckerId::new("t.checker"),
            kind,
            location: FaultLocation::new(component, "f"),
            detail: "d".into(),
            payload: vec![],
            observed_latency_ms: None,
            at_ms: 0,
        }
    }

    fn fast_coordinator(fx: &Fixture) -> Arc<RecoveryCoordinator> {
        RecoveryCoordinator::builder(RealClock::shared(), fx.surface())
            .default_policy(RecoveryPolicy::fast())
            .seed(42)
            .start()
    }

    #[test]
    fn transient_recovers_on_retry_without_restart() {
        // Component already healthy again by the first re-check: the retry
        // rung verifies and closes without touching the restart handle.
        let fx = Fixture::new(true, u64::MAX);
        let c = fast_coordinator(&fx);
        c.on_failure(&report("kvs.flusher", FailureKind::Stuck));
        assert!(c.wait_idle(Duration::from_secs(5)));
        let incidents = c.incidents();
        assert_eq!(incidents.len(), 1);
        let i = &incidents[0];
        assert_eq!(i.outcome, RecoveryOutcome::VerifiedRecovered);
        assert!(i.verified);
        assert_eq!(i.retries, 1);
        assert_eq!(i.restarts, 0);
        assert!(i.mttr_ms >= 20, "backoff must be reflected in MTTR");
        assert_eq!(fx.restarts.load(Ordering::Relaxed), 0);
        c.stop();
    }

    #[test]
    fn persistent_fault_recovers_via_restart() {
        let fx = Fixture::new(false, 1);
        let c = fast_coordinator(&fx);
        c.on_failure(&report("kvs.compaction", FailureKind::Stuck));
        assert!(c.wait_idle(Duration::from_secs(5)));
        let i = &c.incidents()[0];
        assert_eq!(i.outcome, RecoveryOutcome::VerifiedRecovered);
        assert!(i.verified);
        assert_eq!(i.retries, 2, "retry rung exhausted first");
        assert_eq!(i.restarts, 1);
        assert_eq!(fx.restarts.load(Ordering::Relaxed), 1);
        assert!(fx.degraded.lock().is_empty());
        c.stop();
    }

    #[test]
    fn corruption_skips_straight_to_restart() {
        let fx = Fixture::new(false, 1);
        let c = fast_coordinator(&fx);
        c.on_failure(&report("kvs.index", FailureKind::Corruption));
        assert!(c.wait_idle(Duration::from_secs(5)));
        let i = &c.incidents()[0];
        assert_eq!(i.outcome, RecoveryOutcome::VerifiedRecovered);
        assert_eq!(i.retries, 0, "corrupted state never heals by waiting");
        assert_eq!(i.restarts, 1);
        c.stop();
    }

    #[test]
    fn unrecoverable_component_degrades() {
        let fx = Fixture::new(false, u64::MAX);
        let c = fast_coordinator(&fx);
        c.on_failure(&report("kvs.replication", FailureKind::Stuck));
        assert!(c.wait_idle(Duration::from_secs(10)));
        let i = &c.incidents()[0];
        assert_eq!(i.outcome, RecoveryOutcome::Degraded);
        assert!(!i.verified);
        assert_eq!(i.restarts, 2, "restart budget exhausted");
        assert_eq!(
            fx.degraded.lock().as_slice(),
            &[ComponentId::new("kvs.replication")]
        );
        // MTTR is finite and recorded even for non-recovered outcomes.
        assert!(i.mttr_ms > 0);
        c.stop();
    }

    #[test]
    fn degrade_disallowed_escalates() {
        let fx = Fixture::new(false, u64::MAX);
        let escalated = Arc::new(AtomicU64::new(0));
        let esc = Arc::clone(&escalated);
        let mut policy = RecoveryPolicy::fast();
        policy.allow_degrade = false;
        let c = RecoveryCoordinator::builder(RealClock::shared(), fx.surface())
            .default_policy(policy)
            .escalation(Arc::new(CallbackAction::new(move |_r: &FailureReport| {
                esc.fetch_add(1, Ordering::Relaxed);
            })))
            .start();
        c.on_failure(&report("minizk.broadcast", FailureKind::Stuck));
        assert!(c.wait_idle(Duration::from_secs(10)));
        let i = &c.incidents()[0];
        assert_eq!(i.outcome, RecoveryOutcome::Escalated);
        assert_eq!(escalated.load(Ordering::Relaxed), 1);
        assert!(fx.degraded.lock().is_empty());
        c.stop();
    }

    #[test]
    fn flapping_component_is_pinned_degraded() {
        // Heals on every restart but immediately gets blamed again: after
        // flap_threshold incidents the breaker pins it.
        let fx = Fixture::new(false, u64::MAX);
        let mut policy = RecoveryPolicy::fast();
        policy.max_retries = 0;
        policy.max_restarts = 0; // straight to degrade each incident
        policy.flap_threshold = 3;
        let c = RecoveryCoordinator::builder(RealClock::shared(), fx.surface())
            .default_policy(policy)
            .start();
        for _ in 0..5 {
            c.on_failure(&report("kvs.flusher", FailureKind::Error));
            assert!(c.wait_idle(Duration::from_secs(5)));
        }
        assert_eq!(c.pinned_components(), vec![ComponentId::new("kvs.flusher")]);
        let incidents = c.incidents();
        let pinned: Vec<&Incident> = incidents.iter().filter(|i| i.pinned).collect();
        assert_eq!(pinned.len(), 1, "breaker trips exactly once");
        assert_eq!(pinned[0].outcome, RecoveryOutcome::Degraded);
        // Reports after pinning are counted, not laddered.
        assert!(c.pinned_reports() >= 1);
        c.stop();
    }

    #[test]
    fn wedged_verifier_cannot_hang_the_coordinator() {
        let fx = Fixture::new(false, u64::MAX);
        let mut policy = RecoveryPolicy::fast();
        policy.verify_timeout = Duration::from_millis(50);
        policy.max_retries = 1;
        policy.max_restarts = 1;
        // Verifier wedges forever: every verification must time out and the
        // ladder still reach a terminal state quickly.
        let surface = RecoverySurface {
            verifier: Arc::new(|c: &ComponentId| {
                let comp = c.clone();
                Some(Box::new(FnChecker::new("wedged-verify", comp, || loop {
                    std::thread::sleep(Duration::from_millis(10));
                })) as Box<dyn Checker>)
            }),
            ..fx.surface()
        };
        let c = RecoveryCoordinator::builder(RealClock::shared(), surface)
            .default_policy(policy)
            .start();
        let t0 = std::time::Instant::now();
        c.on_failure(&report("kvs.api", FailureKind::Stuck));
        assert!(c.wait_idle(Duration::from_secs(5)));
        assert!(t0.elapsed() < Duration::from_secs(3));
        assert_eq!(c.incidents()[0].outcome, RecoveryOutcome::Degraded);
        c.stop();
    }

    #[test]
    fn reports_during_ladder_are_coalesced() {
        let fx = Fixture::new(false, 1);
        let c = fast_coordinator(&fx);
        c.on_failure(&report("kvs.wal", FailureKind::Stuck));
        // Pile more blame onto the same component while the ladder runs.
        for _ in 0..3 {
            std::thread::sleep(Duration::from_millis(10));
            c.on_failure(&report("kvs.wal", FailureKind::Stuck));
        }
        assert!(c.wait_idle(Duration::from_secs(5)));
        let incidents = c.incidents();
        assert_eq!(incidents.len(), 1, "same-component reports coalesce");
        assert!(incidents[0].reports >= 2);
        c.stop();
    }

    #[test]
    fn telemetry_records_rungs_mttr_and_flight() {
        let fx = Fixture::new(false, 1);
        let registry = TelemetryRegistry::shared();
        let c = RecoveryCoordinator::builder(RealClock::shared(), fx.surface())
            .default_policy(RecoveryPolicy::fast())
            .telemetry(Arc::clone(&registry))
            .seed(7)
            .start();
        c.on_failure(&report("kvs.compaction", FailureKind::Stuck));
        assert!(c.wait_idle(Duration::from_secs(5)));
        c.stop();

        let snap = registry.snapshot();
        assert_eq!(
            snap.counter(RECOVERY_OUTCOME_METRIC, "verified-recovered"),
            Some(1)
        );
        assert_eq!(snap.counter(RECOVERY_RUNG_METRIC, "retry"), Some(2));
        assert_eq!(snap.counter(RECOVERY_RUNG_METRIC, "restart"), Some(1));
        assert_eq!(snap.counter(RECOVERY_VERIFICATION_METRIC, "fail"), Some(2));
        assert_eq!(snap.counter(RECOVERY_VERIFICATION_METRIC, "pass"), Some(1));
        let mttr = snap
            .histogram(RECOVERY_MTTR_METRIC, "kvs.compaction")
            .expect("mttr histogram");
        assert_eq!(mttr.count, 1);
        let kinds: Vec<&str> = snap.flight.iter().map(|e| e.kind.as_str()).collect();
        assert!(kinds.contains(&"incident-open"));
        assert!(kinds.contains(&"incident-close"));
    }

    #[test]
    fn missing_verifier_fails_closed() {
        let fx = Fixture::new(true, u64::MAX);
        let surface = RecoverySurface {
            verifier: Arc::new(|_c: &ComponentId| None),
            ..fx.surface()
        };
        let c = RecoveryCoordinator::builder(RealClock::shared(), surface)
            .default_policy(RecoveryPolicy::fast())
            .start();
        c.on_failure(&report("kvs.listener", FailureKind::Error));
        assert!(c.wait_idle(Duration::from_secs(10)));
        // Healthy component, but nothing can *prove* it: never marked
        // verified-recovered.
        let i = &c.incidents()[0];
        assert_ne!(i.outcome, RecoveryOutcome::VerifiedRecovered);
        assert!(!i.verified);
        c.stop();
    }
}
