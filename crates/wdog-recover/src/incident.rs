//! Incident records: one blamed component's trip through the recovery
//! ladder, with full MTTR accounting.

use serde::{Deserialize, Serialize};

/// The terminal state an incident reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryOutcome {
    /// A mitigation was applied and the blaming check passed again.
    VerifiedRecovered,
    /// The component's workload was shed; the process runs without it.
    Degraded,
    /// Nothing on the ladder helped; handed to the escalation action.
    Escalated,
}

impl RecoveryOutcome {
    /// Short stable label used in campaign artifacts.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryOutcome::VerifiedRecovered => "verified-recovered",
            RecoveryOutcome::Degraded => "degraded",
            RecoveryOutcome::Escalated => "escalated",
        }
    }
}

/// One closed incident: opened at the first blaming report, closed when the
/// ladder reached a terminal state.
///
/// MTTR is defined as `closed_at_ms - opened_at_ms` and is recorded for
/// *every* outcome — a degraded or escalated component still has a finite
/// time-to-terminal, which is what a campaign must bound.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Incident {
    /// Blamed component.
    pub component: String,
    /// Checker that filed the opening report.
    pub checker: String,
    /// Failure class label of the opening report (`stuck`/`error`/...).
    pub kind: String,
    /// Coordinator clock time when the first blaming report arrived.
    pub opened_at_ms: u64,
    /// Coordinator clock time when the terminal state was reached.
    pub closed_at_ms: u64,
    /// Mean-time-to-repair for this incident: `closed - opened`.
    pub mttr_ms: u64,
    /// Reports coalesced into this incident (including the opener).
    pub reports: u64,
    /// Wait-and-recheck attempts spent.
    pub retries: u32,
    /// Component restarts attempted.
    pub restarts: u32,
    /// Verification re-checks dispatched.
    pub verifications: u32,
    /// Whether the final verification re-check passed.
    pub verified: bool,
    /// Terminal state.
    pub outcome: RecoveryOutcome,
    /// Whether the flap circuit breaker pinned this component.
    pub pinned: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_labels_are_stable() {
        assert_eq!(
            RecoveryOutcome::VerifiedRecovered.label(),
            "verified-recovered"
        );
        assert_eq!(RecoveryOutcome::Degraded.label(), "degraded");
        assert_eq!(RecoveryOutcome::Escalated.label(), "escalated");
    }

    #[test]
    fn incident_serializes_roundtrip() {
        let i = Incident {
            component: "kvs.compaction".into(),
            checker: "kvs.compact_once_checker".into(),
            kind: "stuck".into(),
            opened_at_ms: 100,
            closed_at_ms: 350,
            mttr_ms: 250,
            reports: 3,
            retries: 1,
            restarts: 1,
            verifications: 2,
            verified: true,
            outcome: RecoveryOutcome::VerifiedRecovered,
            pinned: false,
        };
        let json = serde_json::to_string(&i).unwrap();
        let back: Incident = serde_json::from_str(&json).unwrap();
        assert_eq!(back, i);
    }
}
