//! Closed-loop recovery for watchdog detections.
//!
//! The paper's driver does not stop at detection: it "applies an action to
//! the main program accordingly" (§3.1), and §5.2 argues that *pinpointed*
//! detection is what makes recovery cheap — restart one component or replace
//! one corrupted object instead of bouncing the whole process. This crate is
//! that missing half. A [`RecoveryCoordinator`] consumes
//! [`FailureReport`](wdog_core::report::FailureReport)s as a driver
//! [`Action`](wdog_core::action::Action) and walks each blamed component up
//! a policy ladder:
//!
//! 1. **Retry** — wait out a transient with bounded, deterministic-jitter
//!    exponential backoff, then re-check;
//! 2. **Restart** — component-scoped restart through
//!    [`Restartable`](wdog_core::action::Restartable), then re-check;
//! 3. **Degrade** — shed the component's workload through
//!    [`Degradable`](wdog_core::action::Degradable) so the rest of the
//!    process keeps running;
//! 4. **Escalate** — hand off to an operator action; nothing on the ladder
//!    helped.
//!
//! Every rung is **verified**: the coordinator re-dispatches a fresh
//! instance of the blaming check (via the target's
//! [`RecoverySurface`]) and only marks the component recovered when the
//! re-check passes. Chronically flapping components trip a circuit breaker
//! and are pinned in degraded mode. Each incident records full MTTR
//! accounting — opened at first blame, closed at its terminal state — so
//! campaigns can report time-to-repair per failure class.

pub mod coordinator;
pub mod incident;
pub mod policy;
pub mod prelude;

pub use coordinator::{RecoveryCoordinator, RecoverySurface, VerifierFactory};
pub use incident::{Incident, RecoveryOutcome};
pub use policy::{BackoffPolicy, RecoveryPolicy};
