//! Per-component recovery policies: how far up the ladder to climb and how
//! long to wait between attempts.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use wdog_base::rng::derive_seed;

/// Bounded exponential backoff with deterministic jitter.
///
/// The delay before retry `attempt` is `base * factor^attempt`, capped at
/// `max`, plus a jitter fraction derived from the incident seed — the same
/// seed always produces the same schedule, so recovery campaigns are exactly
/// reproducible while concurrent incidents still de-synchronize.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackoffPolicy {
    /// Delay before the first retry.
    pub base: Duration,
    /// Multiplier applied per attempt.
    pub factor: f64,
    /// Upper bound on any single delay.
    pub max: Duration,
    /// Fraction of the computed delay added as deterministic jitter
    /// (`0.0` disables).
    pub jitter_frac: f64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        Self {
            base: Duration::from_millis(50),
            factor: 2.0,
            max: Duration::from_secs(2),
            jitter_frac: 0.25,
        }
    }
}

impl BackoffPolicy {
    /// Returns the delay before retry `attempt` (0-based) for an incident
    /// identified by `seed`.
    pub fn delay(&self, attempt: u32, seed: u64) -> Duration {
        let exp = self.factor.powi(attempt.min(16) as i32);
        let raw = self.base.mul_f64(exp).min(self.max);
        if self.jitter_frac <= 0.0 {
            return raw;
        }
        let h = derive_seed(seed, &format!("backoff-{attempt}"));
        let frac = (h >> 11) as f64 / (1u64 << 53) as f64;
        (raw + raw.mul_f64(self.jitter_frac * frac)).min(self.max)
    }
}

/// How the coordinator treats one component's failures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Wait-and-recheck attempts before restarting (transients often clear
    /// on their own; liveness faults on shared substrates usually do not).
    pub max_retries: u32,
    /// Backoff schedule for the retry rung.
    pub backoff: BackoffPolicy,
    /// Component restarts attempted before degrading.
    pub max_restarts: u32,
    /// Settle time after a restart before the verification re-check.
    pub settle: Duration,
    /// Whether the degrade rung is permitted for this component.
    pub allow_degrade: bool,
    /// How long a verification re-check may run before it is abandoned
    /// (a wedged verifier must not wedge the coordinator).
    pub verify_timeout: Duration,
    /// Incidents within [`RecoveryPolicy::flap_window`] that trip the
    /// circuit breaker and pin the component in degraded mode.
    pub flap_threshold: u32,
    /// Window over which reopened incidents count as flapping.
    pub flap_window: Duration,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 2,
            backoff: BackoffPolicy::default(),
            max_restarts: 2,
            settle: Duration::from_millis(100),
            allow_degrade: true,
            verify_timeout: Duration::from_secs(2),
            flap_threshold: 4,
            flap_window: Duration::from_secs(60),
        }
    }
}

impl RecoveryPolicy {
    /// A fast policy for tests and tightly-timed campaigns.
    pub fn fast() -> Self {
        Self {
            max_retries: 2,
            backoff: BackoffPolicy {
                base: Duration::from_millis(20),
                factor: 2.0,
                max: Duration::from_millis(200),
                jitter_frac: 0.25,
            },
            max_restarts: 2,
            settle: Duration::from_millis(30),
            allow_degrade: true,
            verify_timeout: Duration::from_millis(500),
            flap_threshold: 4,
            flap_window: Duration::from_secs(30),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let b = BackoffPolicy {
            base: Duration::from_millis(10),
            factor: 2.0,
            max: Duration::from_millis(100),
            jitter_frac: 0.0,
        };
        assert_eq!(b.delay(0, 1), Duration::from_millis(10));
        assert_eq!(b.delay(1, 1), Duration::from_millis(20));
        assert_eq!(b.delay(2, 1), Duration::from_millis(40));
        assert_eq!(b.delay(5, 1), Duration::from_millis(100));
        assert_eq!(b.delay(30, 1), Duration::from_millis(100));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let b = BackoffPolicy {
            base: Duration::from_millis(40),
            factor: 2.0,
            max: Duration::from_secs(1),
            jitter_frac: 0.5,
        };
        for attempt in 0..6 {
            let d1 = b.delay(attempt, 42);
            let d2 = b.delay(attempt, 42);
            assert_eq!(d1, d2, "same seed must give the same schedule");
            let raw = Duration::from_millis(40 * (1 << attempt));
            assert!(d1 >= raw.min(b.max));
            assert!(d1 <= raw.mul_f64(1.5).min(b.max));
        }
        // Different incidents de-synchronize.
        assert_ne!(b.delay(0, 1), b.delay(0, 2));
    }

    #[test]
    fn policy_serializes_roundtrip() {
        let p = RecoveryPolicy::fast();
        let json = serde_json::to_string(&p).unwrap();
        let back: RecoveryPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
