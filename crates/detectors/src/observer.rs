//! Panorama-style observers: requesters as evidence sources.
//!
//! Panorama "converts any requester of a monitored process into a logical
//! observer and captures error evidence in the request paths" (§1). Here,
//! workload clients report the outcome of each real request to an
//! [`ObserverHub`]; the hub suspects the target when the recent error rate
//! crosses a threshold. As the paper notes, the observers "cannot identify
//! why the failure occurs or isolate which part of the failing process is
//! problematic" — the verdict carries only the observed symptom.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use wdog_base::clock::SharedClock;

use crate::api::{Detector, Verdict};

#[derive(Debug, Clone)]
struct Evidence {
    ok: bool,
    at: Duration,
}

struct HubInner {
    window: Duration,
    min_samples: usize,
    error_threshold: f64,
    evidence: Mutex<VecDeque<Evidence>>,
    clock: SharedClock,
}

/// Aggregates request outcomes reported by real requesters.
#[derive(Clone)]
pub struct ObserverHub {
    inner: Arc<HubInner>,
}

impl ObserverHub {
    /// Creates a hub judging over `window`; suspicion requires at least
    /// `min_samples` observations and an error rate above
    /// `error_threshold`.
    pub fn new(
        clock: SharedClock,
        window: Duration,
        min_samples: usize,
        error_threshold: f64,
    ) -> Self {
        Self {
            inner: Arc::new(HubInner {
                window,
                min_samples: min_samples.max(1),
                error_threshold,
                evidence: Mutex::new(VecDeque::new()),
                clock,
            }),
        }
    }

    /// A requester reports one request outcome.
    pub fn report(&self, ok: bool) {
        let now = self.inner.clock.now();
        let mut ev = self.inner.evidence.lock();
        ev.push_back(Evidence { ok, at: now });
        let window = self.inner.window;
        while ev
            .front()
            .is_some_and(|e| now.saturating_sub(e.at) > window)
        {
            ev.pop_front();
        }
    }

    /// Returns `(observations, errors)` within the window.
    pub fn counts(&self) -> (usize, usize) {
        let now = self.inner.clock.now();
        let ev = self.inner.evidence.lock();
        let fresh: Vec<&Evidence> = ev
            .iter()
            .filter(|e| now.saturating_sub(e.at) <= self.inner.window)
            .collect();
        let errors = fresh.iter().filter(|e| !e.ok).count();
        (fresh.len(), errors)
    }
}

impl Detector for ObserverHub {
    fn name(&self) -> &str {
        "observer"
    }

    fn verdict(&self) -> Verdict {
        let (n, errors) = self.counts();
        if n < self.inner.min_samples {
            return Verdict::Healthy;
        }
        let rate = errors as f64 / n as f64;
        if rate > self.inner.error_threshold {
            Verdict::Suspected {
                reason: format!("{errors}/{n} recent requests failed"),
            }
        } else {
            Verdict::Healthy
        }
    }
}

impl std::fmt::Debug for ObserverHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (n, e) = self.counts();
        f.debug_struct("ObserverHub")
            .field("observations", &n)
            .field("errors", &e)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdog_base::clock::VirtualClock;

    fn hub(clock: Arc<VirtualClock>) -> ObserverHub {
        ObserverHub::new(clock, Duration::from_secs(10), 5, 0.5)
    }

    #[test]
    fn too_few_samples_stay_healthy() {
        let clock = VirtualClock::shared();
        let h = hub(clock);
        for _ in 0..3 {
            h.report(false);
        }
        assert_eq!(h.verdict(), Verdict::Healthy);
    }

    #[test]
    fn high_error_rate_is_suspected() {
        let clock = VirtualClock::shared();
        let h = hub(clock);
        for _ in 0..4 {
            h.report(false);
        }
        for _ in 0..2 {
            h.report(true);
        }
        assert!(h.verdict().is_suspected());
    }

    #[test]
    fn healthy_traffic_is_healthy() {
        let clock = VirtualClock::shared();
        let h = hub(clock);
        for i in 0..20 {
            h.report(i % 10 != 0); // 10% errors, below the 50% threshold.
        }
        assert_eq!(h.verdict(), Verdict::Healthy);
    }

    #[test]
    fn evidence_ages_out_of_window() {
        let clock = VirtualClock::shared();
        let h = hub(Arc::clone(&clock));
        for _ in 0..10 {
            h.report(false);
        }
        assert!(h.verdict().is_suspected());
        clock.advance(Duration::from_secs(11));
        assert_eq!(h.counts().0, 0);
        assert_eq!(h.verdict(), Verdict::Healthy);
    }

    #[test]
    fn clones_share_evidence() {
        let clock = VirtualClock::shared();
        let h = hub(clock);
        let h2 = h.clone();
        for _ in 0..6 {
            h.report(false);
        }
        assert!(h2.verdict().is_suspected());
    }
}
