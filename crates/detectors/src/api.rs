//! The uniform detector interface campaigns poll.

use serde::{Deserialize, Serialize};

/// What a detector currently believes about its target.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// No evidence of failure.
    Healthy,
    /// The target is suspected faulty.
    Suspected {
        /// Why — as much as this detector can say.
        reason: String,
    },
}

impl Verdict {
    /// Returns `true` for [`Verdict::Suspected`].
    pub fn is_suspected(&self) -> bool {
        matches!(self, Verdict::Suspected { .. })
    }
}

/// A pollable failure detector.
pub trait Detector: Send {
    /// Short stable name for tables (`heartbeat`, `probe`, `observer`).
    fn name(&self) -> &str;

    /// Current belief about the target.
    fn verdict(&self) -> Verdict;

    /// Stops any background activity; default no-op.
    fn stop(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_classification() {
        assert!(!Verdict::Healthy.is_suspected());
        assert!(Verdict::Suspected { reason: "x".into() }.is_suspected());
    }
}
