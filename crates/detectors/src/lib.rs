//! Extrinsic failure-detector baselines (paper §1–2 and Table 1).
//!
//! These are the detectors the paper argues are *insufficient* for gray
//! failures, implemented faithfully so experiments E1 and E4 can measure
//! the gap:
//!
//! - [`heartbeat::HeartbeatDetector`] — the classic crash failure detector:
//!   a process is healthy as long as it "does something periodically based
//!   on the contract with the external detector". Catches fail-stop,
//!   nothing finer.
//! - [`probe_client::ExternalProbe`] — an application spy / `mod_watchdog`
//!   style client issuing end-to-end requests from outside the process.
//! - [`observer::ObserverHub`] — Panorama-style: real requesters report the
//!   outcome of their own requests as evidence; the hub aggregates error
//!   rates per component. Enhances detection but "cannot identify why the
//!   failure occurs or isolate which part of the failing process is
//!   problematic".
//!
//! All three expose the uniform [`api::Detector`] interface so campaign
//! runners can poll them interchangeably.

pub mod api;
pub mod heartbeat;
pub mod observer;
pub mod probe_client;

pub use api::{Detector, Verdict};
pub use heartbeat::HeartbeatDetector;
pub use observer::ObserverHub;
pub use probe_client::ExternalProbe;
