//! The timeout-based crash failure detector.
//!
//! "A monitored process is assumed to be working as long as it does
//! something periodically based on the contract with the external detector,
//! e.g., replies to pings, sends heartbeat messages, or maintains sessions.
//! This works fine for fail-stop failures, but it cannot detect complex
//! gray failures" (§1). [`HeartbeatDetector`] samples a liveness contract —
//! a closure answering "did the process beat?" — on its own thread and
//! suspects the target after `suspect_after` without a beat.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use wdog_base::clock::SharedClock;

use crate::api::{Detector, Verdict};

/// The liveness contract: returns `true` if the target beat this round.
pub type BeatFn = Arc<dyn Fn() -> bool + Send + Sync>;

/// A crash failure detector polling a liveness contract.
pub struct HeartbeatDetector {
    clock: SharedClock,
    suspect_after: Duration,
    last_beat: Arc<Mutex<Option<Duration>>>,
    running: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl HeartbeatDetector {
    /// Starts polling `beat` every `interval`; suspects after
    /// `suspect_after` without a successful beat.
    pub fn start(
        clock: SharedClock,
        interval: Duration,
        suspect_after: Duration,
        beat: BeatFn,
    ) -> Self {
        let last_beat = Arc::new(Mutex::new(Some(clock.now())));
        let running = Arc::new(AtomicBool::new(true));
        let thread = {
            let clock = Arc::clone(&clock);
            let last = Arc::clone(&last_beat);
            let run = Arc::clone(&running);
            std::thread::Builder::new()
                .name("heartbeat-fd".into())
                .spawn(move || {
                    while run.load(Ordering::Relaxed) {
                        if beat() {
                            *last.lock() = Some(clock.now());
                        }
                        clock.sleep(interval);
                    }
                })
                .expect("spawn heartbeat detector")
        };
        Self {
            clock,
            suspect_after,
            last_beat,
            running,
            thread: Some(thread),
        }
    }
}

impl Detector for HeartbeatDetector {
    fn name(&self) -> &str {
        "heartbeat"
    }

    fn verdict(&self) -> Verdict {
        let last = *self.last_beat.lock();
        match last {
            Some(t) if self.clock.now().saturating_sub(t) <= self.suspect_after => Verdict::Healthy,
            _ => Verdict::Suspected {
                reason: format!("no heartbeat within {} ms", self.suspect_after.as_millis()),
            },
        }
    }

    fn stop(&mut self) {
        self.running.store(false, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HeartbeatDetector {
    fn drop(&mut self) {
        Detector::stop(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdog_base::clock::RealClock;

    #[test]
    fn beating_target_stays_healthy() {
        let clock = RealClock::shared();
        let d = HeartbeatDetector::start(
            clock,
            Duration::from_millis(10),
            Duration::from_millis(200),
            Arc::new(|| true),
        );
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(d.verdict(), Verdict::Healthy);
    }

    #[test]
    fn silent_target_is_suspected() {
        let clock = RealClock::shared();
        let alive = Arc::new(AtomicBool::new(true));
        let a2 = Arc::clone(&alive);
        let d = HeartbeatDetector::start(
            clock,
            Duration::from_millis(10),
            Duration::from_millis(100),
            Arc::new(move || a2.load(Ordering::Relaxed)),
        );
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(d.verdict(), Verdict::Healthy);
        alive.store(false, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(300));
        assert!(d.verdict().is_suspected());
    }

    #[test]
    fn recovery_clears_suspicion() {
        let clock = RealClock::shared();
        let alive = Arc::new(AtomicBool::new(false));
        let a2 = Arc::clone(&alive);
        let d = HeartbeatDetector::start(
            clock,
            Duration::from_millis(10),
            Duration::from_millis(100),
            Arc::new(move || a2.load(Ordering::Relaxed)),
        );
        std::thread::sleep(Duration::from_millis(250));
        assert!(d.verdict().is_suspected());
        alive.store(true, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(d.verdict(), Verdict::Healthy);
    }
}
