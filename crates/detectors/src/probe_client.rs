//! The external probe client ("application spy").
//!
//! An extrinsic prober issuing real end-to-end requests against the
//! target's public API, in the style of Falcon's application spies and
//! Apache `mod_watchdog`. It suspects the target after `fail_threshold`
//! consecutive probe failures. Like all API-level detection, it sees only
//! what the API surface shows and localizes nothing.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use wdog_base::clock::SharedClock;
use wdog_base::error::BaseResult;

use crate::api::{Detector, Verdict};

/// The probe contract: one end-to-end request.
pub type ProbeFn = Arc<dyn Fn() -> BaseResult<()> + Send + Sync>;

/// An extrinsic probing client.
pub struct ExternalProbe {
    consecutive_failures: Arc<AtomicU64>,
    last_error: Arc<Mutex<Option<String>>>,
    fail_threshold: u64,
    probes: Arc<AtomicU64>,
    running: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ExternalProbe {
    /// Starts probing every `interval`; suspects after `fail_threshold`
    /// consecutive failures.
    pub fn start(
        clock: SharedClock,
        interval: Duration,
        fail_threshold: u64,
        probe: ProbeFn,
    ) -> Self {
        let consecutive_failures = Arc::new(AtomicU64::new(0));
        let last_error = Arc::new(Mutex::new(None));
        let probes = Arc::new(AtomicU64::new(0));
        let running = Arc::new(AtomicBool::new(true));
        let thread = {
            let fails = Arc::clone(&consecutive_failures);
            let last = Arc::clone(&last_error);
            let count = Arc::clone(&probes);
            let run = Arc::clone(&running);
            std::thread::Builder::new()
                .name("external-probe".into())
                .spawn(move || {
                    while run.load(Ordering::Relaxed) {
                        match probe() {
                            Ok(()) => {
                                fails.store(0, Ordering::Relaxed);
                                *last.lock() = None;
                            }
                            Err(e) => {
                                fails.fetch_add(1, Ordering::Relaxed);
                                *last.lock() = Some(e.to_string());
                            }
                        }
                        count.fetch_add(1, Ordering::Relaxed);
                        clock.sleep(interval);
                    }
                })
                .expect("spawn external probe")
        };
        Self {
            consecutive_failures,
            last_error,
            fail_threshold: fail_threshold.max(1),
            probes,
            running,
            thread: Some(thread),
        }
    }

    /// Returns how many probes have run.
    pub fn probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }
}

impl Detector for ExternalProbe {
    fn name(&self) -> &str {
        "probe"
    }

    fn verdict(&self) -> Verdict {
        let fails = self.consecutive_failures.load(Ordering::Relaxed);
        if fails >= self.fail_threshold {
            Verdict::Suspected {
                reason: self
                    .last_error
                    .lock()
                    .clone()
                    .unwrap_or_else(|| format!("{fails} consecutive probe failures")),
            }
        } else {
            Verdict::Healthy
        }
    }

    fn stop(&mut self) {
        self.running.store(false, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ExternalProbe {
    fn drop(&mut self) {
        Detector::stop(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdog_base::clock::RealClock;
    use wdog_base::error::BaseError;

    #[test]
    fn succeeding_probes_stay_healthy() {
        let p = ExternalProbe::start(
            RealClock::shared(),
            Duration::from_millis(5),
            2,
            Arc::new(|| Ok(())),
        );
        std::thread::sleep(Duration::from_millis(80));
        assert!(p.probes() >= 3);
        assert_eq!(p.verdict(), Verdict::Healthy);
    }

    #[test]
    fn consecutive_failures_trigger_suspicion() {
        let failing = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&failing);
        let p = ExternalProbe::start(
            RealClock::shared(),
            Duration::from_millis(5),
            3,
            Arc::new(move || {
                if f2.load(Ordering::Relaxed) {
                    Err(BaseError::Timeout {
                        what: "probe".into(),
                        after_ms: 1,
                    })
                } else {
                    Ok(())
                }
            }),
        );
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(p.verdict(), Verdict::Healthy);
        failing.store(true, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(100));
        assert!(p.verdict().is_suspected());
        // One success resets the streak.
        failing.store(false, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(p.verdict(), Verdict::Healthy);
    }
}
