//! Checksummed block storage across volumes.
//!
//! Blocks are stored one file per block, `[crc32 LE][data]`, under
//! `blocks/<volume>/<block-id>`. Volumes model independent disks: a fault
//! scoped to one volume's path prefix is a *partial* disk failure — some
//! blocks unreachable, the rest healthy — which is exactly the IRON-paper
//! failure class the DataNode's checkers exist to catch.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use simio::disk::SimDisk;

use wdog_base::checksum::crc32;
use wdog_base::error::{BaseError, BaseResult};

/// Block storage over a set of volumes on one simulated disk.
pub struct BlockStore {
    disk: Arc<SimDisk>,
    volumes: Vec<String>,
    next_volume: AtomicU64,
}

impl BlockStore {
    /// Creates a store with `volumes` named `vol0..volN` on `disk`.
    pub fn new(disk: Arc<SimDisk>, volumes: usize) -> Self {
        Self {
            disk,
            volumes: (0..volumes.max(1)).map(|v| format!("vol{v}")).collect(),
            next_volume: AtomicU64::new(0),
        }
    }

    /// Returns the volume names.
    pub fn volumes(&self) -> &[String] {
        &self.volumes
    }

    /// Returns the path of `block_id` on `volume`.
    pub fn block_path(volume: &str, block_id: u64) -> String {
        format!("blocks/{volume}/blk_{block_id:012}")
    }

    /// Returns the directory prefix of a volume.
    pub fn volume_prefix(volume: &str) -> String {
        format!("blocks/{volume}/")
    }

    /// Picks the next volume round-robin.
    pub fn pick_volume(&self) -> &str {
        let i = self.next_volume.fetch_add(1, Ordering::Relaxed) as usize;
        &self.volumes[i % self.volumes.len()]
    }

    /// Writes a block durably to `volume`; returns its path.
    // wdog: resource blocks/
    pub fn write_block(&self, volume: &str, block_id: u64, data: &[u8]) -> BaseResult<String> {
        let path = Self::block_path(volume, block_id);
        let mut file = Vec::with_capacity(4 + data.len());
        file.extend_from_slice(&crc32(data).to_le_bytes());
        file.extend_from_slice(data);
        self.disk.write_all(&path, &file)?;
        self.disk.fsync(&path)?;
        Ok(path)
    }

    /// Reads and validates a block from `volume`.
    pub fn read_block(&self, volume: &str, block_id: u64) -> BaseResult<Vec<u8>> {
        let path = Self::block_path(volume, block_id);
        let raw = self.disk.read(&path)?;
        if raw.len() < 4 {
            return Err(BaseError::Corruption(format!("{path}: truncated block")));
        }
        let expected = u32::from_le_bytes(raw[..4].try_into().unwrap());
        let data = &raw[4..];
        if crc32(data) != expected {
            return Err(BaseError::Corruption(format!(
                "{path}: block checksum mismatch"
            )));
        }
        Ok(data.to_vec())
    }

    /// Validates the checksum of the block at `path` without copying out.
    // wdog: resource blocks/
    pub fn validate_path(&self, path: &str) -> BaseResult<()> {
        let raw = self.disk.read(path)?;
        if raw.len() < 4 {
            return Err(BaseError::Corruption(format!("{path}: truncated block")));
        }
        let expected = u32::from_le_bytes(raw[..4].try_into().unwrap());
        if crc32(&raw[4..]) != expected {
            return Err(BaseError::Corruption(format!(
                "{path}: block checksum mismatch"
            )));
        }
        Ok(())
    }

    /// Lists the block paths on `volume`, sorted.
    pub fn list_volume(&self, volume: &str) -> Vec<String> {
        self.disk.list(&Self::volume_prefix(volume))
    }

    /// Returns every `(volume, path)` pair across volumes.
    pub fn list_all(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for v in &self.volumes {
            for p in self.list_volume(v) {
                out.push((v.clone(), p));
            }
        }
        out
    }

    /// Returns the underlying disk (for checkers and fault injection).
    pub fn disk(&self) -> &Arc<SimDisk> {
        &self.disk
    }
}

impl std::fmt::Debug for BlockStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockStore")
            .field("volumes", &self.volumes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> BlockStore {
        BlockStore::new(SimDisk::for_tests(), 3)
    }

    #[test]
    fn write_read_roundtrip() {
        let s = store();
        s.write_block("vol0", 7, b"block-data").unwrap();
        assert_eq!(s.read_block("vol0", 7).unwrap(), b"block-data");
    }

    #[test]
    fn round_robin_spreads_volumes() {
        let s = store();
        let picks: Vec<&str> = (0..6).map(|_| s.pick_volume()).collect();
        assert_eq!(picks, vec!["vol0", "vol1", "vol2", "vol0", "vol1", "vol2"]);
    }

    #[test]
    fn missing_block_is_not_found() {
        let s = store();
        assert!(matches!(
            s.read_block("vol0", 99),
            Err(BaseError::NotFound(_))
        ));
    }

    #[test]
    fn corrupted_block_detected_on_read_and_validate() {
        let s = store();
        let path = s.write_block("vol1", 3, b"AAAA").unwrap();
        let mut raw = s.disk().read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x01;
        s.disk().write_all(&path, &raw).unwrap();
        assert!(matches!(
            s.read_block("vol1", 3),
            Err(BaseError::Corruption(_))
        ));
        assert!(s.validate_path(&path).is_err());
    }

    #[test]
    fn listing_is_per_volume() {
        let s = store();
        s.write_block("vol0", 1, b"x").unwrap();
        s.write_block("vol0", 2, b"y").unwrap();
        s.write_block("vol2", 3, b"z").unwrap();
        assert_eq!(s.list_volume("vol0").len(), 2);
        assert_eq!(s.list_volume("vol1").len(), 0);
        assert_eq!(s.list_all().len(), 3);
    }

    #[test]
    fn block_paths_are_stable_and_sortable() {
        assert_eq!(
            BlockStore::block_path("vol0", 42),
            "blocks/vol0/blk_000000000042"
        );
        assert!(BlockStore::block_path("vol0", 9) < BlockStore::block_path("vol0", 10));
    }
}
