//! The miniblock recovery surface: DataNode component restarts, shedding,
//! and verification re-checks for the closed-loop recovery coordinator.
//!
//! All three DataNode background loops (heartbeat, block report, scanner)
//! are individually restartable — each owns only a flag and rebuilds its
//! working set from `DnShared` on respawn, the easy case for §5.2 component
//! restart. Ingest has no background thread, so block-path blame recovers
//! by retry-and-verify against the volume itself.

use std::sync::Arc;

use wdog_base::ids::ComponentId;

use wdog_core::prelude::*;

use wdog_target::{RecoverySurface, VerifierFactory};

use crate::datanode::DataNode;
use crate::namenode::{NnMsg, NAMENODE_ADDR};

/// Volume path the disk verifier probes (skipped by the scanner).
const RECOVER_PROBE_PATH: &str = "blocks/vol1/__wd_recover";

fn fail(kind: FailureKind, component: &ComponentId, detail: String) -> CheckStatus {
    CheckStatus::Fail(CheckFailure::new(
        kind,
        FaultLocation::new(component.clone(), "recovery_verify"),
        detail,
    ))
}

/// Builds the full [`RecoverySurface`] for a running DataNode.
pub fn recovery_surface(datanode: &Arc<DataNode>) -> RecoverySurface {
    struct DnRestart(Arc<DataNode>);
    impl Restartable for DnRestart {
        fn restart(&self, component: &ComponentId) {
            self.0.restart_component(component.as_str());
        }
    }
    struct DnDegrade(Arc<DataNode>);
    impl Degradable for DnDegrade {
        fn degrade(&self, component: &ComponentId) {
            self.0.degrade_component(component.as_str());
        }
    }
    RecoverySurface {
        restart: Arc::new(DnRestart(Arc::clone(datanode))),
        degrade: Arc::new(DnDegrade(Arc::clone(datanode))),
        verifier: verifier_factory(datanode),
    }
}

/// Builds verification re-checks per blamed component.
pub fn verifier_factory(datanode: &Arc<DataNode>) -> VerifierFactory {
    let datanode = Arc::clone(datanode);
    Arc::new(move |component: &ComponentId| {
        let c = component.as_str();
        let comp = component.clone();
        if c.contains("block") || c.contains("vol") || c.contains("ingest") || c.contains("scan") {
            // Block-path blame: a probe write + sync on the faulted volume
            // wedges or errors exactly like ingest and the scanner do.
            let disk = Arc::clone(datanode.store().disk());
            Some(Box::new(FnChecker::new(
                "miniblock.verify.volume",
                comp.clone(),
                move || {
                    let r = disk
                        .append(RECOVER_PROBE_PATH, b"rv")
                        .and_then(|()| disk.fsync(RECOVER_PROBE_PATH));
                    match r {
                        Ok(()) => CheckStatus::Pass,
                        Err(e) => fail(FailureKind::Error, &comp, format!("volume probe: {e}")),
                    }
                },
            )) as Box<dyn Checker>)
        } else if c.contains("report") || c.contains("heartbeat") || c.contains("namenode") {
            // NameNode-link blame: a real heartbeat frame on the same link.
            let dn = Arc::clone(&datanode);
            Some(Box::new(FnChecker::new(
                "miniblock.verify.link",
                comp.clone(),
                move || {
                    let msg = NnMsg::Heartbeat {
                        datanode: dn.id().to_owned(),
                    };
                    match dn.net().send(dn.id(), NAMENODE_ADDR, msg.encode()) {
                        Ok(()) => CheckStatus::Pass,
                        Err(e) => fail(FailureKind::Error, &comp, format!("link probe: {e}")),
                    }
                },
            )) as Box<dyn Checker>)
        } else if c == "miniblock" || c.contains("api") {
            // Process-level blame: a full ingest + read-back round trip.
            let dn = Arc::clone(&datanode);
            Some(Box::new(FnChecker::new(
                "miniblock.verify.process",
                comp.clone(),
                move || {
                    let r = dn
                        .write_block(b"__wd_recover")
                        .and_then(|id| dn.read_block(id));
                    match r {
                        Ok(v) if v == b"__wd_recover" => CheckStatus::Pass,
                        Ok(v) => fail(
                            FailureKind::Corruption,
                            &comp,
                            format!("round trip read back {} B", v.len()),
                        ),
                        Err(e) => fail(FailureKind::Error, &comp, format!("round trip: {e}")),
                    }
                },
            )) as Box<dyn Checker>)
        } else {
            None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datanode::DataNodeConfig;
    use crate::namenode::NameNode;
    use simio::net::SimNet;
    use std::time::Duration;
    use wdog_base::clock::RealClock;

    fn wait_for(mut pred: impl FnMut() -> bool, what: &str) {
        let start = std::time::Instant::now();
        while start.elapsed() < Duration::from_secs(10) {
            if pred() {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("timed out waiting for {what}");
    }

    fn node() -> (Arc<DataNode>, NameNode) {
        let net = SimNet::for_tests();
        let nn = NameNode::start(net.clone(), RealClock::shared(), Duration::from_millis(300));
        let dn = Arc::new(
            DataNode::start(
                DataNodeConfig::default(),
                RealClock::shared(),
                simio::disk::SimDisk::for_tests(),
                net,
            )
            .unwrap(),
        );
        (dn, nn)
    }

    #[test]
    fn report_restart_spawns_fresh_generation() {
        let (dn, _nn) = node();
        assert!(dn.restart_component("miniblock.report_loop"));
        assert_eq!(dn.supervision().report_restarts, 1);
        let before = dn.stats().reports;
        wait_for(
            || dn.stats().reports > before,
            "fresh report generation to report",
        );
        assert!(dn.is_running());
    }

    #[test]
    fn degrade_sheds_scanner_but_ingest_keeps_serving() {
        let (dn, _nn) = node();
        assert!(dn.degrade_component("miniblock.scanner_loop"));
        assert_eq!(dn.supervision().degraded, 1);
        let id = dn.write_block(b"still-serving").unwrap();
        assert_eq!(dn.read_block(id).unwrap(), b"still-serving");
    }

    #[test]
    fn verifiers_cover_every_blamable_component() {
        let (dn, _nn) = node();
        let factory = verifier_factory(&dn);
        for c in [
            "miniblock.ingest_loop",
            "miniblock.scanner_loop",
            "miniblock.report_loop",
            "miniblock.heartbeat_loop",
            "miniblock.block",
            "miniblock",
        ] {
            let mut checker =
                factory(&ComponentId::new(c)).unwrap_or_else(|| panic!("no verifier for {c}"));
            assert!(checker.check().is_pass(), "healthy verify failed for {c}");
        }
        assert!(factory(&ComponentId::new("something.else")).is_none());
        assert!(!dn.restart_component("something.else"));
        assert!(!dn.degrade_component("something.else"));
    }

    #[test]
    fn volume_verifier_fails_while_disk_errors() {
        use simio::disk::{DiskFault, DiskOpKind, FaultRule};
        let (dn, _nn) = node();
        let disk = Arc::clone(dn.store().disk());
        let handle = disk.inject(FaultRule::scoped(
            "blocks/vol1/",
            vec![DiskOpKind::Write],
            DiskFault::Error {
                message: "verify-probe".into(),
            },
        ));
        let factory = verifier_factory(&dn);
        let mut checker = factory(&ComponentId::new("miniblock.ingest_loop")).unwrap();
        assert!(!checker.check().is_pass());
        disk.clear(handle);
        assert!(checker.check().is_pass());
    }
}
