//! The [`WatchdogTarget`] implementation for miniblock.
//!
//! Like minizk, the DataNode exposes the *substrate* fault surface only:
//! its volumes live on a simulated disk and its NameNode link on a
//! simulated network, with no cooperative toggles or stall point. Disk
//! scenarios distinguish a *partial* failure (one volume, `blocks/vol1/`)
//! from store-wide ones (`blocks/`) — the HDFS single-bad-volume shape the
//! disk-checker evolution was built for.

use std::sync::Arc;
use std::sync::Mutex;
use std::time::Duration;

use wdog_base::clock::SharedClock;
use wdog_base::error::BaseResult;
use wdog_base::rng::derive_seed;

use simio::disk::SimDisk;
use simio::net::SimNet;
use simio::LatencyModel;

use faults::catalog::{Scenario, TargetProfile};
use faults::injector::Injector;

use wdog_core::prelude::*;
use wdog_gen::ir::ProgramIr;
use wdog_gen::plan::WatchdogPlan;

use wdog_target::{
    catalog_for, spawn_workload_on, ApiProbe, CrashSignal, FaultSurface, LivenessProbe,
    RecoverySurface, RequestFn, TargetInstance, WatchdogTarget, WdOptions, WorkloadHandle,
    WorkloadObserver, WorkloadProfile,
};

use crate::datanode::{DataNode, DataNodeConfig};
use crate::namenode::{NameNode, NAMENODE_ADDR};
use crate::wd::default_dn_options;

/// The miniblock target: one DataNode + NameNode on simulated substrates.
#[derive(Debug, Default, Clone, Copy)]
pub struct DnTarget;

/// Scenario locations mapped onto the DataNode's layout.
fn dn_profile() -> TargetProfile {
    TargetProfile {
        // "WAL" scenarios strike one volume (partial failure), the
        // "SSTable" scenarios the whole store.
        wal_prefix: "blocks/vol1/".into(),
        sst_prefix: "blocks/".into(),
        replica_src: "dn1".into(),
        replica_dst: NAMENODE_ADDR.into(),
        flusher_component: "block".into(),
        replication_component: "report".into(),
        ..TargetProfile::default()
    }
}

impl WatchdogTarget for DnTarget {
    fn name(&self) -> &'static str {
        "miniblock"
    }

    fn describe_ir(&self) -> ProgramIr {
        crate::wd::describe_ir()
    }

    fn default_options(&self) -> WdOptions {
        default_dn_options()
    }

    fn catalog(&self) -> Vec<Scenario> {
        let mut cat = catalog_for(&dn_profile(), FaultSurface::SUBSTRATE);
        for s in &mut cat {
            if s.expected.component_hint == "sst" {
                s.expected.component_hint = "block".into();
            }
            if s.expected.component_hint == "kvs" {
                s.expected.component_hint = "miniblock".into();
            }
        }
        cat
    }

    fn components(&self) -> Vec<String> {
        // Blameable DataNode components for chaos wrong-component accounting.
        ["block", "report", "heartbeat", "scanner", "miniblock"]
            .map(str::to_owned)
            .to_vec()
    }

    fn start_on(&self, seed: u64, clock: SharedClock) -> BaseResult<Box<dyn TargetInstance>> {
        let net = SimNet::new(
            LatencyModel::new(30.0, derive_seed(seed, "net")),
            Arc::clone(&clock),
        );
        let disk = SimDisk::new(
            1 << 30,
            LatencyModel::new(20.0, derive_seed(seed, "disk")),
            Arc::clone(&clock),
        );
        let namenode = NameNode::start(net.clone(), Arc::clone(&clock), Duration::from_secs(1));
        let datanode = Arc::new(DataNode::start(
            DataNodeConfig::default(),
            Arc::clone(&clock),
            Arc::clone(&disk),
            net.clone(),
        )?);
        Ok(Box::new(DnInstance {
            clock,
            net,
            disk,
            datanode,
            namenode: Some(namenode),
            workload: None,
        }))
    }
}

/// One booted miniblock testbed.
pub struct DnInstance {
    clock: SharedClock,
    net: SimNet,
    disk: Arc<SimDisk>,
    datanode: Arc<DataNode>,
    namenode: Option<NameNode>,
    workload: Option<WorkloadHandle>,
}

impl TargetInstance for DnInstance {
    fn clock(&self) -> SharedClock {
        Arc::clone(&self.clock)
    }

    fn build_watchdog(&self, opts: &WdOptions) -> BaseResult<(WatchdogDriver, WatchdogPlan)> {
        crate::wd::build_watchdog(&self.datanode, opts)
    }

    fn injector(&self, on_crash: CrashSignal) -> Injector {
        let crash_dn = Arc::clone(&self.datanode);
        Injector::new()
            .with_disk(Arc::clone(&self.disk))
            .with_net(self.net.clone())
            .with_clock(Arc::clone(&self.clock))
            .with_crash_hook(Arc::new(move || {
                crash_dn.crash();
                on_crash();
            }))
    }

    fn start_workload(&mut self, profile: &WorkloadProfile, observer: Option<WorkloadObserver>) {
        // Block ids assigned by ingest, shared so readers pick real blocks.
        let written: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let dn = Arc::clone(&self.datanode);
        self.workload = Some(spawn_workload_on(
            &self.clock,
            profile,
            observer,
            Arc::new(move |ticket| {
                if ticket.write || written.lock().unwrap().is_empty() {
                    let data = format!("block-payload-{}", ticket.value);
                    let id = dn.write_block(data.as_bytes())?;
                    let mut ids = written.lock().unwrap();
                    ids.push(id);
                    // Bound the replay set so reads stay recent.
                    if ids.len() > 512 {
                        ids.remove(0);
                    }
                    Ok(())
                } else {
                    let ids = written.lock().unwrap();
                    let id = ids[ticket.key % ids.len()];
                    drop(ids);
                    dn.read_block(id).map(|_| ())
                }
            }),
        ));
    }

    fn load_surface(&self, _keys: usize) -> Option<RequestFn> {
        // Ids assigned by ingest, shared so readers pick real blocks.
        let written: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let dn = Arc::clone(&self.datanode);
        Some(Arc::new(move |ticket| {
            if ticket.write || written.lock().unwrap().is_empty() {
                let data = format!("block-payload-{}", ticket.value);
                let id = dn.write_block(data.as_bytes())?;
                let mut ids = written.lock().unwrap();
                ids.push(id);
                if ids.len() > 512 {
                    ids.remove(0);
                }
                Ok(())
            } else {
                let ids = written.lock().unwrap();
                let id = ids[ticket.key % ids.len()];
                drop(ids);
                dn.read_block(id).map(|_| ())
            }
        }))
    }

    fn attach_trace(&self, recorder: &std::sync::Arc<wdog_core::TraceRecorder>) -> bool {
        self.datanode
            .hooks()
            .attach_trace(std::sync::Arc::clone(recorder));
        true
    }

    fn set_hooks_enabled(&self, enabled: bool) {
        self.datanode.hooks().set_enabled(enabled);
    }

    fn workload_counters(&self) -> (u64, u64) {
        self.workload
            .as_ref()
            .map(|w| w.counters())
            .unwrap_or((0, 0))
    }

    fn stop_workload(&mut self) {
        if let Some(w) = &mut self.workload {
            w.stop();
        }
    }

    fn api_probe(&self) -> ApiProbe {
        let dn = Arc::clone(&self.datanode);
        Arc::new(move || {
            let id = dn.write_block(b"__ext_probe")?;
            dn.read_block(id).map(|_| ())
        })
    }

    fn liveness_probe(&self) -> LivenessProbe {
        let dn = Arc::clone(&self.datanode);
        Arc::new(move || dn.is_running())
    }

    fn errors_handled(&self) -> u64 {
        // The scanner's in-place error handler is the DataNode's only
        // swallow-and-continue path.
        self.datanode.stats().scan_errors
    }

    fn recovery_surface(&self) -> Option<RecoverySurface> {
        Some(crate::recover::recovery_surface(&self.datanode))
    }

    fn request_stop(&self) {
        if let Some(w) = &self.workload {
            w.request_stop();
        }
        self.datanode.crash();
        if let Some(nn) = &self.namenode {
            nn.request_stop();
        }
    }

    fn io_stats(&self) -> Option<(simio::disk::DiskOpStats, simio::net::NetOpStats)> {
        Some((self.disk.op_stats(), self.net.op_stats()))
    }

    fn clear_faults(&self) {
        self.disk.clear_all();
        self.net.clear_all();
    }

    fn teardown(&mut self) {
        self.stop_workload();
        self.datanode.crash();
        if let Some(nn) = &mut self.namenode {
            nn.stop();
        }
        self.namenode = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dn_catalog_separates_partial_from_whole_store_faults() {
        let cat = DnTarget.catalog();
        assert_eq!(cat.len(), 7);
        let partial = cat.iter().find(|s| s.id == "partial-disk-stuck").unwrap();
        assert_eq!(
            partial.kind,
            faults::spec::FaultKind::DiskStuck {
                path_prefix: "blocks/vol1/".into()
            }
        );
        let slow = cat.iter().find(|s| s.id == "disk-fail-slow").unwrap();
        assert_eq!(slow.expected.component_hint, "block");
    }

    #[test]
    fn booted_instance_probes_and_serves_workload() {
        let mut inst = DnTarget.start(4).unwrap();
        inst.api_probe()().unwrap();
        assert!(inst.liveness_probe()());
        inst.start_workload(
            &WorkloadProfile {
                threads: 2,
                period: Duration::from_millis(2),
                keys: 16,
                ..WorkloadProfile::default()
            },
            None,
        );
        std::thread::sleep(Duration::from_millis(200));
        inst.stop_workload();
        let (ok, failed) = inst.workload_counters();
        assert!(ok > 10, "workload too slow: ok={ok} failed={failed}");
        assert_eq!(failed, 0);
        inst.teardown();
        // After teardown the API refuses requests — crash semantics.
        assert!(inst.api_probe()().is_err());
    }
}
