//! The HDFS disk-checker evolution (paper Table 2's case study).
//!
//! Two generations of the same checker, as a before/after of the mimic
//! principle:
//!
//! - [`LegacyDiskChecker`] — what HDFS shipped first: "only checked
//!   directory permissions". It inspects volume *metadata* (the `.volume`
//!   marker exists, the namespace lists) and never touches the data path —
//!   so a wedged, erroring, or silently corrupting volume that still has
//!   intact metadata looks perfectly healthy.
//! - [`EnhancedDiskChecker`] — HADOOP-13738: "create some files and invoke
//!   functions from the DataNode main program to do real I/O in a similar
//!   way". It writes a probe block through the same [`BlockStore`] code on
//!   the same volume, syncs, reads back, validates the checksum, and
//!   deletes — catching stuck, slow, erroring, and bit-rotting volumes,
//!   and naming the volume in the report.

use std::sync::Arc;
use std::time::Duration;

use wdog_base::clock::SharedClock;
use wdog_base::ids::{CheckerId, ComponentId};

use wdog_core::prelude::*;

use crate::block::BlockStore;

/// The metadata-only volume checker (pre-HADOOP-13738).
pub struct LegacyDiskChecker {
    store: Arc<BlockStore>,
}

impl LegacyDiskChecker {
    /// Creates the legacy checker over `store`.
    pub fn new(store: Arc<BlockStore>) -> Self {
        Self { store }
    }
}

impl Checker for LegacyDiskChecker {
    fn id(&self) -> CheckerId {
        CheckerId::new("dn.disk_checker.legacy")
    }

    fn component(&self) -> ComponentId {
        ComponentId::new("dn.volumes")
    }

    fn check(&mut self) -> CheckStatus {
        for v in self.store.volumes() {
            // Metadata only: marker exists and the volume namespace lists.
            let marker = format!("blocks/{v}/.volume");
            if !self.store.disk().exists(&marker) {
                return CheckStatus::Fail(CheckFailure::new(
                    FailureKind::Error,
                    FaultLocation::new("dn.volumes", format!("indicator:volume:{v}")),
                    format!("volume marker missing for {v}"),
                ));
            }
            let _ = self.store.list_volume(v);
        }
        CheckStatus::Pass
    }
}

/// The real-I/O mimic-type volume checker (HADOOP-13738).
pub struct EnhancedDiskChecker {
    store: Arc<BlockStore>,
    clock: SharedClock,
    slow_threshold: Duration,
    probe: Option<ExecutionProbe>,
    round: u64,
}

impl EnhancedDiskChecker {
    /// Creates the enhanced checker over `store`.
    pub fn new(store: Arc<BlockStore>, clock: SharedClock, slow_threshold: Duration) -> Self {
        Self {
            store,
            clock,
            slow_threshold,
            probe: None,
            round: 0,
        }
    }

    // CheckFailure is a large-but-cold error: it exists only on the failure
    // path, where allocation cost is irrelevant next to reporting.
    #[allow(clippy::result_large_err)]
    fn probe_volume(&self, volume: &str) -> Result<(), CheckFailure> {
        let disk = self.store.disk();
        let path = format!("blocks/{volume}/__wd_probe_enhanced");
        let payload = format!("probe-round-{}", self.round);
        let location = |op: &str| {
            FaultLocation::new("dn.volumes", "volume_probe")
                .with_op(format!("volume_probe#{op}:{volume}"))
        };
        let started = self.clock.now();

        // The real write path: write, sync, read back, validate, delete —
        // the same operations DataNode block ingest performs.
        let mut file = Vec::with_capacity(4 + payload.len());
        file.extend_from_slice(&wdog_base::checksum::crc32(payload.as_bytes()).to_le_bytes());
        file.extend_from_slice(payload.as_bytes());
        if let Some(p) = &self.probe {
            p.enter(location("write"));
        }
        disk.write_all(&path, &file).map_err(|e| {
            CheckFailure::new(
                FailureKind::from_error(&e),
                location("write"),
                e.to_string(),
            )
        })?;
        if let Some(p) = &self.probe {
            p.enter(location("sync"));
        }
        disk.fsync(&path).map_err(|e| {
            CheckFailure::new(FailureKind::from_error(&e), location("sync"), e.to_string())
        })?;
        if let Some(p) = &self.probe {
            p.enter(location("read"));
        }
        self.store.validate_path(&path).map_err(|e| {
            CheckFailure::new(FailureKind::from_error(&e), location("read"), e.to_string())
        })?;
        let _ = disk.remove(&path);
        if let Some(p) = &self.probe {
            p.exit();
        }

        let elapsed = self.clock.now().saturating_sub(started);
        if elapsed > self.slow_threshold {
            return Err(CheckFailure::new(
                FailureKind::Slow,
                location("write"),
                format!(
                    "volume probe took {} ms (threshold {} ms)",
                    elapsed.as_millis(),
                    self.slow_threshold.as_millis()
                ),
            )
            .with_latency_ms(elapsed.as_millis() as u64));
        }
        Ok(())
    }
}

impl Checker for EnhancedDiskChecker {
    fn id(&self) -> CheckerId {
        CheckerId::new("dn.disk_checker.enhanced")
    }

    fn component(&self) -> ComponentId {
        ComponentId::new("dn.volumes")
    }

    fn attach_probe(&mut self, probe: ExecutionProbe) {
        self.probe = Some(probe);
    }

    fn check(&mut self) -> CheckStatus {
        self.round += 1;
        for v in self.store.volumes().to_vec() {
            if let Err(f) = self.probe_volume(&v) {
                return CheckStatus::Fail(f);
            }
        }
        CheckStatus::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simio::disk::{DiskFault, DiskOpKind, FaultRule, SimDisk};
    use wdog_base::clock::RealClock;

    fn store_with_markers() -> Arc<BlockStore> {
        let store = Arc::new(BlockStore::new(SimDisk::for_tests(), 2));
        for v in store.volumes().to_vec() {
            store
                .disk()
                .write_all(&format!("blocks/{v}/.volume"), b"ok")
                .unwrap();
        }
        store
    }

    fn data_fault(volume: &str, fault: DiskFault) -> FaultRule {
        FaultRule::scoped(
            format!("blocks/{volume}/"),
            vec![DiskOpKind::Read, DiskOpKind::Write, DiskOpKind::Sync],
            fault,
        )
    }

    #[test]
    fn both_checkers_pass_on_healthy_volumes() {
        let store = store_with_markers();
        let mut legacy = LegacyDiskChecker::new(Arc::clone(&store));
        let mut enhanced =
            EnhancedDiskChecker::new(store, RealClock::shared(), Duration::from_millis(200));
        assert!(legacy.check().is_pass());
        assert!(enhanced.check().is_pass());
    }

    #[test]
    fn legacy_misses_data_path_errors_enhanced_catches_them() {
        let store = store_with_markers();
        store.disk().inject(data_fault(
            "vol0",
            DiskFault::Error {
                message: "dead platter".into(),
            },
        ));
        let mut legacy = LegacyDiskChecker::new(Arc::clone(&store));
        let mut enhanced = EnhancedDiskChecker::new(
            Arc::clone(&store),
            RealClock::shared(),
            Duration::from_millis(200),
        );
        // The paper's point, in one assertion pair.
        assert!(legacy.check().is_pass(), "legacy checker saw the fault?!");
        let CheckStatus::Fail(f) = enhanced.check() else {
            panic!("enhanced checker missed a dead volume");
        };
        assert_eq!(f.kind, FailureKind::Error);
        assert!(
            f.location.to_string().contains("vol0"),
            "wrong volume blamed: {}",
            f.location
        );
    }

    #[test]
    fn legacy_misses_silent_corruption_enhanced_catches_it() {
        let store = store_with_markers();
        store
            .disk()
            .inject(data_fault("vol1", DiskFault::CorruptWrites));
        let mut legacy = LegacyDiskChecker::new(Arc::clone(&store));
        let mut enhanced = EnhancedDiskChecker::new(
            Arc::clone(&store),
            RealClock::shared(),
            Duration::from_millis(200),
        );
        assert!(legacy.check().is_pass());
        let CheckStatus::Fail(f) = enhanced.check() else {
            panic!("enhanced checker missed bit rot");
        };
        assert_eq!(f.kind, FailureKind::Corruption);
        assert!(f.location.to_string().contains("vol1"));
    }

    #[test]
    fn legacy_catches_only_metadata_damage() {
        let store = store_with_markers();
        store.disk().remove("blocks/vol0/.volume").unwrap();
        let mut legacy = LegacyDiskChecker::new(store);
        assert!(legacy.check().is_fail());
    }

    #[test]
    fn enhanced_flags_fail_slow_volumes() {
        // Slow detection needs a latency-modelled disk (a slow-down factor
        // over zero base latency is still zero).
        let clock = RealClock::shared();
        let disk = SimDisk::new(
            1 << 30,
            simio::LatencyModel::new(30.0, 9),
            Arc::clone(&clock),
        );
        let store = Arc::new(BlockStore::new(disk, 1));
        store
            .disk()
            .write_all("blocks/vol0/.volume", b"ok")
            .unwrap();
        store.disk().inject(FaultRule::scoped(
            "blocks/vol0/",
            vec![DiskOpKind::Write, DiskOpKind::Sync, DiskOpKind::Read],
            DiskFault::Slow { factor: 3000.0 },
        ));
        let mut enhanced = EnhancedDiskChecker::new(store, clock, Duration::from_millis(20));
        let CheckStatus::Fail(f) = enhanced.check() else {
            panic!("enhanced checker missed the fail-slow volume");
        };
        assert_eq!(f.kind, FailureKind::Slow);
    }
}
