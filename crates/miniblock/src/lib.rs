//! `miniblock`: an HDFS-like block store.
//!
//! The third of the paper's three instrumentation targets (ZooKeeper →
//! `minizk`, Cassandra → `kvs`, HDFS → this crate). Its reason to exist
//! is the paper's Table 2 case study:
//!
//! > "the disk checker module in HDFS initially only checked directory
//! > permissions, but later it was enhanced \[HADOOP-13738\] to create some
//! > files and invoke functions from the DataNode main program to do real
//! > I/O in a similar way."
//!
//! Both generations of that checker are implemented in [`disk_checker`]:
//! the legacy metadata-only probe and the enhanced mimic-type checker that
//! performs real write/sync/read/validate I/O on each volume. The
//! `hdfs_disk_checker` example and the integration tests demonstrate the
//! failure the legacy checker misses and the enhanced one catches.
//!
//! The system itself is deliberately HDFS-shaped:
//!
//! - [`block`]: checksummed block files spread across volumes;
//! - [`datanode`]: block writes/reads, a periodic **block scanner**
//!   (HDFS's `DataBlockScanner`), block reports, and heartbeats to the
//!   NameNode over [`simio::SimNet`];
//! - [`namenode`]: block-location tracking and DataNode liveness;
//! - [`wd`]: the AutoWatchdog integration (IR, op table, assembly).

pub mod block;
pub mod datanode;
pub mod disk_checker;
pub mod namenode;
pub mod recover;
pub mod target;
pub mod wd;

pub use block::BlockStore;
pub use datanode::{DataNode, DataNodeConfig, DnSupervisionStats};
pub use disk_checker::{EnhancedDiskChecker, LegacyDiskChecker};
pub use namenode::NameNode;
