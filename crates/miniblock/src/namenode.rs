//! A minimal NameNode: block locations and DataNode liveness.
//!
//! Receives block reports and heartbeats over the simulated network. Its
//! liveness view is the classic extrinsic picture: a DataNode that
//! heartbeats is "healthy", no matter how many of its volumes are quietly
//! failing — the blindness the DataNode-side checkers exist to fix.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use simio::net::SimNet;

use wdog_base::clock::SharedClock;

/// The NameNode's network address.
pub const NAMENODE_ADDR: &str = "bb-namenode";

/// Messages DataNodes send to the NameNode.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NnMsg {
    /// Periodic liveness signal.
    Heartbeat {
        /// Sender DataNode id.
        datanode: String,
    },
    /// Full listing of blocks held.
    BlockReport {
        /// Sender DataNode id.
        datanode: String,
        /// Block ids held.
        blocks: Vec<u64>,
    },
}

impl NnMsg {
    /// Encodes for the wire.
    pub fn encode(&self) -> bytes::Bytes {
        bytes::Bytes::from(serde_json::to_vec(self).expect("encoding is infallible"))
    }

    /// Decodes from the wire.
    pub fn decode(raw: &[u8]) -> Option<Self> {
        serde_json::from_slice(raw).ok()
    }
}

struct NameNodeState {
    last_heartbeat: BTreeMap<String, Duration>,
    block_locations: BTreeMap<u64, BTreeSet<String>>,
    reports: u64,
}

/// A running NameNode.
pub struct NameNode {
    state: Arc<RwLock<NameNodeState>>,
    clock: SharedClock,
    suspect_after: Duration,
    running: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl NameNode {
    /// Starts a NameNode listening on [`NAMENODE_ADDR`].
    pub fn start(net: SimNet, clock: SharedClock, suspect_after: Duration) -> Self {
        let mailbox = net.register(NAMENODE_ADDR);
        let state = Arc::new(RwLock::new(NameNodeState {
            last_heartbeat: BTreeMap::new(),
            block_locations: BTreeMap::new(),
            reports: 0,
        }));
        let running = Arc::new(AtomicBool::new(true));
        let thread = {
            let state = Arc::clone(&state);
            let spawn_clock = Arc::clone(&clock);
            let clock = Arc::clone(&clock);
            let running = Arc::clone(&running);
            wdog_base::clock::spawn_on(&spawn_clock, "bb-namenode", move || {
                while running.load(Ordering::Relaxed) {
                    let Some(m) = mailbox.recv_timeout(Duration::from_millis(10)) else {
                        continue;
                    };
                    match NnMsg::decode(&m.payload) {
                        Some(NnMsg::Heartbeat { datanode }) => {
                            state.write().last_heartbeat.insert(datanode, clock.now());
                        }
                        Some(NnMsg::BlockReport { datanode, blocks }) => {
                            let mut st = state.write();
                            st.reports += 1;
                            for b in blocks {
                                st.block_locations
                                    .entry(b)
                                    .or_default()
                                    .insert(datanode.clone());
                            }
                            st.last_heartbeat.insert(datanode, clock.now());
                        }
                        None => {}
                    }
                }
            })
        };
        Self {
            state,
            clock,
            suspect_after,
            running,
            thread: Some(thread),
        }
    }

    /// Returns `true` if the NameNode considers `datanode` alive.
    pub fn datanode_alive(&self, datanode: &str) -> bool {
        let st = self.state.read();
        match st.last_heartbeat.get(datanode) {
            Some(t) => self.clock.now().saturating_sub(*t) <= self.suspect_after,
            None => false,
        }
    }

    /// Returns the DataNodes known to hold `block_id`.
    pub fn locations(&self, block_id: u64) -> Vec<String> {
        self.state
            .read()
            .block_locations
            .get(&block_id)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Returns the number of block reports processed.
    pub fn reports(&self) -> u64 {
        self.state.read().reports
    }

    /// Raises the stop flag without joining (virtual-time teardown).
    pub fn request_stop(&self) {
        self.running.store(false, Ordering::Relaxed);
    }

    /// Stops the NameNode thread.
    pub fn stop(&mut self) {
        self.running.store(false, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for NameNode {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for NameNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NameNode")
            .field("reports", &self.reports())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdog_base::clock::RealClock;

    #[test]
    fn heartbeats_mark_datanodes_alive() {
        let net = SimNet::for_tests();
        let nn = NameNode::start(net.clone(), RealClock::shared(), Duration::from_millis(200));
        assert!(!nn.datanode_alive("dn1"));
        net.send(
            "dn1",
            NAMENODE_ADDR,
            NnMsg::Heartbeat {
                datanode: "dn1".into(),
            }
            .encode(),
        )
        .unwrap();
        let start = std::time::Instant::now();
        while !nn.datanode_alive("dn1") && start.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(nn.datanode_alive("dn1"));
        // Silence leads to suspicion.
        std::thread::sleep(Duration::from_millis(300));
        assert!(!nn.datanode_alive("dn1"));
    }

    #[test]
    fn block_reports_register_locations() {
        let net = SimNet::for_tests();
        let nn = NameNode::start(net.clone(), RealClock::shared(), Duration::from_secs(5));
        net.send(
            "dn2",
            NAMENODE_ADDR,
            NnMsg::BlockReport {
                datanode: "dn2".into(),
                blocks: vec![1, 2, 3],
            }
            .encode(),
        )
        .unwrap();
        let start = std::time::Instant::now();
        while nn.reports() == 0 && start.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(nn.locations(2), vec!["dn2"]);
        assert!(nn.locations(99).is_empty());
    }
}
