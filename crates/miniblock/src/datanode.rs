//! The DataNode: block ingest, scanner, reports, heartbeats.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;

use simio::net::SimNet;

use wdog_base::clock::SharedClock;
use wdog_base::error::BaseResult;

use wdog_core::prelude::*;

use wdog_target::Supervised;

use crate::block::BlockStore;
use crate::namenode::{NnMsg, NAMENODE_ADDR};

/// DataNode tunables.
#[derive(Debug, Clone)]
pub struct DataNodeConfig {
    /// DataNode id (its network address).
    pub id: String,
    /// Number of storage volumes.
    pub volumes: usize,
    /// Heartbeat period.
    pub heartbeat_interval: Duration,
    /// Block-report period.
    pub report_interval: Duration,
    /// Block-scanner period (between whole-volume scans).
    pub scan_interval: Duration,
}

impl Default for DataNodeConfig {
    fn default() -> Self {
        Self {
            id: "dn1".into(),
            volumes: 3,
            heartbeat_interval: Duration::from_millis(50),
            report_interval: Duration::from_millis(200),
            scan_interval: Duration::from_millis(100),
        }
    }
}

/// Counters for assertions and experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DataNodeStats {
    /// Blocks ingested.
    pub blocks_written: u64,
    /// Scanner passes over individual blocks.
    pub blocks_scanned: u64,
    /// Scanner checksum failures caught (and tolerated in place).
    pub scan_errors: u64,
    /// Heartbeats sent.
    pub heartbeats: u64,
    /// Block reports sent.
    pub reports: u64,
}

/// Supervision bookkeeping for the DataNode's background components.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DnSupervisionStats {
    /// Heartbeat generations retired by restart.
    pub heartbeat_restarts: u64,
    /// Report generations retired by restart.
    pub report_restarts: u64,
    /// Scanner generations retired by restart.
    pub scanner_restarts: u64,
    /// Components currently shed (degraded, no live generation).
    pub degraded: u32,
}

/// One [`Supervised`] per restartable background loop.
pub(crate) struct DnSupervisor {
    pub(crate) heartbeat: Supervised,
    pub(crate) report: Supervised,
    pub(crate) scanner: Supervised,
}

impl DnSupervisor {
    fn new() -> Self {
        Self {
            heartbeat: Supervised::new(),
            report: Supervised::new(),
            scanner: Supervised::new(),
        }
    }
}

pub(crate) struct DnShared {
    pub(crate) store: BlockStore,
    pub(crate) net: SimNet,
    pub(crate) clock: SharedClock,
    pub(crate) id: String,
    pub(crate) blocks: RwLock<BTreeMap<u64, String>>, // id -> volume
    pub(crate) next_block: AtomicU64,
    pub(crate) running: AtomicBool,
    pub(crate) hooks: Hooks,
    /// Per-ingest hook, resolved once so `write_block` publishes through
    /// its cached slot instead of re-creating a site per call.
    pub(crate) ingest_hook: HookSite,
    pub(crate) context: Arc<ContextTable>,
    pub(crate) blocks_written: AtomicU64,
    pub(crate) blocks_scanned: AtomicU64,
    pub(crate) scan_errors: AtomicU64,
    pub(crate) heartbeats: AtomicU64,
    pub(crate) reports: AtomicU64,
    pub(crate) supervisor: DnSupervisor,
    pub(crate) config: DataNodeConfig,
}

impl DnShared {
    fn is_running(&self) -> bool {
        self.running.load(Ordering::Relaxed)
    }
}

/// A running DataNode.
pub struct DataNode {
    shared: Arc<DnShared>,
    config: DataNodeConfig,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl DataNode {
    /// Starts a DataNode with its background threads.
    pub fn start(
        config: DataNodeConfig,
        clock: SharedClock,
        disk: Arc<simio::disk::SimDisk>,
        net: SimNet,
    ) -> BaseResult<Self> {
        let store = BlockStore::new(disk, config.volumes);
        // Volume markers: the metadata the *legacy* disk checker looks at.
        for v in store.volumes().to_vec() {
            let marker = format!("blocks/{v}/.volume");
            if !store.disk().exists(&marker) {
                store.disk().write_all(&marker, b"ok")?;
            }
        }
        let context = ContextTable::new(Arc::clone(&clock));
        let hooks = Hooks::new(Arc::clone(&context));
        let shared = Arc::new(DnShared {
            store,
            net,
            clock,
            id: config.id.clone(),
            blocks: RwLock::new(BTreeMap::new()),
            next_block: AtomicU64::new(1),
            running: AtomicBool::new(true),
            ingest_hook: hooks.site("ingest_loop"),
            hooks,
            context,
            blocks_written: AtomicU64::new(0),
            blocks_scanned: AtomicU64::new(0),
            scan_errors: AtomicU64::new(0),
            heartbeats: AtomicU64::new(0),
            reports: AtomicU64::new(0),
            supervisor: DnSupervisor::new(),
            config: config.clone(),
        });

        let mut threads = Vec::new();
        // Heartbeat loop.
        {
            let s = Arc::clone(&shared);
            let alive = s.supervisor.heartbeat.flag();
            threads.push(wdog_base::clock::spawn_on(
                &shared.clock,
                "dn-heartbeat",
                move || heartbeat_loop(s, alive),
            ));
        }
        // Block-report loop.
        {
            let s = Arc::clone(&shared);
            let alive = s.supervisor.report.flag();
            threads.push(wdog_base::clock::spawn_on(
                &shared.clock,
                "dn-report",
                move || report_loop(s, alive),
            ));
        }
        // Block scanner loop (HDFS's DataBlockScanner).
        {
            let s = Arc::clone(&shared);
            let alive = s.supervisor.scanner.flag();
            threads.push(wdog_base::clock::spawn_on(
                &shared.clock,
                "dn-scanner",
                move || scanner_loop(s, alive),
            ));
        }

        Ok(Self {
            shared,
            config,
            threads,
        })
    }

    /// Ingests a block; returns its id.
    pub fn write_block(&self, data: &[u8]) -> BaseResult<u64> {
        let s = &self.shared;
        if !s.is_running() {
            return Err(wdog_base::error::BaseError::Disconnected(
                "datanode is down".into(),
            ));
        }
        let id = s.next_block.fetch_add(1, Ordering::Relaxed);
        let volume = s.store.pick_volume().to_owned();
        // Hook before the vulnerable write (generated plan point).
        let sample: Vec<u8> = data.iter().copied().take(1024).collect();
        let vol = volume.clone();
        if let Some(mut fire) = s.ingest_hook.fire() {
            fire.field("block_data", CtxValue::Bytes(sample))
                .field("volume", CtxValue::Str(vol));
        }
        s.store.write_block(&volume, id, data)?;
        s.blocks.write().insert(id, volume);
        s.blocks_written.fetch_add(1, Ordering::Relaxed);
        Ok(id)
    }

    /// Reads a block back.
    pub fn read_block(&self, id: u64) -> BaseResult<Vec<u8>> {
        if !self.shared.is_running() {
            return Err(wdog_base::error::BaseError::Disconnected(
                "datanode is down".into(),
            ));
        }
        let volume = self
            .shared
            .blocks
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| wdog_base::error::BaseError::NotFound(format!("block {id}")))?;
        self.shared.store.read_block(&volume, id)
    }

    /// Returns counters.
    pub fn stats(&self) -> DataNodeStats {
        let s = &self.shared;
        DataNodeStats {
            blocks_written: s.blocks_written.load(Ordering::Relaxed),
            blocks_scanned: s.blocks_scanned.load(Ordering::Relaxed),
            scan_errors: s.scan_errors.load(Ordering::Relaxed),
            heartbeats: s.heartbeats.load(Ordering::Relaxed),
            reports: s.reports.load(Ordering::Relaxed),
        }
    }

    /// Returns the block store (for checkers and fault targeting).
    pub fn store(&self) -> &BlockStore {
        &self.shared.store
    }

    /// Returns the node's network handle (for probes).
    pub fn net(&self) -> &SimNet {
        &self.shared.net
    }

    /// Returns the watchdog context table fed by this node's hooks.
    pub fn context(&self) -> Arc<ContextTable> {
        Arc::clone(&self.shared.context)
    }

    /// Returns the node's hook dispatcher (for telemetry arming).
    pub fn hooks(&self) -> Hooks {
        self.shared.hooks.clone()
    }

    /// Returns this node's id.
    pub fn id(&self) -> &str {
        &self.config.id
    }

    /// Restarts one background component by blamed-component name: the old
    /// generation is retired (it exits at its next flag poll, or when an
    /// armed fault releases it) and a fresh one is spawned detached (§5.2
    /// component restart — the process never goes down). Returns whether
    /// the name mapped to a restartable component.
    pub fn restart_component(&self, component: &str) -> bool {
        let s = &self.shared;
        if component.contains("heartbeat") {
            let s2 = Arc::clone(s);
            let alive = s.supervisor.heartbeat.next_generation();
            wdog_base::clock::spawn_on(&s.clock, "dn-heartbeat", move || heartbeat_loop(s2, alive));
            true
        } else if component.contains("report") || component.contains("namenode") {
            let s2 = Arc::clone(s);
            let alive = s.supervisor.report.next_generation();
            wdog_base::clock::spawn_on(&s.clock, "dn-report", move || report_loop(s2, alive));
            true
        } else if component.contains("scan") {
            let s2 = Arc::clone(s);
            let alive = s.supervisor.scanner.next_generation();
            wdog_base::clock::spawn_on(&s.clock, "dn-scanner", move || scanner_loop(s2, alive));
            true
        } else {
            false
        }
    }

    /// Sheds one background component (degrade): its generation is retired
    /// with no replacement while block ingest keeps serving.
    pub fn degrade_component(&self, component: &str) -> bool {
        let s = &self.shared;
        if component.contains("heartbeat") {
            s.supervisor.heartbeat.shed();
            true
        } else if component.contains("report") || component.contains("namenode") {
            s.supervisor.report.shed();
            true
        } else if component.contains("scan") {
            s.supervisor.scanner.shed();
            true
        } else {
            false
        }
    }

    /// Supervision bookkeeping snapshot.
    pub fn supervision(&self) -> DnSupervisionStats {
        let sup = &self.shared.supervisor;
        DnSupervisionStats {
            heartbeat_restarts: sup.heartbeat.restarts(),
            report_restarts: sup.report.restarts(),
            scanner_restarts: sup.scanner.restarts(),
            degraded: [&sup.heartbeat, &sup.report, &sup.scanner]
                .iter()
                .filter(|s| s.is_degraded())
                .count() as u32,
        }
    }

    /// Simulates a whole-process failure: background threads exit and the
    /// block API starts refusing requests, but nothing is joined — exactly
    /// what an abrupt kill looks like to detectors.
    pub fn crash(&self) {
        self.shared.running.store(false, Ordering::Relaxed);
    }

    /// Whether the node is still serving.
    pub fn is_running(&self) -> bool {
        self.shared.is_running()
    }

    /// Stops all threads (detaching any wedged in a fault).
    pub fn stop(&mut self) {
        self.shared.running.store(false, Ordering::Relaxed);
        let handles: Vec<_> = self.threads.drain(..).collect();
        wdog_base::join::join_all_timeout(handles, Duration::from_millis(500));
    }

    pub(crate) fn shared(&self) -> &Arc<DnShared> {
        &self.shared
    }
}

/// Periodically tells the NameNode this node is alive; `alive` is this
/// generation's supervision flag.
fn heartbeat_loop(s: Arc<DnShared>, alive: Arc<AtomicBool>) {
    let interval = s.config.heartbeat_interval;
    while s.is_running() && alive.load(Ordering::Relaxed) {
        let msg = NnMsg::Heartbeat {
            datanode: s.id.clone(),
        };
        if s.net.send(&s.id, NAMENODE_ADDR, msg.encode()).is_ok() {
            s.heartbeats.fetch_add(1, Ordering::Relaxed);
        }
        s.clock.sleep(interval);
    }
}

/// Periodically ships the full block inventory to the NameNode.
fn report_loop(s: Arc<DnShared>, alive: Arc<AtomicBool>) {
    let hook = s.hooks.site("report_loop");
    let interval = s.config.report_interval;
    while s.is_running() && alive.load(Ordering::Relaxed) {
        s.clock.sleep(interval);
        let blocks: Vec<u64> = s.blocks.read().keys().copied().collect();
        let count = blocks.len() as u64;
        hook.fire_kv("block_count", CtxValue::U64(count));
        let msg = NnMsg::BlockReport {
            datanode: s.id.clone(),
            blocks,
        };
        if s.net.send(&s.id, NAMENODE_ADDR, msg.encode()).is_ok() {
            s.reports.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Periodically validates every stored block (HDFS's DataBlockScanner).
fn scanner_loop(s: Arc<DnShared>, alive: Arc<AtomicBool>) {
    let hook = s.hooks.site("scanner_loop");
    let interval = s.config.scan_interval;
    while s.is_running() && alive.load(Ordering::Relaxed) {
        s.clock.sleep(interval);
        for (_, path) in s.store.list_all() {
            if path.ends_with(".volume") || path.contains("__wd") {
                continue;
            }
            let p = path.clone();
            hook.fire_kv("block_path", CtxValue::Str(p));
            // In-place error handler: a bad block is counted and scanning
            // continues.
            match s.store.validate_path(&path) {
                Ok(()) => {
                    s.blocks_scanned.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    s.scan_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            if !s.is_running() {
                break;
            }
        }
    }
}

impl Drop for DataNode {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for DataNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataNode")
            .field("id", &self.config.id)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::namenode::NameNode;
    use simio::disk::SimDisk;
    use wdog_base::clock::RealClock;

    fn wait_for(pred: impl Fn() -> bool, what: &str) {
        let start = std::time::Instant::now();
        while start.elapsed() < Duration::from_secs(5) {
            if pred() {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("timed out waiting for {what}");
    }

    fn node() -> (DataNode, NameNode, SimNet) {
        let net = SimNet::for_tests();
        let nn = NameNode::start(net.clone(), RealClock::shared(), Duration::from_millis(300));
        let dn = DataNode::start(
            DataNodeConfig::default(),
            RealClock::shared(),
            SimDisk::for_tests(),
            net.clone(),
        )
        .unwrap();
        (dn, nn, net)
    }

    #[test]
    fn blocks_roundtrip_across_volumes() {
        let (dn, _nn, _net) = node();
        let ids: Vec<u64> = (0..6)
            .map(|i| dn.write_block(format!("data-{i}").as_bytes()).unwrap())
            .collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(dn.read_block(*id).unwrap(), format!("data-{i}").as_bytes());
        }
        // Round-robin spread: each of 3 volumes holds 2 blocks (+ marker).
        for v in dn.store().volumes() {
            let blocks = dn
                .store()
                .list_volume(v)
                .into_iter()
                .filter(|p| !p.ends_with(".volume"))
                .count();
            assert_eq!(blocks, 2, "volume {v}");
        }
    }

    #[test]
    fn namenode_learns_liveness_and_locations() {
        let (dn, nn, _net) = node();
        let id = dn.write_block(b"replicate-me").unwrap();
        wait_for(|| nn.datanode_alive("dn1"), "heartbeat");
        wait_for(|| !nn.locations(id).is_empty(), "block report");
        assert_eq!(nn.locations(id), vec!["dn1"]);
    }

    #[test]
    fn scanner_counts_clean_blocks_and_catches_rot() {
        let (dn, _nn, _net) = node();
        let id = dn.write_block(b"scan-me").unwrap();
        wait_for(|| dn.stats().blocks_scanned >= 1, "first scan");
        assert_eq!(dn.stats().scan_errors, 0);
        // Rot the stored block in place.
        let path = crate::block::BlockStore::block_path(
            &dn.shared.blocks.read().get(&id).cloned().unwrap(),
            id,
        );
        let mut raw = dn.store().disk().read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0xFF;
        dn.store().disk().write_all(&path, &raw).unwrap();
        wait_for(|| dn.stats().scan_errors >= 1, "scanner to catch the rot");
    }

    #[test]
    fn stopped_datanode_goes_silent() {
        let (mut dn, nn, _net) = node();
        wait_for(|| nn.datanode_alive("dn1"), "heartbeat");
        dn.stop();
        std::thread::sleep(Duration::from_millis(400));
        assert!(!nn.datanode_alive("dn1"));
    }
}
